//! The simulated machine: segments + one-sided fabric verbs + counters.
//!
//! [`Machine`] is the only way workers touch each other's memory. Every verb
//! takes the issuing worker's id, applies the memory effect, bumps that
//! worker's [`FabricStats`], and returns the [`VTime`] cost the caller must
//! add to its virtual clock. Local accesses (to the issuer's own segment) are
//! charged `local_op` instead of a network round trip, mirroring how the
//! runtime in the paper distinguishes local deque operations from remote
//! steals.

use crate::fault::{FaultPlan, FaultState, MsgFate};
use crate::latency::{LatencyModel, MachineProfile};
use crate::mem::{GlobalAddr, Segment};
use crate::time::VTime;
use crate::topology::Topology;
use crate::WorkerId;

/// Machine construction parameters.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    pub workers: usize,
    pub profile: MachineProfile,
    /// Capacity of each worker's pinned segment, bytes.
    pub seg_bytes: u32,
    /// Bytes at the start of each segment reserved for statically placed
    /// runtime structures (deque control words + ring buffer).
    pub seg_reserved: u32,
    /// Network topology (distance-scaled remote latencies).
    pub topology: Topology,
    /// Fault-injection plan; [`FaultPlan::none()`] disables the layer
    /// entirely (no RNG draws, no cost changes).
    pub faults: FaultPlan,
}

impl MachineConfig {
    pub fn new(workers: usize, profile: MachineProfile) -> MachineConfig {
        MachineConfig {
            workers,
            profile,
            seg_bytes: 8 << 20,
            seg_reserved: 0,
            topology: Topology::Flat,
            faults: FaultPlan::none(),
        }
    }

    pub fn with_reserved(mut self, bytes: u32) -> MachineConfig {
        self.seg_reserved = bytes;
        self
    }

    pub fn with_seg_bytes(mut self, bytes: u32) -> MachineConfig {
        self.seg_bytes = bytes;
        self
    }

    pub fn with_topology(mut self, t: Topology) -> MachineConfig {
        self.topology = t;
        self
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> MachineConfig {
        self.faults = plan;
        self
    }
}

/// Per-worker fabric operation counters (ops and bytes, split local/remote).
#[derive(Clone, Copy, Debug, Default)]
pub struct FabricStats {
    pub remote_gets: u64,
    pub remote_puts: u64,
    pub remote_amos: u64,
    pub local_ops: u64,
    pub bytes_got: u64,
    pub bytes_put: u64,
    pub messages_sent: u64,
    pub messages_handled: u64,
    /// Remote verb attempts re-issued after a transient failure.
    pub retries: u64,
    /// Remote verb attempts that timed out against an unresponsive peer.
    pub timeouts: u64,
    /// Remote verb attempts that failed fast against a fail-stopped peer.
    pub dead_fails: u64,
}

impl FabricStats {
    pub fn remote_total(&self) -> u64 {
        self.remote_gets + self.remote_puts + self.remote_amos
    }

    pub fn merge(&mut self, o: &FabricStats) {
        // Destructured so adding a field without summing it here is a
        // compile error, not a silently wrong merge.
        let FabricStats {
            remote_gets,
            remote_puts,
            remote_amos,
            local_ops,
            bytes_got,
            bytes_put,
            messages_sent,
            messages_handled,
            retries,
            timeouts,
            dead_fails,
        } = *o;
        self.remote_gets += remote_gets;
        self.remote_puts += remote_puts;
        self.remote_amos += remote_amos;
        self.local_ops += local_ops;
        self.bytes_got += bytes_got;
        self.bytes_put += bytes_put;
        self.messages_sent += messages_sent;
        self.messages_handled += messages_handled;
        self.retries += retries;
        self.timeouts += timeouts;
        self.dead_fails += dead_fails;
    }
}

/// The simulated cluster: one segment per worker plus the latency model.
pub struct Machine {
    pub cfg: MachineConfig,
    segments: Vec<Segment>,
    stats: Vec<FabricStats>,
    /// Fault-injection state; `None` when the plan is inactive, which makes
    /// the fault layer literally free (one branch per verb).
    faults: Option<Box<FaultState>>,
    /// Global termination flag. In a real deployment this is a tiny
    /// RDMA-broadcast epoch counter; idle loops poll it at local cost.
    done: bool,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        let segments = (0..cfg.workers)
            .map(|_| Segment::new(cfg.seg_bytes, cfg.seg_reserved))
            .collect();
        let stats = vec![FabricStats::default(); cfg.workers];
        let faults = cfg
            .faults
            .is_active()
            .then(|| Box::new(FaultState::new(cfg.faults.clone(), cfg.workers)));
        Machine {
            cfg,
            segments,
            stats,
            faults,
            done: false,
        }
    }

    #[inline]
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    #[inline]
    pub fn lat(&self) -> &LatencyModel {
        &self.cfg.profile.latency
    }

    #[inline]
    pub fn profile(&self) -> &MachineProfile {
        &self.cfg.profile
    }

    #[inline]
    fn is_local(&self, me: WorkerId, addr: GlobalAddr) -> bool {
        addr.rank as usize == me
    }

    /// Scale the network component of a remote cost by the topology
    /// distance; the CPU-side injection part is distance-independent.
    #[inline]
    fn dist(&self, me: WorkerId, other: WorkerId, network_ns: u64) -> VTime {
        let f = self.cfg.topology.factor(me, other);
        VTime::ns(self.lat().injection + (network_ns as f64 * f).round() as u64)
    }

    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    /// Run a remote verb's nominal cost through the fault layer: retries,
    /// backoff, crash-window timeouts, and degraded-NIC scaling. Identity
    /// when faults are disabled.
    #[inline]
    fn fault_cost(&mut self, me: WorkerId, peer: WorkerId, base: VTime) -> VTime {
        match self.faults.as_mut() {
            None => base,
            Some(fs) => {
                let s = &mut self.stats[me];
                fs.charge_verb(me, peer, base, &mut s.retries, &mut s.timeouts)
            }
        }
    }

    /// Record the issuing worker's clock at the top of its step so fault
    /// windows (crash, degraded NIC) are evaluated against the right virtual
    /// instant. No-op when faults are disabled.
    #[inline]
    pub fn begin_step(&mut self, me: WorkerId, now: VTime) {
        if let Some(fs) = self.faults.as_mut() {
            fs.begin_step(me, now);
        }
    }

    /// True when a fault plan is loaded.
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// The loaded fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Failed verb attempts by `me` since the last poll (feeds victim
    /// blacklists); always 0 when faults are disabled.
    pub fn take_faults(&mut self, me: WorkerId) -> u64 {
        self.faults.as_mut().map_or(0, |fs| fs.take_faults(me))
    }

    /// End of a crash window covering `worker` at `now`, if it is currently
    /// crash-stopped. Actors poll this for *themselves* at the top of a step
    /// and sleep until recovery.
    pub fn crashed_until(&self, worker: WorkerId, now: VTime) -> Option<VTime> {
        self.faults
            .as_ref()
            .and_then(|fs| fs.crashed_until(worker, now))
    }

    /// Decide the fabric fate of one two-sided message sent by `me`.
    /// Task-carrying messages must pass `droppable = false` (reliable
    /// channel: never dropped, possibly duplicated).
    pub fn msg_fate(&mut self, me: WorkerId, droppable: bool) -> MsgFate {
        self.faults
            .as_mut()
            .map_or(MsgFate::Deliver, |fs| fs.msg_fate(me, droppable))
    }

    // ------------------------------------------------------------------
    // Fail-stop kills and the heartbeat/lease registry
    // ------------------------------------------------------------------

    /// True when the recovery machinery must run (a kill is scheduled or
    /// `recover=on`).
    #[inline]
    pub fn recovery_armed(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|fs| fs.plan().recovery_armed())
    }

    /// Kill time of `worker` under the loaded plan, if any.
    pub fn killed_at(&self, worker: WorkerId) -> Option<VTime> {
        self.faults.as_ref().and_then(|fs| fs.killed_at(worker))
    }

    /// Is `worker` fail-stopped at `now`? Ground truth (the NIC's view);
    /// survivors learn it through [`Machine::dead_guard`] errors or the
    /// lease registry.
    #[inline]
    pub fn is_dead(&self, worker: WorkerId, now: VTime) -> bool {
        self.faults.as_ref().is_some_and(|fs| fs.is_dead(worker, now))
    }

    /// Has `worker`'s heartbeat lease expired at `now`? Sound: only
    /// genuinely dead workers are ever confirmed (a live worker's beats
    /// never stop). Reading the local lease-registry replica costs nothing
    /// extra beyond the idle step that polls it.
    #[inline]
    pub fn confirmed_dead(&self, worker: WorkerId, now: VTime) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|fs| fs.confirmed_dead(worker, now))
    }

    /// Has `worker` published a heartbeat strictly after `since` that is
    /// visible at `now`? (Termination attest rule.)
    #[inline]
    pub fn fresh_since(&self, worker: WorkerId, since: VTime, now: VTime) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|fs| fs.fresh_since(worker, since, now))
    }

    /// Guard a remote protocol operation by `me` against `peer` at `now`:
    /// if the peer is fail-stopped the verb does not happen — the NIC
    /// reports the peer unreachable after roughly one round trip, and the
    /// returned cost is that error latency. `None` means the peer is up and
    /// the caller proceeds with the real verbs.
    ///
    /// Granularity note: the guard is evaluated once at the top of a
    /// protocol step; a peer whose kill instant falls inside the step is
    /// treated as dying just after it (operations already in flight
    /// linearize before the death).
    pub fn dead_guard(&mut self, me: WorkerId, peer: WorkerId, now: VTime) -> Option<VTime> {
        if me != peer && self.is_dead(peer, now) {
            self.stats[me].dead_fails += 1;
            Some(self.dist(me, peer, self.lat().rdma_get))
        } else {
            None
        }
    }

    /// `get v ← L` of the paper's pseudocode: one-sided small read.
    pub fn get_u64(&mut self, me: WorkerId, addr: GlobalAddr) -> (u64, VTime) {
        let v = self.segments[addr.rank as usize].read(addr.off);
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_gets += 1;
            self.stats[me].bytes_got += 8;
            let base = self.dist(me, addr.rank as usize, self.lat().rdma_get);
            self.fault_cost(me, addr.rank as usize, base)
        };
        (v, cost)
    }

    /// `put L ← v`: one-sided small write; the issuer waits for completion.
    pub fn put_u64(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) -> VTime {
        self.segments[addr.rank as usize].write(addr.off, v);
        if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += 8;
            let base = self.dist(me, addr.rank as usize, self.lat().rdma_put);
            self.fault_cost(me, addr.rank as usize, base)
        }
    }

    /// Non-blocking put: the issuer only pays the injection overhead.
    /// Used by the local-collection free-bit scheme (§III-B), whose point is
    /// that remote frees cost one *non-blocking* communication.
    pub fn put_u64_nb(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) -> VTime {
        self.segments[addr.rank as usize].write(addr.off, v);
        if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += 8;
            // Non-blocking puts still go through the reliable retransmitting
            // channel: a lost free-bit would leak memory forever, so the NIC
            // retries; the issuer is charged the (rare) extra injections.
            let base = self.lat().put_nb();
            self.fault_cost(me, addr.rank as usize, base)
        }
    }

    /// `fetch_and_add(L, v)`: one-sided atomic.
    pub fn fetch_add_u64(&mut self, me: WorkerId, addr: GlobalAddr, add: u64) -> (u64, VTime) {
        let v = self.segments[addr.rank as usize].fetch_add(addr.off, add);
        let cost = if self.is_local(me, addr) {
            // Local atomics still cost a little more than plain accesses.
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_amos += 1;
            let base = self.dist(me, addr.rank as usize, self.lat().rdma_amo);
            self.fault_cost(me, addr.rank as usize, base)
        };
        (v, cost)
    }

    /// One-sided compare-and-swap; returns the observed value.
    pub fn cas_u64(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
        expect: u64,
        new: u64,
    ) -> (u64, VTime) {
        let v = self.segments[addr.rank as usize].cas(addr.off, expect, new);
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_amos += 1;
            let base = self.dist(me, addr.rank as usize, self.lat().rdma_amo);
            self.fault_cost(me, addr.rank as usize, base)
        };
        (v, cost)
    }

    /// Account a bulk one-sided read of `len` bytes from `from`'s segment
    /// (e.g. a migrated call stack). The payload itself travels through
    /// runtime-owned side tables; this charges latency + bandwidth and counts
    /// bytes.
    pub fn get_bulk(&mut self, me: WorkerId, from: WorkerId, len: usize) -> VTime {
        if from == me {
            self.stats[me].local_ops += 1;
            self.lat().local() + self.lat().payload(len) / 8
        } else {
            self.stats[me].remote_gets += 1;
            self.stats[me].bytes_got += len as u64;
            let base = self.dist(me, from, self.lat().rdma_get) + self.lat().payload(len);
            self.fault_cost(me, from, base)
        }
    }

    /// Account a bulk one-sided write of `len` bytes into `to`'s segment.
    pub fn put_bulk(&mut self, me: WorkerId, to: WorkerId, len: usize) -> VTime {
        if to == me {
            self.stats[me].local_ops += 1;
            self.lat().local() + self.lat().payload(len) / 8
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += len as u64;
            let base = self.dist(me, to, self.lat().rdma_put) + self.lat().payload(len);
            self.fault_cost(me, to, base)
        }
    }

    /// Charge a purely local operation (deque push/pop, allocator, flag poll).
    #[inline]
    pub fn local_op(&mut self, me: WorkerId) -> VTime {
        self.stats[me].local_ops += 1;
        self.lat().local()
    }

    /// Owner-side word read, free of charge: used *inside* an operation that
    /// already charged one `local_op` for its whole O(1) body (a real deque
    /// pop is one cache-resident operation, not a charge per word).
    #[inline]
    pub fn read_own(&self, me: WorkerId, addr: GlobalAddr) -> u64 {
        debug_assert_eq!(addr.rank as usize, me, "read_own must be owner-local");
        self.segments[addr.rank as usize].read(addr.off)
    }

    /// Owner-side word write, free of charge (see [`Machine::read_own`]).
    #[inline]
    pub fn write_own(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) {
        debug_assert_eq!(addr.rank as usize, me, "write_own must be owner-local");
        self.segments[addr.rank as usize].write(addr.off, v);
    }

    /// Charge a full user-level context switch (suspend/restore or fresh
    /// full-thread stack).
    #[inline]
    pub fn ctx_switch(&mut self, _me: WorkerId) -> VTime {
        self.lat().ctx_switch()
    }

    /// Charge a lightweight continuation restore (stack already resident).
    #[inline]
    pub fn ctx_restore(&mut self, _me: WorkerId) -> VTime {
        self.lat().ctx_restore()
    }

    /// Count a two-sided message send (baselines only) and return its
    /// injection cost; the delivery latency is applied by [`crate::Mailbox`].
    #[inline]
    pub fn message_sent(&mut self, me: WorkerId) -> VTime {
        self.stats[me].messages_sent += 1;
        VTime::ns(self.lat().injection)
    }

    /// Count the receiver-side handling cost of one two-sided message.
    #[inline]
    pub fn message_handled(&mut self, me: WorkerId) -> VTime {
        self.stats[me].messages_handled += 1;
        VTime::ns(self.lat().msg_handler)
    }

    /// Direct segment access for the *owner* (allocation, static layout).
    pub fn segment_mut(&mut self, rank: WorkerId) -> &mut Segment {
        &mut self.segments[rank]
    }

    pub fn segment(&self, rank: WorkerId) -> &Segment {
        &self.segments[rank]
    }

    /// Allocate a zeroed record in `rank`'s segment (owner-side allocation;
    /// thread entries are always allocated where the thread is spawned).
    pub fn alloc(&mut self, rank: WorkerId, bytes: u32) -> GlobalAddr {
        let off = self.segments[rank].alloc(bytes);
        GlobalAddr::new(rank, off)
    }

    /// Free a record in its owner's segment. Only the owner calls this
    /// directly; remote frees go through the `remote_free` protocols.
    pub fn free(&mut self, addr: GlobalAddr, bytes: u32) {
        self.segments[addr.rank as usize].free(addr.off, bytes);
    }

    pub fn stats(&self, w: WorkerId) -> &FabricStats {
        &self.stats[w]
    }

    pub fn stats_total(&self) -> FabricStats {
        let mut t = FabricStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    /// Raise the global termination flag (root task finished).
    pub fn set_done(&mut self) {
        self.done = true;
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::profiles;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::new(n, profiles::itoa()).with_seg_bytes(1 << 16))
    }

    #[test]
    fn fabric_stats_merge_sums_every_field() {
        // Exhaustive literals: adding a FabricStats field breaks this test
        // at compile time until the merge (and this check) cover it.
        let mut a = FabricStats {
            remote_gets: 1,
            remote_puts: 2,
            remote_amos: 3,
            local_ops: 4,
            bytes_got: 5,
            bytes_put: 6,
            messages_sent: 7,
            messages_handled: 8,
            retries: 9,
            timeouts: 10,
            dead_fails: 11,
        };
        let b = FabricStats {
            remote_gets: 100,
            remote_puts: 200,
            remote_amos: 300,
            local_ops: 400,
            bytes_got: 500,
            bytes_put: 600,
            messages_sent: 700,
            messages_handled: 800,
            retries: 900,
            timeouts: 1000,
            dead_fails: 1100,
        };
        a.merge(&b);
        assert_eq!(a.remote_gets, 101);
        assert_eq!(a.remote_puts, 202);
        assert_eq!(a.remote_amos, 303);
        assert_eq!(a.local_ops, 404);
        assert_eq!(a.bytes_got, 505);
        assert_eq!(a.bytes_put, 606);
        assert_eq!(a.messages_sent, 707);
        assert_eq!(a.messages_handled, 808);
        assert_eq!(a.retries, 909);
        assert_eq!(a.timeouts, 1010);
        assert_eq!(a.dead_fails, 1111);
        assert_eq!(a.remote_total(), 101 + 202 + 303);
    }

    #[test]
    fn dead_guard_fails_fast_and_counts() {
        use crate::fault::FaultPlan;
        let mut m = Machine::new(
            MachineConfig::new(3, profiles::itoa())
                .with_seg_bytes(1 << 16)
                .with_faults(FaultPlan::none().with_kill(1, VTime::us(50))),
        );
        assert!(m.recovery_armed());
        assert_eq!(m.killed_at(1), Some(VTime::us(50)));
        // Before the kill: no guard, peer reachable.
        assert!(m.dead_guard(0, 1, VTime::us(10)).is_none());
        assert!(!m.is_dead(1, VTime::us(10)));
        // After: guard trips with a bounded (round-trip-ish) cost.
        let c = m.dead_guard(0, 1, VTime::us(60)).expect("peer is dead");
        assert!(c > VTime::ZERO && c < VTime::us(50), "fail-fast, not a retry storm: {c}");
        assert_eq!(m.stats(0).dead_fails, 1);
        // Self and live peers never trip.
        assert!(m.dead_guard(1, 1, VTime::us(60)).is_none());
        assert!(m.dead_guard(0, 2, VTime::us(60)).is_none());
        // Lease confirmation trails ground truth.
        assert!(!m.confirmed_dead(1, VTime::us(60)));
        assert!(m.confirmed_dead(1, VTime::us(50) + m.fault_plan().unwrap().lease));
    }

    #[test]
    fn fresh_since_without_faults_is_always_true() {
        let m = machine(2);
        assert!(m.fresh_since(1, VTime::ZERO, VTime::ns(1)));
    }

    #[test]
    fn remote_ops_cost_more_than_local() {
        let mut m = machine(2);
        let a0 = m.alloc(0, 8);
        let a1 = m.alloc(1, 8);
        let local = m.put_u64(0, a0, 1);
        let remote = m.put_u64(0, a1, 2);
        assert!(remote > local * 10);
        let (v, _) = m.get_u64(1, a1);
        assert_eq!(v, 2);
    }

    #[test]
    fn stats_count_ops_and_bytes() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 16);
        m.put_u64(0, a1, 5);
        let _ = m.get_u64(0, a1);
        let _ = m.fetch_add_u64(0, a1.field(1), 3);
        let _ = m.get_bulk(0, 1, 1800);
        let s = m.stats(0);
        assert_eq!(s.remote_puts, 1);
        assert_eq!(s.remote_gets, 2);
        assert_eq!(s.remote_amos, 1);
        assert_eq!(s.bytes_got, 8 + 1800);
        assert_eq!(s.bytes_put, 8);
        // Worker 1 did nothing.
        assert_eq!(m.stats(1).remote_total(), 0);
    }

    #[test]
    fn fetch_add_and_cas_apply_effects() {
        let mut m = machine(2);
        let a = m.alloc(1, 8);
        let (old, _) = m.fetch_add_u64(0, a, 1);
        assert_eq!(old, 0);
        let (old, _) = m.fetch_add_u64(1, a, 1);
        assert_eq!(old, 1);
        let (seen, _) = m.cas_u64(0, a, 2, 100);
        assert_eq!(seen, 2);
        let (v, _) = m.get_u64(1, a);
        assert_eq!(v, 100);
    }

    #[test]
    fn nonblocking_put_is_cheaper() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 8);
        let blocking = m.put_u64(0, a1, 1);
        let nb = m.put_u64_nb(0, a1, 2);
        assert!(nb < blocking);
        let (v, _) = m.get_u64(1, a1);
        assert_eq!(v, 2, "non-blocking put still applies its effect");
    }

    #[test]
    fn done_flag() {
        let mut m = machine(1);
        assert!(!m.is_done());
        m.set_done();
        assert!(m.is_done());
    }

    #[test]
    fn bulk_costs_scale() {
        let mut m = machine(2);
        let small = m.get_bulk(0, 1, 56);
        let big = m.get_bulk(0, 1, 1800);
        assert!(big > small);
        let local = m.get_bulk(0, 0, 1800);
        assert!(local < small);
    }
}
