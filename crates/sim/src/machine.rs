//! The simulated machine: segments + one-sided fabric verbs + counters.
//!
//! [`Machine`] is the only way workers touch each other's memory. The fabric
//! is a *posted-operation* model, mirroring real RDMA (`ibv_post_send` /
//! `ibv_poll_cq`, MPI-3 `MPI_Rput` / `MPI_Win_flush`): `post_*` verbs apply
//! the memory effect, bump the issuing worker's [`FabricStats`], run the
//! nominal cost through the fault layer, and enqueue a completion on the
//! issuer's completion queue at its computed finish time. Workers reap with
//! [`Machine::wait`] (advance to one completion), [`Machine::poll_cq`]
//! (harvest everything already finished) or [`Machine::fence`] (wait-all,
//! the MPI `flush` analogue).
//!
//! The classic blocking verbs (`get_u64`, `put_u64`, …) are thin
//! `post + wait` wrappers and charge exactly what they always did; code that
//! never posts more than one verb at a time cannot tell the difference.
//! Local accesses (to the issuer's own segment) are charged `local_op`
//! instead of a network round trip, mirroring how the runtime in the paper
//! distinguishes local deque operations from remote steals.

use crate::fault::{FaultPlan, FaultState, MsgFate};
use crate::latency::{LatencyModel, MachineProfile};
use crate::mem::{GlobalAddr, Segment};
use crate::time::VTime;
use crate::topology::Topology;
use crate::WorkerId;

/// How protocol code drives the fabric.
///
/// The posted-verb API is always available; the mode is a *protocol-level*
/// switch the runtimes consult to decide whether independent verbs in a
/// protocol step may be posted concurrently before fencing.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum FabricMode {
    /// Every verb completes before the next is issued (the pre-refactor
    /// semantics; all goldens and check oracles are pinned to this).
    #[default]
    Blocking,
    /// Independent verbs within a protocol step are posted back-to-back and
    /// reaped with one fence, so their latencies overlap (MassiveThreads/DM
    /// style latency hiding).
    Pipelined,
}

impl FabricMode {
    pub fn label(&self) -> &'static str {
        match self {
            FabricMode::Blocking => "blocking",
            FabricMode::Pipelined => "pipelined",
        }
    }
}

/// Machine construction parameters.
#[derive(Clone, Debug)]
pub struct MachineConfig {
    pub workers: usize,
    pub profile: MachineProfile,
    /// Capacity of each worker's pinned segment, bytes.
    pub seg_bytes: u32,
    /// Bytes at the start of each segment reserved for statically placed
    /// runtime structures (deque control words + ring buffer).
    pub seg_reserved: u32,
    /// Network topology (distance-scaled remote latencies).
    pub topology: Topology,
    /// Fault-injection plan; [`FaultPlan::none()`] disables the layer
    /// entirely (no RNG draws, no cost changes).
    pub faults: FaultPlan,
    /// Whether protocol hot paths may overlap independent verbs.
    pub fabric: FabricMode,
    /// Doorbell-batching discount: fraction of `injection` charged to the
    /// second and later verbs of a [`Machine::chain_begin`] chain (real NICs
    /// ring one doorbell for a linked list of work requests). `1.0` (the
    /// default) keeps chained charges arithmetically identical to unchained
    /// posts, so every golden stays byte-identical.
    pub doorbell_frac: f64,
}

impl MachineConfig {
    pub fn new(workers: usize, profile: MachineProfile) -> MachineConfig {
        MachineConfig {
            workers,
            profile,
            seg_bytes: 8 << 20,
            seg_reserved: 0,
            topology: Topology::Flat,
            faults: FaultPlan::none(),
            fabric: FabricMode::Blocking,
            doorbell_frac: 1.0,
        }
    }

    pub fn with_fabric(mut self, mode: FabricMode) -> MachineConfig {
        self.fabric = mode;
        self
    }

    pub fn with_doorbell(mut self, frac: f64) -> MachineConfig {
        self.doorbell_frac = frac;
        self
    }

    pub fn with_reserved(mut self, bytes: u32) -> MachineConfig {
        self.seg_reserved = bytes;
        self
    }

    pub fn with_seg_bytes(mut self, bytes: u32) -> MachineConfig {
        self.seg_bytes = bytes;
        self
    }

    pub fn with_topology(mut self, t: Topology) -> MachineConfig {
        self.topology = t;
        self
    }

    pub fn with_faults(mut self, plan: FaultPlan) -> MachineConfig {
        self.faults = plan;
        self
    }
}

/// Per-worker fabric operation counters (ops and bytes, split local/remote).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FabricStats {
    pub remote_gets: u64,
    pub remote_puts: u64,
    pub remote_amos: u64,
    pub local_ops: u64,
    pub bytes_got: u64,
    pub bytes_put: u64,
    pub messages_sent: u64,
    pub messages_handled: u64,
    /// Remote verb attempts re-issued after a transient failure.
    pub retries: u64,
    /// Remote verb attempts that timed out against an unresponsive peer.
    pub timeouts: u64,
    /// Remote verb attempts that failed fast against a fail-stopped peer.
    pub dead_fails: u64,
    /// High-water mark of verbs outstanding on this worker's completion
    /// queue (the posted verb itself included). Blocking-mode runs never
    /// exceed 1; pipelined hot paths push it higher.
    pub max_inflight: u64,
    /// Completion-queue reap calls ([`Machine::poll_cq`] + [`Machine::fence`]).
    /// `wait` on a single handle is not counted: a blocking wrapper is not a
    /// poll, so pure-Blocking runs report 0 here.
    pub cq_polls: u64,
    /// Verbs that rode an already-rung doorbell: the second and later posts
    /// of each [`Machine::chain_begin`] chain, charged the configured
    /// fraction of `injection` instead of the full CPU post cost.
    pub doorbell_chained: u64,
    /// Recovery-relevant verbs rejected by the epoch fence: the issuer's
    /// view of the target's incarnation (or of its own) was stale, so the
    /// verb was refused instead of tearing post-eviction state. See
    /// [`Machine::fence_verb`].
    pub fenced_verbs: u64,
    /// High-water mark of host bytes resident for *this worker's* pinned
    /// segment, at page granularity: backing pages materialize on the first
    /// non-zero write they receive, so a worker that is never written
    /// reports 0 and one whose traffic stays inside its deque control words
    /// reports a single page — regardless of the configured `seg_bytes`.
    /// The machine-wide total ([`FabricStats::merge`] sums this field)
    /// therefore grows with the number of *touched pages*, not with
    /// `workers × seg_bytes`.
    pub peak_resident_bytes: u64,
}

impl FabricStats {
    pub fn remote_total(&self) -> u64 {
        self.remote_gets + self.remote_puts + self.remote_amos
    }

    pub fn merge(&mut self, o: &FabricStats) {
        // Destructured so adding a field without summing it here is a
        // compile error, not a silently wrong merge.
        let FabricStats {
            remote_gets,
            remote_puts,
            remote_amos,
            local_ops,
            bytes_got,
            bytes_put,
            messages_sent,
            messages_handled,
            retries,
            timeouts,
            dead_fails,
            max_inflight,
            cq_polls,
            doorbell_chained,
            fenced_verbs,
            peak_resident_bytes,
        } = *o;
        self.remote_gets += remote_gets;
        self.remote_puts += remote_puts;
        self.remote_amos += remote_amos;
        self.local_ops += local_ops;
        self.bytes_got += bytes_got;
        self.bytes_put += bytes_put;
        self.messages_sent += messages_sent;
        self.messages_handled += messages_handled;
        self.retries += retries;
        self.timeouts += timeouts;
        self.dead_fails += dead_fails;
        // Completion queues are per worker, so the machine-wide figure is
        // the deepest any single queue ever got, not a sum.
        self.max_inflight = self.max_inflight.max(max_inflight);
        self.cq_polls += cq_polls;
        self.doorbell_chained += doorbell_chained;
        self.fenced_verbs += fenced_verbs;
        // Segments are disjoint host allocations, so the machine-wide
        // footprint is the sum of the per-worker high-water marks.
        self.peak_resident_bytes += peak_resident_bytes;
    }
}

/// A posted verb awaiting completion. Returned by the `post_*` family;
/// redeemed by [`Machine::wait`] or reaped in bulk via [`Machine::poll_cq`]
/// / [`Machine::fence`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct VerbHandle {
    worker: WorkerId,
    id: u64,
}

impl VerbHandle {
    /// The id completions carry, for matching [`Completion::id`].
    #[inline]
    pub fn id(&self) -> u64 {
        self.id
    }
}

/// One reaped completion-queue entry.
#[derive(Clone, Copy, Debug)]
pub struct Completion {
    /// Matches [`VerbHandle::id`] of the post that produced it.
    pub id: u64,
    /// The verb's read result (fetched value for get/amo/cas; 0 for writes
    /// and bulk transfers, whose payloads travel through runtime-owned side
    /// tables).
    pub value: u64,
    /// Absolute virtual instant the verb retired, on the issuer's clock
    /// origin (posts made with `at = VTime::ZERO` report their cost here).
    pub finish: VTime,
}

/// An entry outstanding on a worker's completion queue.
#[derive(Clone, Copy, Debug)]
struct CqEntry {
    id: u64,
    target: WorkerId,
    value: u64,
    finish: VTime,
}

/// Per-worker completion queue: verbs posted, not yet reaped.
#[derive(Default)]
struct CompletionQueue {
    next_id: u64,
    inflight: Vec<CqEntry>,
}

/// The simulated cluster: one segment per worker plus the latency model.
pub struct Machine {
    pub cfg: MachineConfig,
    /// Per-worker pinned segments, materialized on first *mutating* touch
    /// (write, atomic, allocation). Reads of an absent segment report 0 —
    /// exactly what a freshly calloc'd segment holds — so laziness is
    /// unobservable to the simulation; it only keeps an idle worker's host
    /// footprint at O(1) bytes instead of `seg_bytes`.
    segments: Vec<Option<Segment>>,
    stats: Vec<FabricStats>,
    /// One completion queue per worker (posted verbs not yet reaped).
    cqs: Vec<CompletionQueue>,
    /// Per-worker doorbell-chain state: `Some(n)` while a chain is open,
    /// where `n` counts the verbs already posted inside it. The first verb
    /// of a chain rings the doorbell (full `injection`); later ones ride it
    /// at `doorbell_frac` of the cost.
    chain: Vec<Option<u32>>,
    /// Fault-injection state; `None` when the plan is inactive, which makes
    /// the fault layer literally free (one branch per verb).
    faults: Option<Box<FaultState>>,
    /// Per-worker incarnation epochs of the cluster-membership view. Bumped
    /// by [`Machine::evict`] when a worker is confirmed dead (rightly or,
    /// under the message detector, wrongly); recovery-relevant verbs carry
    /// the issuer's epoch view and are refused by [`Machine::fence_verb`]
    /// when it is stale. All-zero for the entire run unless an eviction
    /// happens, so healthy runs are untouched.
    epochs: Vec<u64>,
    /// Global termination flag. In a real deployment this is a tiny
    /// RDMA-broadcast epoch counter; idle loops poll it at local cost.
    done: bool,
    /// Per-rank park watch: `Some` while that worker is parked on a word
    /// of its own segment (see [`Machine::park_on_own_word`]).
    parked: Vec<Option<ParkWatch>>,
    /// Wake instants computed since the engine last drained them.
    wakeups: Vec<(VTime, WorkerId)>,
    /// The actor currently stepping and its step-start clock — i.e. the
    /// engine key `(step_now, step_cur)` of the step every eager memory
    /// effect belongs to. Recorded by [`Machine::begin_step`]; wake-instant
    /// computation orders writes against parked pollers by this key.
    step_cur: WorkerId,
    step_now: VTime,
}

/// A worker parked on one word of its own segment instead of re-polling it
/// every `grid_ns` of virtual time. The watch carries everything needed to
/// reproduce the abandoned polling loop exactly: the instant of the last
/// real poll (`since`), the poll period (`grid_ns`), and the fabric charge
/// (`charge` local ops) each skipped poll would have made.
#[derive(Clone, Copy, Debug)]
struct ParkWatch {
    off: u32,
    since: VTime,
    grid_ns: u64,
    charge: u64,
}

impl Machine {
    pub fn new(cfg: MachineConfig) -> Machine {
        let segments = (0..cfg.workers).map(|_| None).collect();
        let stats = vec![FabricStats::default(); cfg.workers];
        let cqs = (0..cfg.workers).map(|_| CompletionQueue::default()).collect();
        let chain = vec![None; cfg.workers];
        let faults = cfg
            .faults
            .is_active()
            .then(|| Box::new(FaultState::new(cfg.faults.clone(), cfg.workers)));
        let epochs = vec![0; cfg.workers];
        let parked = vec![None; epochs.len()];
        Machine {
            cfg,
            segments,
            stats,
            cqs,
            chain,
            faults,
            epochs,
            done: false,
            parked,
            wakeups: Vec::new(),
            step_cur: 0,
            step_now: VTime::ZERO,
        }
    }

    /// The configured fabric driving mode.
    #[inline]
    pub fn fabric(&self) -> FabricMode {
        self.cfg.fabric
    }

    #[inline]
    pub fn workers(&self) -> usize {
        self.cfg.workers
    }

    #[inline]
    pub fn lat(&self) -> &LatencyModel {
        &self.cfg.profile.latency
    }

    #[inline]
    pub fn profile(&self) -> &MachineProfile {
        &self.cfg.profile
    }

    #[inline]
    fn is_local(&self, me: WorkerId, addr: GlobalAddr) -> bool {
        addr.rank as usize == me
    }

    /// Scale the network component of a remote cost by the topology
    /// distance; the CPU-side injection part is distance-independent.
    #[inline]
    fn dist(&self, me: WorkerId, other: WorkerId, network_ns: u64) -> VTime {
        let f = self.cfg.topology.factor(me, other);
        VTime::ns(self.lat().injection + (network_ns as f64 * f).round() as u64)
    }

    #[inline]
    pub fn topology(&self) -> &Topology {
        &self.cfg.topology
    }

    // ------------------------------------------------------------------
    // Lazy segment materialization
    // ------------------------------------------------------------------

    /// Read a word of `rank`'s segment without materializing it: an absent
    /// segment is indistinguishable from an all-zero one.
    #[inline]
    fn seg_read(&self, rank: usize, off: u32) -> u64 {
        self.segments[rank].as_ref().map_or(0, |s| s.read(off))
    }

    /// The segment backing `rank`, materialized on first mutating touch.
    /// Materialization is pure host-side bookkeeping (a fresh segment is
    /// all-zero, exactly what [`Machine::seg_read`] reported while it was
    /// absent) and costs only the page table — backing pages materialize
    /// one by one as words are written (see [`crate::mem::Segment`]), and
    /// [`Machine::note_word_write`] keeps the resident stat in step.
    #[inline]
    fn seg_mut(&mut self, rank: usize) -> &mut Segment {
        let slot = &mut self.segments[rank];
        if slot.is_none() {
            *slot = Some(Segment::new(self.cfg.seg_bytes, self.cfg.seg_reserved));
        }
        slot.as_mut().expect("just materialized")
    }

    // ------------------------------------------------------------------
    // Doorbell chains: one CPU doorbell for a linked list of work requests
    // ------------------------------------------------------------------

    /// Open a doorbell chain for `me`: the next posted verb rings the
    /// doorbell at full `injection`; verbs posted after it (until
    /// [`Machine::chain_end`]) ride the same doorbell and are charged
    /// `doorbell_frac · injection` instead. Only the CPU post cost is
    /// discounted — wire latency, topology scaling and the fault layer are
    /// untouched, so with `doorbell_frac = 1.0` a chain is charge-identical
    /// to unchained posts. Chains do not nest.
    pub fn chain_begin(&mut self, me: WorkerId) {
        debug_assert!(self.chain[me].is_none(), "doorbell chains do not nest");
        self.chain[me] = Some(0);
    }

    /// Close `me`'s doorbell chain (idempotent).
    pub fn chain_end(&mut self, me: WorkerId) {
        self.chain[me] = None;
    }

    /// CPU injection charge for the next remote verb by `me`, accounting
    /// for an open doorbell chain.
    #[inline]
    fn chain_injection(&mut self, me: WorkerId) -> u64 {
        let inj = self.cfg.profile.latency.injection;
        match self.chain[me].as_mut() {
            None => inj,
            Some(n) => {
                *n += 1;
                if *n == 1 {
                    inj
                } else {
                    self.stats[me].doorbell_chained += 1;
                    (inj as f64 * self.cfg.doorbell_frac).round() as u64
                }
            }
        }
    }

    /// Chain-aware variant of [`Machine::dist`], used by the posted verbs:
    /// same topology-scaled network component, but the injection part is the
    /// doorbell charge for `me`'s current chain state.
    #[inline]
    fn dist_chained(&mut self, me: WorkerId, other: WorkerId, network_ns: u64) -> VTime {
        let inj = self.chain_injection(me);
        let f = self.cfg.topology.factor(me, other);
        VTime::ns(inj + (network_ns as f64 * f).round() as u64)
    }

    /// Run a remote verb's nominal cost through the fault layer: retries,
    /// backoff, crash-window timeouts, and degraded-NIC scaling. Identity
    /// when faults are disabled.
    #[inline]
    fn fault_cost(&mut self, me: WorkerId, peer: WorkerId, base: VTime) -> VTime {
        match self.faults.as_mut() {
            None => base,
            Some(fs) => {
                let s = &mut self.stats[me];
                fs.charge_verb(me, peer, base, &mut s.retries, &mut s.timeouts)
            }
        }
    }

    /// Record the issuing worker's clock at the top of its step: the
    /// `(now, me)` engine key orders this step's eager memory effects
    /// against parked pollers (see [`Machine::park_on_own_word`]), and
    /// fault windows (crash, degraded NIC) are evaluated against the right
    /// virtual instant.
    #[inline]
    pub fn begin_step(&mut self, me: WorkerId, now: VTime) {
        self.step_cur = me;
        self.step_now = now;
        if let Some(fs) = self.faults.as_mut() {
            fs.begin_step(me, now);
        }
    }

    /// True when a fault plan is loaded.
    #[inline]
    pub fn faults_active(&self) -> bool {
        self.faults.is_some()
    }

    /// The loaded fault plan, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.faults.as_ref().map(|f| f.plan())
    }

    /// Failed verb attempts by `me` since the last poll (feeds victim
    /// blacklists); always 0 when faults are disabled.
    pub fn take_faults(&mut self, me: WorkerId) -> u64 {
        self.faults.as_mut().map_or(0, |fs| fs.take_faults(me))
    }

    /// End of a crash window covering `worker` at `now`, if it is currently
    /// crash-stopped. Actors poll this for *themselves* at the top of a step
    /// and sleep until recovery.
    pub fn crashed_until(&self, worker: WorkerId, now: VTime) -> Option<VTime> {
        self.faults
            .as_ref()
            .and_then(|fs| fs.crashed_until(worker, now))
    }

    /// Decide the fabric fate of one two-sided message sent by `me`.
    /// Task-carrying messages must pass `droppable = false` (reliable
    /// channel: never dropped, possibly duplicated).
    pub fn msg_fate(&mut self, me: WorkerId, droppable: bool) -> MsgFate {
        self.faults
            .as_mut()
            .map_or(MsgFate::Deliver, |fs| fs.msg_fate(me, droppable))
    }

    // ------------------------------------------------------------------
    // Fail-stop kills and the heartbeat/lease registry
    // ------------------------------------------------------------------

    /// True when the recovery machinery must run (a kill is scheduled or
    /// `recover=on`).
    #[inline]
    pub fn recovery_armed(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|fs| fs.plan().recovery_armed())
    }

    /// Kill time of `worker` under the loaded plan, if any.
    pub fn killed_at(&self, worker: WorkerId) -> Option<VTime> {
        self.faults.as_ref().and_then(|fs| fs.killed_at(worker))
    }

    /// Is `worker` fail-stopped at `now`? Ground truth (the NIC's view);
    /// survivors learn it through [`Machine::dead_guard`] errors or the
    /// lease registry.
    #[inline]
    pub fn is_dead(&self, worker: WorkerId, now: VTime) -> bool {
        self.faults.as_ref().is_some_and(|fs| fs.is_dead(worker, now))
    }

    /// Has `worker`'s heartbeat lease expired at `now`? Sound: only
    /// genuinely dead workers are ever confirmed (a live worker's beats
    /// never stop). Reading the local lease-registry replica costs nothing
    /// extra beyond the idle step that polls it.
    #[inline]
    pub fn confirmed_dead(&self, worker: WorkerId, now: VTime) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|fs| fs.confirmed_dead(worker, now))
    }

    /// Advance `cursor` through the detector's candidate feed up to `now`,
    /// appending the id of every worker whose [`Machine::confirmed_dead`]
    /// status may have changed since the cursor's last position (see
    /// [`crate::fault::FaultState::death_candidates`]). Consumers re-check
    /// only the returned workers instead of scanning the whole registry —
    /// O(status changes) per run, not O(workers) per poll. No-op (and
    /// `out` stays empty) without a fault plan.
    pub fn death_candidates(&mut self, cursor: &mut usize, now: VTime, out: &mut Vec<WorkerId>) {
        if let Some(fs) = &mut self.faults {
            fs.death_candidates(cursor, now, out);
        }
    }

    /// Has `worker` published a heartbeat strictly after `since` that is
    /// visible at `now`? (Termination attest rule.)
    #[inline]
    pub fn fresh_since(&self, worker: WorkerId, since: VTime, now: VTime) -> bool {
        self.faults
            .as_ref()
            .is_none_or(|fs| fs.fresh_since(worker, since, now))
    }

    /// Guard a remote protocol operation by `me` against `peer` at `now`:
    /// if the peer is fail-stopped the verb does not happen — the NIC
    /// reports the peer unreachable after roughly one round trip, and the
    /// returned cost is that error latency. `None` means the peer is up and
    /// the caller proceeds with the real verbs.
    ///
    /// Granularity note: the guard is evaluated once at the top of a
    /// protocol step; a peer whose kill instant falls inside the step is
    /// treated as dying just after it (operations already in flight
    /// linearize before the death).
    pub fn dead_guard(&mut self, me: WorkerId, peer: WorkerId, now: VTime) -> Option<VTime> {
        if me != peer && self.is_dead(peer, now) {
            self.stats[me].dead_fails += 1;
            Some(self.dist(me, peer, self.lat().rdma_get))
        } else {
            None
        }
    }

    // ------------------------------------------------------------------
    // Incarnation epochs (cluster-membership view)
    // ------------------------------------------------------------------

    /// Current incarnation epoch of `worker`. 0 until its first eviction.
    #[inline]
    pub fn epoch_of(&self, worker: WorkerId) -> u64 {
        self.epochs[worker]
    }

    /// Evict `worker`'s current incarnation: bump its epoch so every verb
    /// still tagged with the old one is refused from here on. Called by the
    /// first confirmer (ClaimSet-arbitrated on the scheduler side, so the
    /// bump happens exactly once per incarnation). Returns the new epoch.
    ///
    /// In a real deployment this is a membership write to the same
    /// well-known registry the heartbeats land in; survivors piggyback the
    /// refreshed view on their next lease read, which the idle loop already
    /// charges for.
    pub fn evict(&mut self, worker: WorkerId) -> u64 {
        self.epochs[worker] += 1;
        self.epochs[worker]
    }

    /// Epoch fence for a recovery-relevant verb issued by `me` under the
    /// view that `target` is at incarnation `view`. Returns `true` — and
    /// counts it in [`FabricStats::fenced_verbs`] — when the view is stale
    /// and the verb must not happen (the target NIC would reject the
    /// stale-tagged work request). Purely a host-side comparison against
    /// the locally cached membership view: no fabric verbs, no cost —
    /// the issuer learns nothing it wasn't already charged for.
    ///
    /// Self-fences (`target == me`) are how a zombie observes its own
    /// eviction: its next step sees its epoch moved on and quiesces instead
    /// of issuing the verb.
    #[inline]
    pub fn fence_verb(&mut self, me: WorkerId, view: u64, target: WorkerId) -> bool {
        if self.epochs[target] > view {
            self.stats[me].fenced_verbs += 1;
            true
        } else {
            false
        }
    }

    /// True when the loaded plan's detector can falsely suspect a live
    /// worker (message detector). Strict accounting must be off then.
    #[inline]
    pub fn suspicion_possible(&self) -> bool {
        self.faults
            .as_ref()
            .is_some_and(|fs| fs.plan().suspicion_possible())
    }

    /// True when an evicted-but-live worker may rejoin as a fresh
    /// incarnation (the plan's `rejoin=` clause; on by default).
    #[inline]
    pub fn rejoin_allowed(&self) -> bool {
        self.faults.as_ref().is_some_and(|fs| fs.plan().rejoin)
    }

    // ------------------------------------------------------------------
    // Posted verbs: issue now, reap later
    // ------------------------------------------------------------------
    //
    // Every `post_*` takes `at` — the issuer's virtual instant of the post
    // (step start + cost accrued so far). The memory effect is applied at
    // post (effects are eager everywhere in this simulator: races resolve
    // within one latency window, each op linearizes at issue), the nominal
    // cost runs through the fault layer *at post* — so retries, backoff,
    // timeouts and degraded-NIC scaling draw exactly the RNG sequence the
    // blocking verbs drew — and the completion lands on the issuer's queue
    // at `at + cost`.

    /// Enqueue one completion. Verbs to the same peer ride the same queue
    /// pair, so they retire in post order: a completion is clamped to no
    /// earlier than any still-inflight verb to the same target.
    fn post_core(
        &mut self,
        me: WorkerId,
        target: WorkerId,
        value: u64,
        cost: VTime,
        at: VTime,
    ) -> VerbHandle {
        let cq = &mut self.cqs[me];
        let mut finish = at + cost;
        for e in &cq.inflight {
            if e.target == target && e.finish > finish {
                finish = e.finish;
            }
        }
        let id = cq.next_id;
        cq.next_id += 1;
        cq.inflight.push(CqEntry { id, target, value, finish });
        let depth = cq.inflight.len() as u64;
        if depth > self.stats[me].max_inflight {
            self.stats[me].max_inflight = depth;
        }
        VerbHandle { worker: me, id }
    }

    /// Track the instantaneous queue depth for an unsignaled post, which
    /// never materializes a reapable entry.
    #[inline]
    fn note_unsignaled_depth(&mut self, me: WorkerId) {
        let depth = self.cqs[me].inflight.len() as u64 + 1;
        if depth > self.stats[me].max_inflight {
            self.stats[me].max_inflight = depth;
        }
    }

    /// Post `get v ← L` of the paper's pseudocode: one-sided small read.
    pub fn post_get_u64(&mut self, me: WorkerId, addr: GlobalAddr, at: VTime) -> VerbHandle {
        let v = self.seg_read(addr.rank as usize, addr.off);
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_gets += 1;
            self.stats[me].bytes_got += 8;
            let base = self.dist_chained(me, addr.rank as usize, self.lat().rdma_get);
            self.fault_cost(me, addr.rank as usize, base)
        };
        self.post_core(me, addr.rank as usize, v, cost, at)
    }

    /// Post one read covering `N` *adjacent* words starting at `addr` —
    /// a single small get spanning a contiguous record (deque bounds,
    /// a ring-slot entry). One verb on the wire: one `remote_gets`, one
    /// RDMA-read round trip, `8·N` bytes. The word values are returned
    /// eagerly at post (verb memory effects are eager everywhere here);
    /// the handle's completion carries the first word.
    pub fn post_get_u64_span<const N: usize>(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
        at: VTime,
    ) -> ([u64; N], VerbHandle) {
        let mut vals = [0u64; N];
        for (i, v) in vals.iter_mut().enumerate() {
            *v = self.seg_read(addr.rank as usize, addr.off + i as u32 * crate::WORD);
        }
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_gets += 1;
            self.stats[me].bytes_got += 8 * N as u64;
            let base = self.dist_chained(me, addr.rank as usize, self.lat().rdma_get);
            self.fault_cost(me, addr.rank as usize, base)
        };
        let h = self.post_core(me, addr.rank as usize, vals[0], cost, at);
        (vals, h)
    }

    /// Post `put L ← v`: one-sided small write, signaled.
    pub fn post_put_u64(&mut self, me: WorkerId, addr: GlobalAddr, v: u64, at: VTime) -> VerbHandle {
        self.seg_mut(addr.rank as usize).write(addr.off, v);
        self.note_word_write(addr.rank as usize, addr.off);
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += 8;
            let base = self.dist_chained(me, addr.rank as usize, self.lat().rdma_put);
            self.fault_cost(me, addr.rank as usize, base)
        };
        self.post_core(me, addr.rank as usize, 0, cost, at)
    }

    /// Post an *unsignaled* put: the issuer pays only the injection overhead
    /// and never reaps a completion — retirement is subsumed by adjacent
    /// signaled traffic on the same queue pair. Used by the local-collection
    /// free-bit scheme (§III-B), whose point is that remote frees cost one
    /// non-blocking communication, and by protocol writes that ride an
    /// already-charged packet window.
    pub fn post_put_u64_unsignaled(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) -> VTime {
        self.seg_mut(addr.rank as usize).write(addr.off, v);
        self.note_word_write(addr.rank as usize, addr.off);
        self.note_unsignaled_depth(me);
        if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += 8;
            // Unsignaled puts still go through the reliable retransmitting
            // channel: a lost free-bit would leak memory forever, so the NIC
            // retries; the issuer is charged the (rare) extra injections.
            let base = VTime::ns(self.chain_injection(me));
            self.fault_cost(me, addr.rank as usize, base)
        }
    }

    /// Post an *unsignaled* bulk put: like
    /// [`Self::post_put_u64_unsignaled`], but for a small payload that still
    /// rides a single injection (e.g. an inlined checkpoint header). The
    /// issuer pays the non-blocking injection plus wire serialization and
    /// never reaps a completion.
    pub fn post_put_bulk_unsignaled(&mut self, me: WorkerId, to: WorkerId, len: usize) -> VTime {
        self.note_unsignaled_depth(me);
        if to == me {
            self.stats[me].local_ops += 1;
            self.lat().local() + self.lat().payload(len) / 8
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += len as u64;
            let base = VTime::ns(self.chain_injection(me)) + self.lat().payload(len);
            self.fault_cost(me, to, base)
        }
    }

    /// Post `fetch_and_add(L, v)`: one-sided atomic; the completion carries
    /// the fetched value.
    pub fn post_fetch_add_u64(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
        add: u64,
        at: VTime,
    ) -> VerbHandle {
        let v = self.seg_mut(addr.rank as usize).fetch_add(addr.off, add);
        self.note_word_write(addr.rank as usize, addr.off);
        let cost = if self.is_local(me, addr) {
            // Local atomics still cost a little more than plain accesses.
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_amos += 1;
            let base = self.dist_chained(me, addr.rank as usize, self.lat().rdma_amo);
            self.fault_cost(me, addr.rank as usize, base)
        };
        self.post_core(me, addr.rank as usize, v, cost, at)
    }

    /// Post a one-sided compare-and-swap; the completion carries the
    /// observed value.
    pub fn post_cas_u64(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
        expect: u64,
        new: u64,
        at: VTime,
    ) -> VerbHandle {
        let v = self.seg_mut(addr.rank as usize).cas(addr.off, expect, new);
        if v == expect {
            // Only a successful CAS writes the word.
            self.note_word_write(addr.rank as usize, addr.off);
        }
        let cost = if self.is_local(me, addr) {
            self.stats[me].local_ops += 1;
            self.lat().local()
        } else {
            self.stats[me].remote_amos += 1;
            let base = self.dist_chained(me, addr.rank as usize, self.lat().rdma_amo);
            self.fault_cost(me, addr.rank as usize, base)
        };
        self.post_core(me, addr.rank as usize, v, cost, at)
    }

    /// Post a bulk one-sided read of `len` bytes from `from`'s segment
    /// (e.g. a migrated call stack). The payload itself travels through
    /// runtime-owned side tables; this charges latency + bandwidth and
    /// counts bytes.
    pub fn post_get_bulk(&mut self, me: WorkerId, from: WorkerId, len: usize, at: VTime) -> VerbHandle {
        let cost = if from == me {
            self.stats[me].local_ops += 1;
            self.lat().local() + self.lat().payload(len) / 8
        } else {
            self.stats[me].remote_gets += 1;
            self.stats[me].bytes_got += len as u64;
            let base = self.dist_chained(me, from, self.lat().rdma_get) + self.lat().payload(len);
            self.fault_cost(me, from, base)
        };
        self.post_core(me, from, 0, cost, at)
    }

    /// Post a bulk one-sided write of `len` bytes into `to`'s segment.
    pub fn post_put_bulk(&mut self, me: WorkerId, to: WorkerId, len: usize, at: VTime) -> VerbHandle {
        let cost = if to == me {
            self.stats[me].local_ops += 1;
            self.lat().local() + self.lat().payload(len) / 8
        } else {
            self.stats[me].remote_puts += 1;
            self.stats[me].bytes_put += len as u64;
            let base = self.dist_chained(me, to, self.lat().rdma_put) + self.lat().payload(len);
            self.fault_cost(me, to, base)
        };
        self.post_core(me, to, 0, cost, at)
    }

    /// Block on one posted verb: remove it from the completion queue and
    /// return `(value, finish)`. The caller advances its clock to `finish`
    /// (for a post made at `at = VTime::ZERO`, `finish` *is* the verb cost).
    pub fn wait(&mut self, me: WorkerId, h: VerbHandle) -> (u64, VTime) {
        debug_assert_eq!(h.worker, me, "handles are not transferable");
        let cq = &mut self.cqs[me];
        let pos = cq
            .inflight
            .iter()
            .position(|e| e.id == h.id)
            .expect("wait on an unposted or already-reaped verb");
        let e = cq.inflight.remove(pos);
        (e.value, e.finish)
    }

    /// Reap every completion that has finished by `at` (leaving later ones
    /// inflight), in post order. The non-blocking progress check of the
    /// posted model.
    pub fn poll_cq(&mut self, me: WorkerId, at: VTime) -> Vec<Completion> {
        self.stats[me].cq_polls += 1;
        let cq = &mut self.cqs[me];
        let mut out = Vec::new();
        let mut i = 0;
        while i < cq.inflight.len() {
            if cq.inflight[i].finish <= at {
                let e = cq.inflight.remove(i);
                out.push(Completion { id: e.id, value: e.value, finish: e.finish });
            } else {
                i += 1;
            }
        }
        out
    }

    /// Wait-all (the MPI `flush` analogue): drain the issuer's completion
    /// queue and return the instant the last verb retired (or `at` when
    /// nothing was inflight). Values are discarded — `wait` the handles
    /// whose results matter before fencing the rest.
    pub fn fence(&mut self, me: WorkerId, at: VTime) -> VTime {
        self.stats[me].cq_polls += 1;
        let mut t = at;
        for e in self.cqs[me].inflight.drain(..) {
            if e.finish > t {
                t = e.finish;
            }
        }
        t
    }

    /// Verbs currently outstanding on `me`'s completion queue.
    #[inline]
    pub fn cq_depth(&self, me: WorkerId) -> usize {
        self.cqs[me].inflight.len()
    }

    // ------------------------------------------------------------------
    // Blocking wrappers: post + wait, charging exactly the posted cost
    // ------------------------------------------------------------------

    /// `get v ← L` of the paper's pseudocode: one-sided small read.
    pub fn get_u64(&mut self, me: WorkerId, addr: GlobalAddr) -> (u64, VTime) {
        let h = self.post_get_u64(me, addr, VTime::ZERO);
        self.wait(me, h)
    }

    /// Blocking span read of `N` adjacent words (see
    /// [`Machine::post_get_u64_span`]): one verb, one round trip.
    pub fn get_u64_span<const N: usize>(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
    ) -> ([u64; N], VTime) {
        let (vals, h) = self.post_get_u64_span::<N>(me, addr, VTime::ZERO);
        let (_, t) = self.wait(me, h);
        (vals, t)
    }

    /// `put L ← v`: one-sided small write; the issuer waits for completion.
    pub fn put_u64(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) -> VTime {
        let h = self.post_put_u64(me, addr, v, VTime::ZERO);
        self.wait(me, h).1
    }

    /// `fetch_and_add(L, v)`: one-sided atomic.
    pub fn fetch_add_u64(&mut self, me: WorkerId, addr: GlobalAddr, add: u64) -> (u64, VTime) {
        let h = self.post_fetch_add_u64(me, addr, add, VTime::ZERO);
        self.wait(me, h)
    }

    /// One-sided compare-and-swap; returns the observed value.
    pub fn cas_u64(
        &mut self,
        me: WorkerId,
        addr: GlobalAddr,
        expect: u64,
        new: u64,
    ) -> (u64, VTime) {
        let h = self.post_cas_u64(me, addr, expect, new, VTime::ZERO);
        self.wait(me, h)
    }

    /// Blocking bulk one-sided read (see [`Machine::post_get_bulk`]).
    pub fn get_bulk(&mut self, me: WorkerId, from: WorkerId, len: usize) -> VTime {
        let h = self.post_get_bulk(me, from, len, VTime::ZERO);
        self.wait(me, h).1
    }

    /// Blocking bulk one-sided write (see [`Machine::post_put_bulk`]).
    pub fn put_bulk(&mut self, me: WorkerId, to: WorkerId, len: usize) -> VTime {
        let h = self.post_put_bulk(me, to, len, VTime::ZERO);
        self.wait(me, h).1
    }

    /// Charge a purely local operation (deque push/pop, allocator, flag poll).
    #[inline]
    pub fn local_op(&mut self, me: WorkerId) -> VTime {
        self.stats[me].local_ops += 1;
        self.lat().local()
    }

    /// Owner-side word read, free of charge: used *inside* an operation that
    /// already charged one `local_op` for its whole O(1) body (a real deque
    /// pop is one cache-resident operation, not a charge per word).
    #[inline]
    pub fn read_own(&self, me: WorkerId, addr: GlobalAddr) -> u64 {
        debug_assert_eq!(addr.rank as usize, me, "read_own must be owner-local");
        self.seg_read(addr.rank as usize, addr.off)
    }

    /// Owner-side word write, free of charge (see [`Machine::read_own`]).
    #[inline]
    pub fn write_own(&mut self, me: WorkerId, addr: GlobalAddr, v: u64) {
        debug_assert_eq!(addr.rank as usize, me, "write_own must be owner-local");
        self.seg_mut(addr.rank as usize).write(addr.off, v);
        self.note_word_write(addr.rank as usize, addr.off);
    }

    /// Charge a full user-level context switch (suspend/restore or fresh
    /// full-thread stack).
    #[inline]
    pub fn ctx_switch(&mut self, _me: WorkerId) -> VTime {
        self.lat().ctx_switch()
    }

    /// Charge a lightweight continuation restore (stack already resident).
    #[inline]
    pub fn ctx_restore(&mut self, _me: WorkerId) -> VTime {
        self.lat().ctx_restore()
    }

    /// Count a two-sided message send (baselines only) and return its
    /// injection cost; the delivery latency is applied by [`crate::Mailbox`].
    #[inline]
    pub fn message_sent(&mut self, me: WorkerId) -> VTime {
        self.stats[me].messages_sent += 1;
        VTime::ns(self.lat().injection)
    }

    /// Count the receiver-side handling cost of one two-sided message.
    #[inline]
    pub fn message_handled(&mut self, me: WorkerId) -> VTime {
        self.stats[me].messages_handled += 1;
        VTime::ns(self.lat().msg_handler)
    }

    /// Cost-free host-side word write (setup phase), the mutating mirror of
    /// [`Machine::peek_word`]. Goes through the same write path as the
    /// fabric verbs so page residency accounting (and parked-worker wakes)
    /// stay exact.
    pub fn poke_word(&mut self, addr: GlobalAddr, v: u64) {
        self.seg_mut(addr.rank as usize).write(addr.off, v);
        self.note_word_write(addr.rank as usize, addr.off);
    }

    /// Cost-free host-side word read (setup / verification), valid whether
    /// or not the segment has been materialized.
    pub fn peek_word(&self, addr: GlobalAddr) -> u64 {
        self.seg_read(addr.rank as usize, addr.off)
    }

    /// Allocate a zeroed record in `rank`'s segment (owner-side allocation;
    /// thread entries are always allocated where the thread is spawned).
    pub fn alloc(&mut self, rank: WorkerId, bytes: u32) -> GlobalAddr {
        let off = self.seg_mut(rank).alloc(bytes);
        GlobalAddr::new(rank, off)
    }

    /// Free a record in its owner's segment. Only the owner calls this
    /// directly; remote frees go through the `remote_free` protocols.
    pub fn free(&mut self, addr: GlobalAddr, bytes: u32) {
        self.seg_mut(addr.rank as usize).free(addr.off, bytes);
    }

    pub fn stats(&self, w: WorkerId) -> &FabricStats {
        &self.stats[w]
    }

    pub fn stats_total(&self) -> FabricStats {
        let mut t = FabricStats::default();
        for s in &self.stats {
            t.merge(s);
        }
        t
    }

    // ------------------------------------------------------------------
    // Park/wake: host-side fast path for owner-side polling loops
    // ------------------------------------------------------------------

    /// Park worker `me` (the actor currently stepping) on word `off` of its
    /// *own* segment instead of re-polling it every `grid` of virtual time.
    ///
    /// This is a pure host-side optimization with byte-identical simulated
    /// behaviour: had the worker kept polling, it would have re-checked the
    /// word at `now + grid`, `now + 2·grid`, … and each failed check would
    /// have charged `charge` local ops. When the word is next written (or
    /// the global done flag raised), [`Machine::wake_parked`] computes the
    /// first poll instant that observes the write under the engine's
    /// `(clock, worker)` ordering, credits the skipped polls' local ops,
    /// and hands the wake instant to the engine — which re-runs the worker
    /// exactly where the polling loop would have made its first successful
    /// check. The caller must return [`crate::engine::Step::Park`] for the
    /// current step.
    ///
    /// The wake-instant computation assumes minimum-key scheduling, so
    /// callers must not park under schedule exploration, and it reproduces
    /// the abandoned loop only if every skipped poll would have been a
    /// no-op apart from its `charge` — callers gate on that (no fault
    /// plan, no watchdog).
    pub fn park_on_own_word(&mut self, me: WorkerId, off: u32, grid: VTime, charge: u64) {
        debug_assert_eq!(me, self.step_cur, "only the stepping worker can park");
        debug_assert!(self.parked[me].is_none(), "double park");
        self.parked[me] = Some(ParkWatch {
            off,
            since: self.step_now,
            grid_ns: grid.as_ns().max(1),
            charge,
        });
    }

    /// Wake the worker parked on `rank`: compute the first of its abandoned
    /// poll instants that observes the current step's effects, credit the
    /// polls skipped before it, and queue the wake for the engine.
    ///
    /// A poll at `(s, rank)` observes an effect of the step `(T, writer)`
    /// iff `(s, rank) > (T, writer)` in engine key order — effects are
    /// eager, so everything a step writes is visible to every later step.
    fn wake_parked(&mut self, rank: usize) {
        let w = self.parked[rank].take().expect("wake of an unparked worker");
        let d = self.step_now.as_ns() - w.since.as_ns();
        let g = w.grid_ns;
        let (j0, rem) = (d / g, d % g);
        // First poll index j ≥ 1 with (since + j·g, rank) > (step_now, cur);
        // on an exact grid hit the worker-id tiebreak decides.
        let j = if rem != 0 {
            j0 + 1
        } else if j0 >= 1 && rank > self.step_cur {
            j0
        } else {
            j0 + 1
        };
        // The polls at since + g, …, since + (j−1)·g were skipped; each
        // would have charged `charge` local ops and nothing else.
        self.stats[rank].local_ops += (j - 1) * w.charge;
        self.wakeups
            .push((VTime::ns(w.since.as_ns() + j * g), rank));
    }

    /// A word of `rank`'s segment was just written; wake `rank` if it is
    /// parked on exactly that word. Spurious wakes (the write did not
    /// change what the poller checks) are safe: the woken poll re-runs at
    /// an instant the abandoned loop would have polled anyway, fails, and
    /// re-parks on the same grid.
    #[inline]
    fn note_word_write(&mut self, rank: usize, off: u32) {
        // The write may have materialized a backing page of `rank`'s
        // segment; residency is monotone, so current == peak.
        let r = self.segments[rank].as_ref().map_or(0, |s| s.resident_bytes());
        if r > self.stats[rank].peak_resident_bytes {
            self.stats[rank].peak_resident_bytes = r;
        }
        if let Some(w) = &self.parked[rank] {
            if w.off == off {
                self.wake_parked(rank);
            }
        }
    }

    /// Move the pending wake instants into `out` (engine waker hook).
    pub fn take_wakeups(&mut self, out: &mut Vec<(VTime, WorkerId)>) {
        out.append(&mut self.wakeups);
    }

    /// Raise the global termination flag (root task finished). Parked
    /// pollers re-check the flag on every poll, so wake them all; each
    /// re-runs its poll at the first instant the flag is visible to it
    /// (same engine-order rule as a word write).
    pub fn set_done(&mut self) {
        self.done = true;
        for r in 0..self.parked.len() {
            if self.parked[r].is_some() {
                self.wake_parked(r);
            }
        }
    }

    #[inline]
    pub fn is_done(&self) -> bool {
        self.done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::profiles;

    fn machine(n: usize) -> Machine {
        Machine::new(MachineConfig::new(n, profiles::itoa()).with_seg_bytes(1 << 16))
    }

    #[test]
    fn fabric_stats_merge_sums_every_field() {
        // Exhaustive literals: adding a FabricStats field breaks this test
        // at compile time until the merge (and this check) cover it.
        let mut a = FabricStats {
            remote_gets: 1,
            remote_puts: 2,
            remote_amos: 3,
            local_ops: 4,
            bytes_got: 5,
            bytes_put: 6,
            messages_sent: 7,
            messages_handled: 8,
            retries: 9,
            timeouts: 10,
            dead_fails: 11,
            max_inflight: 12,
            cq_polls: 13,
            doorbell_chained: 14,
            fenced_verbs: 15,
            peak_resident_bytes: 16,
        };
        let b = FabricStats {
            remote_gets: 100,
            remote_puts: 200,
            remote_amos: 300,
            local_ops: 400,
            bytes_got: 500,
            bytes_put: 600,
            messages_sent: 700,
            messages_handled: 800,
            retries: 900,
            timeouts: 1000,
            dead_fails: 1100,
            max_inflight: 1200,
            cq_polls: 1300,
            doorbell_chained: 1400,
            fenced_verbs: 1500,
            peak_resident_bytes: 1600,
        };
        a.merge(&b);
        assert_eq!(a.remote_gets, 101);
        assert_eq!(a.remote_puts, 202);
        assert_eq!(a.remote_amos, 303);
        assert_eq!(a.local_ops, 404);
        assert_eq!(a.bytes_got, 505);
        assert_eq!(a.bytes_put, 606);
        assert_eq!(a.messages_sent, 707);
        assert_eq!(a.messages_handled, 808);
        assert_eq!(a.retries, 909);
        assert_eq!(a.timeouts, 1010);
        assert_eq!(a.dead_fails, 1111);
        // Queue depth merges as a maximum (per-worker high-water marks),
        // not a sum; poll counts sum like every other op counter.
        assert_eq!(a.max_inflight, 1200);
        assert_eq!(a.cq_polls, 1313);
        assert_eq!(a.doorbell_chained, 1414);
        assert_eq!(a.fenced_verbs, 1515);
        // Segments are disjoint host memory: footprints sum across workers.
        assert_eq!(a.peak_resident_bytes, 1616);
        assert_eq!(a.remote_total(), 101 + 202 + 303);
        // And max_inflight keeps the larger side when it is the accumulator.
        let mut c = FabricStats { max_inflight: 9000, ..FabricStats::default() };
        c.merge(&b);
        assert_eq!(c.max_inflight, 9000);
    }

    #[test]
    fn dead_guard_fails_fast_and_counts() {
        use crate::fault::FaultPlan;
        let mut m = Machine::new(
            MachineConfig::new(3, profiles::itoa())
                .with_seg_bytes(1 << 16)
                .with_faults(FaultPlan::none().with_kill(1, VTime::us(50))),
        );
        assert!(m.recovery_armed());
        assert_eq!(m.killed_at(1), Some(VTime::us(50)));
        // Before the kill: no guard, peer reachable.
        assert!(m.dead_guard(0, 1, VTime::us(10)).is_none());
        assert!(!m.is_dead(1, VTime::us(10)));
        // After: guard trips with a bounded (round-trip-ish) cost.
        let c = m.dead_guard(0, 1, VTime::us(60)).expect("peer is dead");
        assert!(c > VTime::ZERO && c < VTime::us(50), "fail-fast, not a retry storm: {c}");
        assert_eq!(m.stats(0).dead_fails, 1);
        // Self and live peers never trip.
        assert!(m.dead_guard(1, 1, VTime::us(60)).is_none());
        assert!(m.dead_guard(0, 2, VTime::us(60)).is_none());
        // Lease confirmation trails ground truth.
        assert!(!m.confirmed_dead(1, VTime::us(60)));
        assert!(m.confirmed_dead(1, VTime::us(50) + m.fault_plan().unwrap().lease));
    }

    #[test]
    fn epoch_fence_rejects_stale_views_and_counts() {
        let mut m = machine(3);
        assert_eq!(m.epoch_of(1), 0);
        // Fresh views pass for free.
        assert!(!m.fence_verb(0, 0, 1));
        assert_eq!(m.stats(0).fenced_verbs, 0);
        // Evict worker 1: epoch moves to 1, every view-0 verb is refused.
        assert_eq!(m.evict(1), 1);
        assert!(m.fence_verb(0, 0, 1));
        assert!(!m.fence_verb(0, 1, 1), "refreshed view passes again");
        // Self-fence: the zombie's own view of itself is stale.
        assert!(m.fence_verb(1, 0, 1));
        assert_eq!(m.stats(0).fenced_verbs, 1);
        assert_eq!(m.stats(1).fenced_verbs, 1);
        // Epochs are per worker; worker 2 is untouched.
        assert_eq!(m.epoch_of(2), 0);
        assert!(!m.fence_verb(0, 0, 2));
        // No plan loaded: suspicion impossible, rejoin moot.
        assert!(!m.suspicion_possible() && !m.rejoin_allowed());
    }

    #[test]
    fn fresh_since_without_faults_is_always_true() {
        let m = machine(2);
        assert!(m.fresh_since(1, VTime::ZERO, VTime::ns(1)));
    }

    #[test]
    fn remote_ops_cost_more_than_local() {
        let mut m = machine(2);
        let a0 = m.alloc(0, 8);
        let a1 = m.alloc(1, 8);
        let local = m.put_u64(0, a0, 1);
        let remote = m.put_u64(0, a1, 2);
        assert!(remote > local * 10);
        let (v, _) = m.get_u64(1, a1);
        assert_eq!(v, 2);
    }

    #[test]
    fn stats_count_ops_and_bytes() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 16);
        m.put_u64(0, a1, 5);
        let _ = m.get_u64(0, a1);
        let _ = m.fetch_add_u64(0, a1.field(1), 3);
        let _ = m.get_bulk(0, 1, 1800);
        let s = m.stats(0);
        assert_eq!(s.remote_puts, 1);
        assert_eq!(s.remote_gets, 2);
        assert_eq!(s.remote_amos, 1);
        assert_eq!(s.bytes_got, 8 + 1800);
        assert_eq!(s.bytes_put, 8);
        // Worker 1 did nothing.
        assert_eq!(m.stats(1).remote_total(), 0);
    }

    #[test]
    fn fetch_add_and_cas_apply_effects() {
        let mut m = machine(2);
        let a = m.alloc(1, 8);
        let (old, _) = m.fetch_add_u64(0, a, 1);
        assert_eq!(old, 0);
        let (old, _) = m.fetch_add_u64(1, a, 1);
        assert_eq!(old, 1);
        let (seen, _) = m.cas_u64(0, a, 2, 100);
        assert_eq!(seen, 2);
        let (v, _) = m.get_u64(1, a);
        assert_eq!(v, 100);
    }

    #[test]
    fn unsignaled_put_is_cheaper() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 8);
        let blocking = m.put_u64(0, a1, 1);
        let nb = m.post_put_u64_unsignaled(0, a1, 2);
        assert!(nb < blocking);
        let (v, _) = m.get_u64(1, a1);
        assert_eq!(v, 2, "unsignaled put still applies its effect");
    }

    #[test]
    fn blocking_wrappers_never_leave_completions_behind() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 16);
        m.put_u64(0, a1, 5);
        let _ = m.get_u64(0, a1);
        let _ = m.fetch_add_u64(0, a1.field(1), 3);
        let _ = m.cas_u64(0, a1, 8, 9);
        let _ = m.get_bulk(0, 1, 1800);
        let _ = m.put_bulk(0, 1, 64);
        let _ = m.post_put_u64_unsignaled(0, a1, 7);
        assert_eq!(m.cq_depth(0), 0, "wrappers reap what they post");
        let s = m.stats(0);
        assert_eq!(s.cq_polls, 0, "single-verb waits are not polls");
        assert_eq!(s.max_inflight, 1, "blocking code never pipelines");
    }

    #[test]
    fn posted_verbs_overlap_and_fence_at_the_slowest() {
        let mut m = machine(3);
        let a1 = m.alloc(1, 8);
        let at = VTime::us(2);
        // A put and a bulk get to the same peer, posted back to back.
        let put_cost = {
            // Reference cost from a scratch blocking machine.
            let mut r = machine(3);
            let ra = r.alloc(1, 8);
            r.put_u64(0, ra, 1)
        };
        let h_put = m.post_put_u64(0, a1, 1, at);
        let h_get = m.post_get_bulk(0, 1, 1800, at);
        assert_eq!(m.cq_depth(0), 2);
        assert_eq!(m.stats(0).max_inflight, 2);
        let (_, put_fin) = m.wait(0, h_put);
        assert_eq!(put_fin, at + put_cost, "first verb is unclamped");
        let (_, get_fin) = m.wait(0, h_get);
        assert!(get_fin > put_fin, "bulk get outlives the small put");
        // Fencing an empty queue is a no-op in time and drains nothing.
        assert_eq!(m.fence(0, get_fin), get_fin);
        assert_eq!(m.stats(0).cq_polls, 1);
    }

    #[test]
    fn same_target_completions_retire_in_post_order() {
        // Verbs to one peer share a queue pair: a cheap put posted after an
        // expensive get cannot retire first.
        let mut m = machine(2);
        let a1 = m.alloc(1, 16);
        let h_get = m.post_get_bulk(0, 1, 64 << 10, VTime::ZERO);
        let h_put = m.post_put_u64(0, a1, 1, VTime::ZERO);
        let (_, get_fin) = m.wait(0, h_get);
        let (_, put_fin) = m.wait(0, h_put);
        assert_eq!(put_fin, get_fin, "clamped to the in-order retirement");
        // Different peers ride different queue pairs: no clamping.
        let mut m = machine(3);
        let a2 = m.alloc(2, 8);
        let h_get = m.post_get_bulk(0, 1, 64 << 10, VTime::ZERO);
        let h_put = m.post_put_u64(0, a2, 1, VTime::ZERO);
        let (_, get_fin) = m.wait(0, h_get);
        let (_, put_fin) = m.wait(0, h_put);
        assert!(put_fin < get_fin, "independent QPs overlap freely");
    }

    #[test]
    fn poll_cq_reaps_only_what_has_finished() {
        let mut m = machine(3);
        let a1 = m.alloc(1, 8);
        let h_small = m.post_put_u64(0, a1, 1, VTime::ZERO);
        let h_big = m.post_get_bulk(0, 2, 1 << 20, VTime::ZERO);
        let (_, small_fin) = {
            let cq_was = m.cq_depth(0);
            assert_eq!(cq_was, 2);
            // Peek the small put's finish by waiting a clone-free reference
            // run is overkill — poll at a generous horizon instead.
            let done = m.poll_cq(0, VTime::secs(1));
            assert_eq!(done.len(), 2, "everything finishes within a second");
            (done[0].value, done[0].finish)
        };
        let _ = h_small;
        let _ = h_big;
        // Fresh machine: poll strictly between the two finish times.
        let mut m = machine(3);
        let a1 = m.alloc(1, 8);
        let h_small = m.post_put_u64(0, a1, 1, VTime::ZERO);
        let _h_big = m.post_get_bulk(0, 2, 1 << 20, VTime::ZERO);
        let done = m.poll_cq(0, small_fin);
        assert_eq!(done.len(), 1, "only the small put has retired");
        assert_eq!(done[0].id, h_small.id());
        assert_eq!(m.cq_depth(0), 1, "the bulk get is still inflight");
        let fin = m.fence(0, small_fin);
        assert!(fin > small_fin);
        assert_eq!(m.cq_depth(0), 0);
        assert_eq!(m.stats(0).cq_polls, 2, "one poll + one fence");
    }

    #[test]
    fn span_get_is_one_verb() {
        let mut m = machine(2);
        let a1 = m.alloc(1, 24);
        m.put_u64(0, a1, 10);
        m.put_u64(0, a1.field(1), 20);
        m.put_u64(0, a1.field(2), 30);
        let before = *m.stats(0);
        let ([x, y, z], span_cost) = m.get_u64_span::<3>(0, a1);
        assert_eq!([x, y, z], [10, 20, 30]);
        let s = m.stats(0);
        assert_eq!(s.remote_gets, before.remote_gets + 1, "one verb, not three");
        assert_eq!(s.bytes_got, before.bytes_got + 24);
        assert_eq!(m.cq_depth(0), 0, "blocking wrapper reaps its post");
        // One span costs the same round trip as one word — that is the
        // point — and strictly less than two separate gets.
        let (_, one) = m.get_u64(0, a1);
        assert_eq!(span_cost, one);
        // Local spans charge a single local op.
        let a0 = m.alloc(0, 16);
        let before = *m.stats(0);
        let (_, c) = m.get_u64_span::<2>(0, a0);
        assert_eq!(m.stats(0).local_ops, before.local_ops + 1);
        assert_eq!(m.stats(0).remote_gets, before.remote_gets);
        assert!(c < one);
    }

    #[test]
    fn doorbell_chain_discounts_chained_verbs() {
        // frac = 0.5: the first verb of a chain pays full injection, later
        // ones half — and only the chained ones bump the counter.
        let mut m = Machine::new(
            MachineConfig::new(3, profiles::itoa())
                .with_seg_bytes(1 << 16)
                .with_doorbell(0.5),
        );
        let a1 = m.alloc(1, 32);
        let a2 = m.alloc(2, 32);
        let unchained = {
            let h = m.post_get_u64(0, a1, VTime::ZERO);
            m.wait(0, h).1
        };
        assert_eq!(m.stats(0).doorbell_chained, 0);
        // Chain to two different peers (independent QPs, no in-order clamp).
        m.chain_begin(0);
        let h_first = m.post_get_u64(0, a1, VTime::ZERO);
        let h_second = m.post_get_u64(0, a2, VTime::ZERO);
        m.chain_end(0);
        let (_, first_fin) = m.wait(0, h_first);
        let (_, second_fin) = m.wait(0, h_second);
        assert_eq!(first_fin, unchained, "chain head rings the doorbell at full cost");
        let half_inj = (m.lat().injection as f64 * 0.5).round() as u64;
        assert_eq!(
            second_fin,
            VTime::ns(half_inj + m.lat().rdma_get),
            "chained verb pays frac · injection plus the full wire latency"
        );
        assert!(second_fin < unchained);
        assert_eq!(m.stats(0).doorbell_chained, 1);
        // Unsignaled puts in a chain get the same discount.
        m.chain_begin(0);
        let head = m.post_put_u64_unsignaled(0, a1, 1);
        let tail = m.post_put_u64_unsignaled(0, a1, 2);
        m.chain_end(0);
        assert_eq!(head, VTime::ns(m.lat().injection));
        assert_eq!(tail, VTime::ns((m.lat().injection as f64 * 0.5).round() as u64));
        assert_eq!(m.stats(0).doorbell_chained, 2);
    }

    #[test]
    fn doorbell_frac_one_is_charge_identical() {
        // The default frac = 1.0 makes chained posts cost exactly what
        // unchained posts cost — this is what keeps every golden byte-stable
        // while still counting chain ridership.
        let mut chained = machine(2);
        let mut plain = machine(2);
        assert_eq!(chained.cfg.doorbell_frac, 1.0);
        let ac = chained.alloc(1, 32);
        let ap = plain.alloc(1, 32);
        chained.chain_begin(0);
        let h1 = chained.post_cas_u64(0, ac, 0, 7, VTime::ZERO);
        let (_, h2) = chained.post_get_u64_span::<2>(0, ac.field(1), VTime::ZERO);
        let nb_c = chained.post_put_u64_unsignaled(0, ac, 9);
        chained.chain_end(0);
        let g1 = plain.post_cas_u64(0, ap, 0, 7, VTime::ZERO);
        let (_, g2) = plain.post_get_u64_span::<2>(0, ap.field(1), VTime::ZERO);
        let nb_p = plain.post_put_u64_unsignaled(0, ap, 9);
        assert_eq!(chained.wait(0, h1).1, plain.wait(0, g1).1);
        assert_eq!(chained.wait(0, h2).1, plain.wait(0, g2).1);
        assert_eq!(nb_c, nb_p);
        assert_eq!(chained.stats(0).doorbell_chained, 2, "ridership still counted");
        assert_eq!(plain.stats(0).doorbell_chained, 0);
    }

    #[test]
    fn segments_materialize_lazily_and_report_resident_bytes() {
        let mut m = machine(4);
        assert_eq!(m.stats_total().peak_resident_bytes, 0, "nothing touched yet");
        // Remote reads of an absent segment report zero and stay free.
        let a3 = GlobalAddr::new(3, 0);
        let (v, _) = m.get_u64(0, a3);
        assert_eq!(v, 0);
        assert_eq!(m.stats_total().peak_resident_bytes, 0, "reads do not materialize");
        assert_eq!(m.read_own(3, a3), 0);
        // A non-zero write materializes exactly one page of the target's
        // segment, regardless of the configured capacity.
        let a1 = GlobalAddr::new(1, 0);
        m.put_u64(0, a1, 7);
        let page = crate::mem::PAGE_BYTES as u64;
        assert_eq!(m.stats(1).peak_resident_bytes, page);
        assert_eq!(m.stats(0).peak_resident_bytes, 0, "issuer untouched");
        assert_eq!(m.stats_total().peak_resident_bytes, page);
        // Allocation alone writes only zeroes — no backing page yet; the
        // record costs its page when first really written.
        let r = m.alloc(2, 8);
        assert_eq!(m.stats(2).peak_resident_bytes, 0);
        m.put_u64(2, r, 1);
        assert_eq!(m.stats(2).peak_resident_bytes, page);
        // Re-touching an already-resident page is idempotent.
        m.put_u64(0, a1, 8);
        assert_eq!(m.stats_total().peak_resident_bytes, 2 * page);
        // A write far into the same segment costs one more page.
        m.put_u64(0, GlobalAddr::new(1, 32 * 1024), 9);
        assert_eq!(m.stats(1).peak_resident_bytes, 2 * page);
        // The lazily materialized segment behaves like an eager one.
        let (v, _) = m.get_u64(3, a1);
        assert_eq!(v, 8);
    }

    #[test]
    fn done_flag() {
        let mut m = machine(1);
        assert!(!m.is_done());
        m.set_done();
        assert!(m.is_done());
    }

    #[test]
    fn bulk_costs_scale() {
        let mut m = machine(2);
        let small = m.get_bulk(0, 1, 56);
        let big = m.get_bulk(0, 1, 1800);
        assert!(big > small);
        let local = m.get_bulk(0, 0, 1800);
        assert!(local < small);
    }
}
