//! The discrete-event engine.
//!
//! Workers are [`Actor`]s. The engine repeatedly runs the actor whose virtual
//! clock is smallest (ties broken by worker id, so execution is fully
//! deterministic), passing it mutable access to the shared world `W` (the
//! [`crate::Machine`] plus whatever runtime state sits next to it). Each call
//! performs one slice of work and returns how much virtual time it consumed.
//!
//! This "sequentialized concurrency" style is the standard way simulators
//! (SimGrid, gem5 event queues) model asynchronous agents on one host thread:
//! because only the minimum-clock actor ever runs, no other actor can have an
//! earlier pending action, so applying memory effects eagerly is safe.

use crate::time::VTime;
use crate::WorkerId;

/// What an actor did in one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Step {
    /// Advance this actor's clock by the given duration and reschedule it.
    /// Zero durations are bumped to 1 ns to guarantee progress.
    Yield(VTime),
    /// The actor is waiting on a world-side event and must not be
    /// rescheduled until the world's waker (see [`Engine::with_waker`])
    /// reports a wake instant for it. The world layer is responsible for
    /// computing a wake time that reproduces the exact step the actor
    /// would have made had it kept polling — parking is a host-side
    /// fast-path, never a change to simulated behaviour.
    Park,
    /// The actor is finished and must not be scheduled again.
    Halt,
}

/// A simulated worker process.
pub trait Actor<W> {
    /// Perform one slice of work. `now` is this actor's current virtual
    /// clock; all fabric costs incurred must be reflected in the returned
    /// [`Step::Yield`] duration.
    fn step(&mut self, me: WorkerId, now: VTime, world: &mut W) -> Step;
}

/// Result of driving a simulation to completion.
#[derive(Debug, Clone, Copy)]
pub struct EngineReport {
    /// Virtual time at which the last actor halted.
    pub end_time: VTime,
    /// Total actor steps executed (a proxy for host-side simulation work).
    pub steps: u64,
}

/// A schedule controller for [`Engine::run_with_hook`].
///
/// At every scheduling decision the controller sees the full runnable set,
/// sorted ascending by `(clock, worker)`, and picks which actor steps next
/// by index. Returning 0 at every decision reproduces [`Engine::run`]'s
/// order exactly (pinned by a unit test below); any other index runs an
/// actor whose virtual clock is *ahead* of the minimum, which reorders the
/// actors' memory effects relative to each other without perturbing any
/// actor's own virtual-time accounting — exactly the nondeterminism
/// envelope a real fabric has, where one node's verb can land before or
/// after another node's within a latency window.
///
/// This is the seam `dcs-check` explores interleavings through: an
/// out-of-range index is clamped to the last eligible entry, so a recorded
/// choice sequence stays replayable even when the runnable set is smaller
/// on replay.
pub trait ScheduleHook {
    /// Pick the index (into `eligible`) of the actor to step next.
    /// `eligible` is non-empty and sorted ascending by `(clock, worker)`.
    fn choose(&mut self, eligible: &[(VTime, WorkerId)]) -> usize;
}

/// The default schedule: always the minimum-key actor (index 0).
impl ScheduleHook for () {
    fn choose(&mut self, _eligible: &[(VTime, WorkerId)]) -> usize {
        0
    }
}

/// Sentinel in [`EventQueue::pos`]: the worker is not currently queued.
const NOT_QUEUED: u32 = u32::MAX;

/// The engine's event queue: an indexed 4-ary min-heap of
/// `(VTime, WorkerId)` keys.
///
/// Each worker appears at most once, keyed by its next wakeup. A 4-ary
/// layout halves the tree depth of a binary heap and keeps sibling keys in
/// one or two cache lines, which is what dominates at 10⁵ actors; the `pos`
/// index gives O(1) membership checks and lets debug builds assert the heap
/// invariant per worker.
///
/// Keys are unique — `(t, w)` pairs can never collide because `w` breaks
/// ties — so *any* correct min-heap pops the identical total order as the
/// `BinaryHeap<Reverse<_>>` it replaced. `tests/engine_equiv.rs` pins that
/// equivalence directly against a reference `BinaryHeap`, both through the
/// engine and on raw push/pop sequences.
pub struct EventQueue {
    /// Heap array of `(wakeup, worker)` keys, 4-ary implicit tree.
    heap: Vec<(VTime, WorkerId)>,
    /// `pos[w]`: index of worker `w` in `heap`, or [`NOT_QUEUED`].
    pos: Vec<u32>,
}

impl EventQueue {
    /// Queue with every worker `0..workers` scheduled at `VTime::ZERO`.
    /// The id-ordered array is already a valid min-heap (parents precede
    /// children in index and id order agrees with key order at time zero).
    pub fn new(workers: usize) -> EventQueue {
        EventQueue {
            heap: (0..workers).map(|w| (VTime::ZERO, w)).collect(),
            pos: (0..workers as u32).collect(),
        }
    }

    /// Empty queue able to hold `workers` distinct workers.
    pub fn empty(workers: usize) -> EventQueue {
        EventQueue {
            heap: Vec::with_capacity(workers.min(1024)),
            pos: vec![NOT_QUEUED; workers],
        }
    }

    pub fn len(&self) -> usize {
        self.heap.len()
    }

    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// The minimum `(wakeup, worker)` key, if any.
    #[inline]
    pub fn peek(&self) -> Option<(VTime, WorkerId)> {
        self.heap.first().copied()
    }

    /// Remove and return the minimum key.
    pub fn pop(&mut self) -> Option<(VTime, WorkerId)> {
        let min = *self.heap.first()?;
        self.pos[min.1] = NOT_QUEUED;
        let last = self.heap.pop().expect("non-empty");
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last.1] = 0;
            self.sift_down(0);
        }
        Some(min)
    }

    /// Schedule worker `w` at time `t`. The worker must not already be
    /// queued (each worker has exactly one next wakeup).
    pub fn push(&mut self, t: VTime, w: WorkerId) {
        debug_assert_eq!(self.pos[w], NOT_QUEUED, "worker {w} already queued");
        let i = self.heap.len();
        self.heap.push((t, w));
        self.pos[w] = i as u32;
        self.sift_up(i);
    }

    /// Drain the queue into an ascending `(wakeup, worker)` vector.
    pub fn drain_sorted(&mut self) -> Vec<(VTime, WorkerId)> {
        for &(_, w) in &self.heap {
            self.pos[w] = NOT_QUEUED;
        }
        let mut v = std::mem::take(&mut self.heap);
        v.sort_unstable();
        v
    }

    #[inline]
    fn sift_up(&mut self, mut i: usize) {
        let item = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 4;
            if self.heap[parent] <= item {
                break;
            }
            self.heap[i] = self.heap[parent];
            self.pos[self.heap[i].1] = i as u32;
            i = parent;
        }
        self.heap[i] = item;
        self.pos[item.1] = i as u32;
    }

    #[inline]
    fn sift_down(&mut self, mut i: usize) {
        let item = self.heap[i];
        let n = self.heap.len();
        loop {
            let first = 4 * i + 1;
            if first >= n {
                break;
            }
            let mut min = first;
            for c in first + 1..(first + 4).min(n) {
                if self.heap[c] < self.heap[min] {
                    min = c;
                }
            }
            if item <= self.heap[min] {
                break;
            }
            self.heap[i] = self.heap[min];
            self.pos[self.heap[i].1] = i as u32;
            i = min;
        }
        self.heap[i] = item;
        self.pos[item.1] = i as u32;
    }
}

/// The event loop: an indexed 4-ary heap of `(clock, worker)` keys over the
/// actors (see [`EventQueue`]).
pub struct Engine<W, A> {
    pub world: W,
    actors: Vec<A>,
    queue: EventQueue,
    clocks: Vec<VTime>,
    max_steps: u64,
    /// Drains the world's pending `(wake instant, worker)` pairs after
    /// every actor step; required before any actor may return
    /// [`Step::Park`]. A plain `fn` so `Engine` stays free of extra type
    /// parameters.
    waker: Option<fn(&mut W, &mut Vec<(VTime, WorkerId)>)>,
    wake_buf: Vec<(VTime, WorkerId)>,
    parked: usize,
}

impl<W, A: Actor<W>> Engine<W, A> {
    pub fn new(world: W, actors: Vec<A>) -> Engine<W, A> {
        let n = actors.len();
        Engine {
            world,
            actors,
            queue: EventQueue::new(n),
            clocks: vec![VTime::ZERO; n],
            // Generous default: aborts runaway simulations (a scheduling
            // deadlock would otherwise spin in idle loops forever).
            max_steps: 20_000_000_000,
            waker: None,
            wake_buf: Vec::new(),
            parked: 0,
        }
    }

    /// Override the runaway-step guard.
    pub fn with_max_steps(mut self, max: u64) -> Self {
        self.max_steps = max;
        self
    }

    /// Install the world-side waker that feeds parked actors back into the
    /// event queue (see [`Step::Park`]).
    pub fn with_waker(mut self, waker: fn(&mut W, &mut Vec<(VTime, WorkerId)>)) -> Self {
        self.waker = Some(waker);
        self
    }

    /// Drain the world's pending wakeups into the event queue. Called after
    /// *every* actor step: a step's memory effects may unpark a worker
    /// whose wake instant lies before the stepping actor's own next key,
    /// so the wakes must land in the heap before the next scheduling
    /// decision (including the peek fast path below).
    #[inline]
    fn drain_wakeups(&mut self) {
        if let Some(f) = self.waker {
            f(&mut self.world, &mut self.wake_buf);
            for &(t, w) in &self.wake_buf {
                self.clocks[w] = t;
                self.queue.push(t, w);
                self.parked = self
                    .parked
                    .checked_sub(1)
                    .expect("wakeup for a worker that was not parked");
            }
            self.wake_buf.clear();
        }
    }

    /// Drive all actors until every one has halted.
    ///
    /// Panics if `max_steps` is exceeded — in this codebase that always
    /// indicates a scheduling bug (lost task, missed wakeup), so failing loud
    /// beats hanging a benchmark run.
    ///
    /// Hot path: after a `Yield`, the engine *peeks* the heap instead of
    /// re-inserting unconditionally. If the stepping actor's new key
    /// `(clock, id)` is still below the heap minimum it simply keeps
    /// running — the pop it just avoided would have returned exactly that
    /// key (keys are unique per worker, so the comparison is never a tie).
    /// This skips the push/pop pair for the common case of one worker
    /// burning through local work while the rest idle ahead in time, and
    /// by construction executes the identical `(time, worker)` sequence as
    /// the plain heap loop (pinned by `tests/engine_equiv.rs`).
    pub fn run(&mut self) -> EngineReport {
        let mut steps = 0u64;
        let mut end = VTime::ZERO;
        while let Some((mut t, w)) = self.queue.pop() {
            loop {
                steps += 1;
                assert!(
                    steps <= self.max_steps,
                    "engine exceeded {} steps at t={} — scheduling deadlock?",
                    self.max_steps,
                    t
                );
                match self.actors[w].step(w, t, &mut self.world) {
                    Step::Yield(d) => {
                        let d = d.max(VTime::ns(1));
                        let nt = t + d;
                        self.clocks[w] = nt;
                        self.drain_wakeups();
                        match self.queue.peek() {
                            Some(min) if min < (nt, w) => {
                                self.queue.push(nt, w);
                                break;
                            }
                            // Still the global minimum (or the last actor
                            // standing): keep stepping without heap churn.
                            _ => t = nt,
                        }
                    }
                    Step::Park => {
                        assert!(
                            self.waker.is_some(),
                            "Step::Park requires a waker (Engine::with_waker)"
                        );
                        self.clocks[w] = t;
                        self.parked += 1;
                        self.drain_wakeups();
                        break;
                    }
                    Step::Halt => {
                        self.clocks[w] = t;
                        end = end.max(t);
                        self.drain_wakeups();
                        break;
                    }
                }
            }
        }
        assert!(
            self.parked == 0,
            "event queue drained with {} worker(s) still parked — lost wakeup",
            self.parked
        );
        EngineReport {
            end_time: end,
            steps,
        }
    }

    /// Drive all actors to completion under an external schedule
    /// controller (see [`ScheduleHook`]). The runnable set is kept as a
    /// sorted vector instead of the heap — exploration runs are small and
    /// clarity beats the heap's fast path here. Choosing index 0 at every
    /// decision executes the identical `(time, worker)` sequence as
    /// [`Engine::run`].
    pub fn run_with_hook<H: ScheduleHook + ?Sized>(&mut self, hook: &mut H) -> EngineReport {
        let mut runnable: Vec<(VTime, WorkerId)> = self.queue.drain_sorted();
        let mut steps = 0u64;
        let mut end = VTime::ZERO;
        while !runnable.is_empty() {
            let idx = hook.choose(&runnable).min(runnable.len() - 1);
            let (t, w) = runnable.remove(idx);
            steps += 1;
            assert!(
                steps <= self.max_steps,
                "engine exceeded {} steps at t={} — scheduling deadlock?",
                self.max_steps,
                t
            );
            match self.actors[w].step(w, t, &mut self.world) {
                Step::Yield(d) => {
                    let nt = t + d.max(VTime::ns(1));
                    self.clocks[w] = nt;
                    let pos = runnable
                        .binary_search(&(nt, w))
                        .expect_err("(clock, worker) keys are unique");
                    runnable.insert(pos, (nt, w));
                }
                Step::Park => {
                    // Exploration reorders actor steps, which breaks the
                    // wake-instant computation (it assumes minimum-key
                    // order); runs under a hook must disable parking.
                    panic!("Step::Park is not supported under schedule exploration");
                }
                Step::Halt => {
                    self.clocks[w] = t;
                    end = end.max(t);
                }
            }
        }
        EngineReport {
            end_time: end,
            steps,
        }
    }

    /// Clock of worker `w` (final clock after `run`).
    pub fn clock(&self, w: WorkerId) -> VTime {
        self.clocks[w]
    }

    pub fn actors(&self) -> &[A] {
        &self.actors
    }

    pub fn actors_mut(&mut self) -> &mut [A] {
        &mut self.actors
    }

    /// Consume the engine, returning the world and actors for inspection.
    pub fn into_parts(self) -> (W, Vec<A>) {
        (self.world, self.actors)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Counts down, yielding a fixed duration each step.
    struct Countdown {
        remaining: u32,
        dur: VTime,
        log: Vec<VTime>,
    }

    impl Actor<Vec<(WorkerId, VTime)>> for Countdown {
        fn step(&mut self, me: WorkerId, now: VTime, world: &mut Vec<(WorkerId, VTime)>) -> Step {
            if self.remaining == 0 {
                return Step::Halt;
            }
            self.remaining -= 1;
            self.log.push(now);
            world.push((me, now));
            Step::Yield(self.dur)
        }
    }

    #[test]
    fn runs_in_global_time_order() {
        let actors = vec![
            Countdown {
                remaining: 3,
                dur: VTime::ns(10),
                log: vec![],
            },
            Countdown {
                remaining: 3,
                dur: VTime::ns(4),
                log: vec![],
            },
        ];
        let mut e = Engine::new(Vec::new(), actors);
        let report = e.run();
        // Interleaving: events must be globally sorted by time (ties by id).
        let times: Vec<_> = e.world.iter().map(|&(w, t)| (t, w)).collect();
        let mut sorted = times.clone();
        sorted.sort();
        assert_eq!(times, sorted);
        // Worker 1 finishes its 3 steps at t=12, worker 0 at t=30.
        assert_eq!(report.end_time, VTime::ns(30));
        assert_eq!(report.steps, 3 + 3 + 2); // 3 yields each + 2 halt steps
    }

    #[test]
    fn zero_yield_still_progresses() {
        struct Zeros(u32);
        impl Actor<()> for Zeros {
            fn step(&mut self, _me: WorkerId, _now: VTime, _w: &mut ()) -> Step {
                if self.0 == 0 {
                    return Step::Halt;
                }
                self.0 -= 1;
                Step::Yield(VTime::ZERO)
            }
        }
        let mut e = Engine::new((), vec![Zeros(5)]);
        let r = e.run();
        assert_eq!(r.end_time, VTime::ns(5)); // each zero yield bumped to 1 ns
    }

    #[test]
    #[should_panic(expected = "scheduling deadlock")]
    fn runaway_guard_fires() {
        struct Forever;
        impl Actor<()> for Forever {
            fn step(&mut self, _m: WorkerId, _n: VTime, _w: &mut ()) -> Step {
                Step::Yield(VTime::ns(1))
            }
        }
        let mut e = Engine::new((), vec![Forever]).with_max_steps(100);
        e.run();
    }

    /// `end_time` is the maximum over *Halt* times: a straggler that keeps
    /// yielding long after everyone else halted must still set the end time,
    /// and an actor halting early must not clamp it.
    #[test]
    fn end_time_is_max_halt_time() {
        // Worker 0 halts immediately at t=0; worker 1 yields 7×9 ns and
        // halts at t=63. The report must say 63, not 0.
        let actors = vec![
            Countdown {
                remaining: 0,
                dur: VTime::ns(1),
                log: vec![],
            },
            Countdown {
                remaining: 7,
                dur: VTime::ns(9),
                log: vec![],
            },
        ];
        let mut e = Engine::new(Vec::new(), actors);
        let r = e.run();
        assert_eq!(r.end_time, VTime::ns(63));
        assert_eq!(e.clock(0), VTime::ZERO);
        assert_eq!(e.clock(1), VTime::ns(63));
    }

    /// Two actors halting at the same instant (a simultaneous shutdown, the
    /// common end of a barrier-style run) must report that instant once.
    #[test]
    fn end_time_with_simultaneous_halts() {
        let actors: Vec<Countdown> = (0..3)
            .map(|_| Countdown {
                remaining: 4,
                dur: VTime::ns(5),
                log: vec![],
            })
            .collect();
        let mut e = Engine::new(Vec::new(), actors);
        let r = e.run();
        assert_eq!(r.end_time, VTime::ns(20));
        assert_eq!(r.steps, 3 * 4 + 3); // 4 yields + 1 halt step each
    }

    /// An always-index-0 hook must execute the identical `(time, worker)`
    /// sequence — and produce the identical report — as the plain `run()`.
    #[test]
    fn hook_index_zero_matches_default_run() {
        let mk = || {
            let actors: Vec<Countdown> = (0..4)
                .map(|i| Countdown {
                    remaining: 6,
                    dur: VTime::ns(3 + 2 * i),
                    log: vec![],
                })
                .collect();
            Engine::new(Vec::new(), actors)
        };
        let mut plain = mk();
        let rp = plain.run();
        let mut hooked = mk();
        let rh = hooked.run_with_hook(&mut ());
        assert_eq!(plain.world, hooked.world, "step order must be identical");
        assert_eq!(rp.end_time, rh.end_time);
        assert_eq!(rp.steps, rh.steps);
        for w in 0..4 {
            assert_eq!(plain.clock(w), hooked.clock(w));
        }
    }

    /// A hook that delays the minimum actor still drives every actor to
    /// completion, with per-actor clocks unperturbed — only the *global*
    /// interleaving of events changes.
    #[test]
    fn hook_reordering_preserves_per_actor_time() {
        struct LastFirst;
        impl ScheduleHook for LastFirst {
            fn choose(&mut self, eligible: &[(VTime, WorkerId)]) -> usize {
                eligible.len() - 1
            }
        }
        let mk = || {
            let actors: Vec<Countdown> = (0..3)
                .map(|i| Countdown {
                    remaining: 4,
                    dur: VTime::ns(5 + i),
                    log: vec![],
                })
                .collect();
            Engine::new(Vec::new(), actors)
        };
        let mut plain = mk();
        plain.run();
        let mut hooked = mk();
        let r = hooked.run_with_hook(&mut LastFirst);
        // Same multiset of events, same final clocks, different order.
        let mut a = plain.world.clone();
        let mut b = hooked.world.clone();
        assert_ne!(a, b, "reordering must be observable");
        a.sort();
        b.sort();
        assert_eq!(a, b, "per-actor event sets must be untouched");
        for w in 0..3 {
            assert_eq!(plain.clock(w), hooked.clock(w));
        }
        assert_eq!(r.end_time, VTime::ns(4 * 7));
    }

    /// Out-of-range hook choices are clamped, not trusted.
    #[test]
    fn hook_choice_is_clamped() {
        struct Wild;
        impl ScheduleHook for Wild {
            fn choose(&mut self, _eligible: &[(VTime, WorkerId)]) -> usize {
                usize::MAX
            }
        }
        let actors = vec![Countdown {
            remaining: 3,
            dur: VTime::ns(2),
            log: vec![],
        }];
        let mut e = Engine::new(Vec::new(), actors);
        let r = e.run_with_hook(&mut Wild);
        assert_eq!(r.end_time, VTime::ns(6));
    }

    #[test]
    fn event_queue_pops_in_key_order() {
        let mut q = EventQueue::new(5);
        // Initial state: everyone at t=0, id order.
        for w in 0..5 {
            assert_eq!(q.pop(), Some((VTime::ZERO, w)));
        }
        assert!(q.is_empty());
        // Mixed pushes, including time ties broken by id.
        q.push(VTime::ns(7), 2);
        q.push(VTime::ns(3), 4);
        q.push(VTime::ns(7), 0);
        q.push(VTime::ns(1), 3);
        assert_eq!(q.peek(), Some((VTime::ns(1), 3)));
        assert_eq!(q.len(), 4);
        assert_eq!(q.pop(), Some((VTime::ns(1), 3)));
        assert_eq!(q.pop(), Some((VTime::ns(3), 4)));
        assert_eq!(q.pop(), Some((VTime::ns(7), 0)));
        assert_eq!(q.pop(), Some((VTime::ns(7), 2)));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn event_queue_drain_is_sorted_and_reusable() {
        let mut q = EventQueue::empty(6);
        for (t, w) in [(9u64, 1usize), (2, 5), (4, 0), (2, 3)] {
            q.push(VTime::ns(t), w);
        }
        assert_eq!(
            q.drain_sorted(),
            vec![
                (VTime::ns(2), 3),
                (VTime::ns(2), 5),
                (VTime::ns(4), 0),
                (VTime::ns(9), 1)
            ]
        );
        assert!(q.is_empty());
        // Drained workers can be re-queued (pos was reset).
        q.push(VTime::ns(1), 5);
        assert_eq!(q.pop(), Some((VTime::ns(1), 5)));
    }

    #[test]
    fn determinism_across_runs() {
        let mk = || {
            let actors = (0..4)
                .map(|i| Countdown {
                    remaining: 10,
                    dur: VTime::ns(3 + i),
                    log: vec![],
                })
                .collect();
            Engine::new(Vec::new(), actors)
        };
        let mut a = mk();
        let mut b = mk();
        a.run();
        b.run();
        assert_eq!(a.world, b.world);
    }
}
