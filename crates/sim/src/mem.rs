//! Simulated pinned memory segments and global addresses.
//!
//! Each worker owns one [`Segment`]: the RDMA-registered ("pinned") memory
//! window that remote workers can read, write and atomically update through
//! the fabric verbs in [`crate::machine::Machine`]. A [`GlobalAddr`] names a
//! word in some worker's segment — it is the `Loc(T)` of the paper's
//! pseudocode (Fig. 3/4): worker rank + virtual address.
//!
//! Memory is word-granular (`u64`): every object the protocols place in
//! pinned memory (thread entries, deque control words, ring entries, saved
//! context descriptors, free bits) is a small record of u64 fields. Bulk
//! payloads (migrated call stacks, task arguments) are accounted by byte size
//! on the fabric but their Rust-side representation travels through typed
//! side tables owned by the runtime, so the segment itself never needs raw
//! byte storage.
//!
//! The embedded allocator ([`SegAlloc`]) is a bump allocator with per-size
//! free lists — the workload is a high rate of small fixed-size records
//! (thread entries are allocated at every spawn), which is exactly what a
//! segregated free list is good at, and it keeps allocation O(1) and
//! deterministic.

use std::collections::BTreeMap;
use std::fmt;

/// Bytes per memory word.
pub const WORD: u32 = 8;

/// A global address: worker rank + byte offset within that worker's segment.
///
/// Packs to a single `u64` so that addresses themselves can be stored in
/// pinned memory words (e.g. `ctxloc` in the greedy-join thread entry).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr {
    pub rank: u32,
    /// Byte offset, always a multiple of [`WORD`].
    pub off: u32,
}

impl GlobalAddr {
    /// The null address (no valid segment offset); used as "absent" marker in
    /// pinned-memory fields.
    pub const NULL: GlobalAddr = GlobalAddr {
        rank: u32::MAX,
        off: u32::MAX,
    };

    #[inline]
    pub fn new(rank: usize, off: u32) -> GlobalAddr {
        debug_assert_eq!(off % WORD, 0, "unaligned global address");
        GlobalAddr {
            rank: rank as u32,
            off,
        }
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == GlobalAddr::NULL
    }

    /// Address of the `i`-th word field of a record starting at `self`.
    #[inline]
    pub fn field(self, i: u32) -> GlobalAddr {
        debug_assert!(!self.is_null());
        GlobalAddr {
            rank: self.rank,
            off: self.off + i * WORD,
        }
    }

    #[inline]
    pub fn to_u64(self) -> u64 {
        ((self.rank as u64) << 32) | self.off as u64
    }

    #[inline]
    pub fn from_u64(v: u64) -> GlobalAddr {
        GlobalAddr {
            rank: (v >> 32) as u32,
            off: v as u32,
        }
    }
}

impl fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "GlobalAddr(NULL)")
        } else {
            write!(f, "GlobalAddr({}:{:#x})", self.rank, self.off)
        }
    }
}

/// Allocation statistics for a segment.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegStats {
    pub live_bytes: u64,
    pub peak_bytes: u64,
    pub total_allocs: u64,
    pub total_frees: u64,
}

/// Bump allocator with segregated free lists, embedded in each segment.
#[derive(Debug)]
pub struct SegAlloc {
    /// Next unallocated byte offset.
    bump: u32,
    /// Segment capacity in bytes.
    cap: u32,
    /// Free lists keyed by block size in bytes.
    free: BTreeMap<u32, Vec<u32>>,
    stats: SegStats,
}

impl SegAlloc {
    fn new(cap_bytes: u32, reserved: u32) -> SegAlloc {
        SegAlloc {
            bump: reserved,
            cap: cap_bytes,
            free: BTreeMap::new(),
            stats: SegStats::default(),
        }
    }

    /// Allocate `bytes` (rounded up to a word multiple). Returns the byte
    /// offset. Panics if the segment is exhausted — segment sizing is a
    /// configuration decision, running out is a setup bug, not a runtime
    /// condition the protocols handle.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        let size = round_up(bytes);
        let off = if let Some(list) = self.free.get_mut(&size) {
            let off = list.pop().expect("empty free list present");
            if list.is_empty() {
                self.free.remove(&size);
            }
            off
        } else {
            let off = self.bump;
            assert!(
                off.checked_add(size).is_some_and(|end| end <= self.cap),
                "segment exhausted: cap={} bump={} request={}",
                self.cap,
                self.bump,
                size
            );
            self.bump += size;
            off
        };
        self.stats.total_allocs += 1;
        self.stats.live_bytes += size as u64;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        off
    }

    /// Return a block to its size-class free list.
    pub fn free(&mut self, off: u32, bytes: u32) {
        let size = round_up(bytes);
        debug_assert!(off + size <= self.bump, "freeing unallocated block");
        self.free.entry(size).or_default().push(off);
        self.stats.total_frees += 1;
        debug_assert!(
            self.stats.live_bytes >= size as u64,
            "free without matching alloc"
        );
        self.stats.live_bytes -= size as u64;
    }

    pub fn stats(&self) -> SegStats {
        self.stats
    }
}

#[inline]
fn round_up(bytes: u32) -> u32 {
    bytes.div_ceil(WORD) * WORD
}

/// Bytes per backing page of a segment. Segments are *page-granular* on the
/// host: the configured capacity is only an address-space bound, and a page
/// of backing memory is allocated the first time a non-zero word is written
/// into it. A 64 MiB segment whose run only ever touches its deque control
/// words and a handful of thread entries costs a few KiB of host memory —
/// the whole-machine footprint is O(touched pages), not
/// O(workers × seg_bytes).
pub const PAGE_BYTES: u32 = 4096;

/// Words per backing page.
const PAGE_WORDS: usize = (PAGE_BYTES / WORD) as usize;

fn zero_page() -> Box<[u64]> {
    // `vec![0; _]` lowers to a zeroed allocation; no 4 KiB stack round-trip.
    vec![0u64; PAGE_WORDS].into_boxed_slice()
}

/// One worker's pinned memory window.
///
/// The first `reserved` bytes are statically laid out by the runtime (deque
/// control words + ring buffer); the rest is managed by the embedded
/// allocator for dynamically created remote objects (thread entries, saved
/// contexts). Backing storage is a page table of lazily materialized 4 KiB
/// pages (see [`PAGE_BYTES`]): an absent page reads as zero, and writing a
/// zero to an absent page is a no-op — so a fresh segment, a fresh page and
/// a never-written word are all indistinguishable, and laziness cannot
/// change any simulation result.
pub struct Segment {
    /// `cap / PAGE_BYTES` slots (rounded up); `None` until the page's first
    /// non-zero write.
    pages: Vec<Option<Box<[u64]>>>,
    alloc: SegAlloc,
    /// Materialized page count. Monotone: pages are never released while
    /// the segment lives (a freed record's page stays resident, matching a
    /// real allocator's behaviour).
    resident_pages: usize,
}

impl Segment {
    pub fn new(cap_bytes: u32, reserved_bytes: u32) -> Segment {
        assert_eq!(cap_bytes % WORD, 0);
        let reserved = round_up(reserved_bytes);
        assert!(reserved <= cap_bytes);
        let n_pages = (cap_bytes as usize).div_ceil(PAGE_BYTES as usize);
        Segment {
            pages: (0..n_pages).map(|_| None).collect(),
            alloc: SegAlloc::new(cap_bytes, reserved),
            resident_pages: 0,
        }
    }

    /// Host bytes actually backing this segment (materialized pages only;
    /// the page table itself is one word per page of *capacity*).
    #[inline]
    pub fn resident_bytes(&self) -> u64 {
        self.resident_pages as u64 * PAGE_BYTES as u64
    }

    #[inline]
    pub fn read(&self, off: u32) -> u64 {
        debug_assert_eq!(off % WORD, 0);
        let idx = (off / WORD) as usize;
        match &self.pages[idx / PAGE_WORDS] {
            Some(p) => p[idx % PAGE_WORDS],
            None => 0,
        }
    }

    #[inline]
    pub fn write(&mut self, off: u32, v: u64) {
        debug_assert_eq!(off % WORD, 0);
        debug_assert!(off < self.alloc.cap, "write past segment capacity");
        let idx = (off / WORD) as usize;
        let slot = &mut self.pages[idx / PAGE_WORDS];
        match slot {
            Some(p) => p[idx % PAGE_WORDS] = v,
            None => {
                // An absent page already reads as zero: only a non-zero
                // write needs backing. This keeps record-zeroing on alloc
                // (and protocol writes of 0 / NULL) free of host memory.
                if v != 0 {
                    let mut p = zero_page();
                    p[idx % PAGE_WORDS] = v;
                    *slot = Some(p);
                    self.resident_pages += 1;
                }
            }
        }
    }

    #[inline]
    pub fn fetch_add(&mut self, off: u32, add: u64) -> u64 {
        let old = self.read(off);
        self.write(off, old.wrapping_add(add));
        old
    }

    /// Compare-and-swap; returns the observed value (swap happened iff it
    /// equals `expect`).
    #[inline]
    pub fn cas(&mut self, off: u32, expect: u64, new: u64) -> u64 {
        let old = self.read(off);
        if old == expect {
            self.write(off, new);
        }
        old
    }

    /// Allocate a record of `bytes` in this segment, zeroing its words.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        let off = self.alloc.alloc(bytes);
        for i in 0..round_up(bytes) / WORD {
            self.write(off + i * WORD, 0);
        }
        off
    }

    pub fn free(&mut self, off: u32, bytes: u32) {
        self.alloc.free(off, bytes);
    }

    pub fn alloc_stats(&self) -> SegStats {
        self.alloc.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_addr_roundtrip() {
        let a = GlobalAddr::new(42, 0x1000);
        assert_eq!(GlobalAddr::from_u64(a.to_u64()), a);
        assert_eq!(a.field(3).off, 0x1000 + 24);
        assert!(GlobalAddr::NULL.is_null());
        assert!(!a.is_null());
        // NULL survives the u64 roundtrip too.
        assert!(GlobalAddr::from_u64(GlobalAddr::NULL.to_u64()).is_null());
    }

    #[test]
    fn segment_read_write_atomic() {
        let mut s = Segment::new(1024, 64);
        s.write(0, 7);
        assert_eq!(s.read(0), 7);
        assert_eq!(s.fetch_add(0, 5), 7);
        assert_eq!(s.read(0), 12);
        assert_eq!(s.cas(0, 12, 99), 12);
        assert_eq!(s.read(0), 99);
        assert_eq!(s.cas(0, 12, 1), 99); // failed CAS leaves value
        assert_eq!(s.read(0), 99);
    }

    #[test]
    fn alloc_reuses_freed_blocks() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(24);
        let b = s.alloc(24);
        assert_ne!(a, b);
        s.free(a, 24);
        let c = s.alloc(24);
        assert_eq!(c, a, "freed block should be recycled");
        let st = s.alloc_stats();
        assert_eq!(st.total_allocs, 3);
        assert_eq!(st.total_frees, 1);
        assert_eq!(st.live_bytes, 48);
    }

    #[test]
    fn alloc_zeroes_memory() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(16);
        s.write(a, u64::MAX);
        s.write(a + 8, u64::MAX);
        s.free(a, 16);
        let b = s.alloc(16);
        assert_eq!(b, a);
        assert_eq!(s.read(b), 0);
        assert_eq!(s.read(b + 8), 0);
    }

    #[test]
    fn alloc_rounds_to_words() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(1);
        let b = s.alloc(1);
        assert_eq!(b - a, WORD);
    }

    #[test]
    #[should_panic(expected = "segment exhausted")]
    fn exhaustion_panics() {
        let mut s = Segment::new(64, 0);
        let _ = s.alloc(128);
    }

    /// Pages materialize only on the first *non-zero* write; reads and
    /// zero writes are free, and host cost tracks touched pages, not
    /// capacity.
    #[test]
    fn pages_materialize_on_first_nonzero_write() {
        let far = 512 * 1024; // well past the first page of a 1 MiB segment
        let mut s = Segment::new(1 << 20, 128);
        assert_eq!(s.resident_bytes(), 0);
        assert_eq!(s.read(far), 0, "absent page reads as zero");
        s.write(far, 0);
        assert_eq!(s.resident_bytes(), 0, "zero write needs no backing");
        s.write(far, 7);
        assert_eq!(s.resident_bytes(), PAGE_BYTES as u64);
        assert_eq!(s.read(far), 7);
        // Same page: free. Distant page: one more page, regardless of the
        // untouched span in between.
        s.write(far + 8, 9);
        assert_eq!(s.resident_bytes(), PAGE_BYTES as u64);
        s.write(0, 1);
        assert_eq!(s.resident_bytes(), 2 * PAGE_BYTES as u64);
        // Overwriting with zero keeps the page (residency is monotone) and
        // the value round-trips.
        s.write(far, 0);
        assert_eq!(s.read(far), 0);
        assert_eq!(s.read(far + 8), 9);
        assert_eq!(s.resident_bytes(), 2 * PAGE_BYTES as u64);
    }

    /// The allocator's zeroing of recycled records really clears stale data
    /// on materialized pages (the zero-skip applies only to absent pages).
    #[test]
    fn realloc_on_materialized_page_is_zeroed() {
        let mut s = Segment::new(1 << 16, 0);
        let a = s.alloc(24);
        s.write(a, u64::MAX);
        s.write(a + 16, u64::MAX);
        s.free(a, 24);
        let b = s.alloc(24);
        assert_eq!(b, a);
        for i in 0..3 {
            assert_eq!(s.read(b + i * WORD), 0, "stale word at field {i}");
        }
    }

    #[test]
    fn peak_tracking() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(100); // rounds to 104
        s.free(a, 100);
        let _ = s.alloc(8);
        let st = s.alloc_stats();
        assert_eq!(st.peak_bytes, 104);
        assert_eq!(st.live_bytes, 8);
    }
}
