//! Simulated pinned memory segments and global addresses.
//!
//! Each worker owns one [`Segment`]: the RDMA-registered ("pinned") memory
//! window that remote workers can read, write and atomically update through
//! the fabric verbs in [`crate::machine::Machine`]. A [`GlobalAddr`] names a
//! word in some worker's segment — it is the `Loc(T)` of the paper's
//! pseudocode (Fig. 3/4): worker rank + virtual address.
//!
//! Memory is word-granular (`u64`): every object the protocols place in
//! pinned memory (thread entries, deque control words, ring entries, saved
//! context descriptors, free bits) is a small record of u64 fields. Bulk
//! payloads (migrated call stacks, task arguments) are accounted by byte size
//! on the fabric but their Rust-side representation travels through typed
//! side tables owned by the runtime, so the segment itself never needs raw
//! byte storage.
//!
//! The embedded allocator ([`SegAlloc`]) is a bump allocator with per-size
//! free lists — the workload is a high rate of small fixed-size records
//! (thread entries are allocated at every spawn), which is exactly what a
//! segregated free list is good at, and it keeps allocation O(1) and
//! deterministic.

use std::cell::RefCell;
use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// Bytes per memory word.
pub const WORD: u32 = 8;

/// A global address: worker rank + byte offset within that worker's segment.
///
/// Packs to a single `u64` so that addresses themselves can be stored in
/// pinned memory words (e.g. `ctxloc` in the greedy-join thread entry).
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct GlobalAddr {
    pub rank: u32,
    /// Byte offset, always a multiple of [`WORD`].
    pub off: u32,
}

impl GlobalAddr {
    /// The null address (no valid segment offset); used as "absent" marker in
    /// pinned-memory fields.
    pub const NULL: GlobalAddr = GlobalAddr {
        rank: u32::MAX,
        off: u32::MAX,
    };

    #[inline]
    pub fn new(rank: usize, off: u32) -> GlobalAddr {
        debug_assert_eq!(off % WORD, 0, "unaligned global address");
        GlobalAddr {
            rank: rank as u32,
            off,
        }
    }

    #[inline]
    pub fn is_null(self) -> bool {
        self == GlobalAddr::NULL
    }

    /// Address of the `i`-th word field of a record starting at `self`.
    #[inline]
    pub fn field(self, i: u32) -> GlobalAddr {
        debug_assert!(!self.is_null());
        GlobalAddr {
            rank: self.rank,
            off: self.off + i * WORD,
        }
    }

    #[inline]
    pub fn to_u64(self) -> u64 {
        ((self.rank as u64) << 32) | self.off as u64
    }

    #[inline]
    pub fn from_u64(v: u64) -> GlobalAddr {
        GlobalAddr {
            rank: (v >> 32) as u32,
            off: v as u32,
        }
    }
}

impl fmt::Debug for GlobalAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_null() {
            write!(f, "GlobalAddr(NULL)")
        } else {
            write!(f, "GlobalAddr({}:{:#x})", self.rank, self.off)
        }
    }
}

/// Allocation statistics for a segment.
#[derive(Clone, Copy, Debug, Default)]
pub struct SegStats {
    pub live_bytes: u64,
    pub peak_bytes: u64,
    pub total_allocs: u64,
    pub total_frees: u64,
}

/// Bump allocator with segregated free lists, embedded in each segment.
#[derive(Debug)]
pub struct SegAlloc {
    /// Next unallocated byte offset.
    bump: u32,
    /// Segment capacity in bytes.
    cap: u32,
    /// Free lists keyed by block size in bytes.
    free: BTreeMap<u32, Vec<u32>>,
    stats: SegStats,
}

impl SegAlloc {
    fn new(cap_bytes: u32, reserved: u32) -> SegAlloc {
        SegAlloc {
            bump: reserved,
            cap: cap_bytes,
            free: BTreeMap::new(),
            stats: SegStats::default(),
        }
    }

    /// Allocate `bytes` (rounded up to a word multiple). Returns the byte
    /// offset. Panics if the segment is exhausted — segment sizing is a
    /// configuration decision, running out is a setup bug, not a runtime
    /// condition the protocols handle.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        let size = round_up(bytes);
        let off = if let Some(list) = self.free.get_mut(&size) {
            let off = list.pop().expect("empty free list present");
            if list.is_empty() {
                self.free.remove(&size);
            }
            off
        } else {
            let off = self.bump;
            assert!(
                off.checked_add(size).is_some_and(|end| end <= self.cap),
                "segment exhausted: cap={} bump={} request={}",
                self.cap,
                self.bump,
                size
            );
            self.bump += size;
            off
        };
        self.stats.total_allocs += 1;
        self.stats.live_bytes += size as u64;
        self.stats.peak_bytes = self.stats.peak_bytes.max(self.stats.live_bytes);
        off
    }

    /// Return a block to its size-class free list.
    pub fn free(&mut self, off: u32, bytes: u32) {
        let size = round_up(bytes);
        debug_assert!(off + size <= self.bump, "freeing unallocated block");
        self.free.entry(size).or_default().push(off);
        self.stats.total_frees += 1;
        debug_assert!(
            self.stats.live_bytes >= size as u64,
            "free without matching alloc"
        );
        self.stats.live_bytes -= size as u64;
    }

    pub fn stats(&self) -> SegStats {
        self.stats
    }
}

#[inline]
fn round_up(bytes: u32) -> u32 {
    bytes.div_ceil(WORD) * WORD
}

/// Per-thread recycling pool for segment backing buffers.
///
/// Segments are typically sized at tens of MiB and a sweep executes many
/// thousands of runs, each creating one segment per simulated worker — the
/// dominant host-side allocation of the whole harness. Instead of returning
/// each buffer to the OS on drop (and re-faulting every touched page on the
/// next run), dropped buffers have their *dirty prefix* zeroed and are kept
/// for reuse.
///
/// Invariant: every pooled buffer is all-zero, so a recycled buffer is
/// indistinguishable from a freshly calloc'd one — pooling cannot change
/// any simulation result. The dirty prefix is exactly `[0, alloc.bump)`:
/// the allocator only hands out offsets below its bump pointer and the
/// statically reserved region sits below the initial bump, so no write can
/// land past it.
///
/// The pool is thread-local (a run lives entirely on one host thread, see
/// `dcs-bench`'s sweep harness) and bounded per size class.
const POOL_PER_CLASS: usize = 256;

thread_local! {
    static SEG_POOL: RefCell<HashMap<usize, Vec<Vec<u64>>>> = RefCell::new(HashMap::new());
}

fn pool_take(words: usize) -> Vec<u64> {
    SEG_POOL
        .with(|p| p.borrow_mut().get_mut(&words).and_then(Vec::pop))
        .unwrap_or_else(|| vec![0; words])
}

fn pool_put(mut buf: Vec<u64>, dirty_words: usize) {
    if buf.is_empty() {
        return; // moved-out segment (or zero-capacity): nothing to keep
    }
    let dirty = dirty_words.min(buf.len());
    buf[..dirty].fill(0);
    SEG_POOL.with(|p| {
        let mut pool = p.borrow_mut();
        let class = pool.entry(buf.len()).or_default();
        if class.len() < POOL_PER_CLASS {
            class.push(buf);
        }
    });
}

/// One worker's pinned memory window.
///
/// The first `reserved` bytes are statically laid out by the runtime (deque
/// control words + ring buffer); the rest is managed by the embedded
/// allocator for dynamically created remote objects (thread entries, saved
/// contexts).
pub struct Segment {
    words: Vec<u64>,
    alloc: SegAlloc,
    /// High-water mark (in words) of raw writes, which may land above the
    /// allocator bump pointer (one-sided verbs need no local allocation).
    /// Recycling must zero up to here, not just up to `bump`.
    hw: usize,
}

impl Segment {
    pub fn new(cap_bytes: u32, reserved_bytes: u32) -> Segment {
        assert_eq!(cap_bytes % WORD, 0);
        let reserved = round_up(reserved_bytes);
        assert!(reserved <= cap_bytes);
        Segment {
            words: pool_take((cap_bytes / WORD) as usize),
            alloc: SegAlloc::new(cap_bytes, reserved),
            hw: 0,
        }
    }

    #[inline]
    pub fn read(&self, off: u32) -> u64 {
        debug_assert_eq!(off % WORD, 0);
        self.words[(off / WORD) as usize]
    }

    #[inline]
    pub fn write(&mut self, off: u32, v: u64) {
        debug_assert_eq!(off % WORD, 0);
        let idx = (off / WORD) as usize;
        self.words[idx] = v;
        if idx >= self.hw {
            self.hw = idx + 1;
        }
    }

    #[inline]
    pub fn fetch_add(&mut self, off: u32, add: u64) -> u64 {
        let old = self.read(off);
        self.write(off, old.wrapping_add(add));
        old
    }

    /// Compare-and-swap; returns the observed value (swap happened iff it
    /// equals `expect`).
    #[inline]
    pub fn cas(&mut self, off: u32, expect: u64, new: u64) -> u64 {
        let old = self.read(off);
        if old == expect {
            self.write(off, new);
        }
        old
    }

    /// Allocate a record of `bytes` in this segment, zeroing its words.
    pub fn alloc(&mut self, bytes: u32) -> u32 {
        let off = self.alloc.alloc(bytes);
        for i in 0..round_up(bytes) / WORD {
            self.write(off + i * WORD, 0);
        }
        off
    }

    pub fn free(&mut self, off: u32, bytes: u32) {
        self.alloc.free(off, bytes);
    }

    pub fn alloc_stats(&self) -> SegStats {
        self.alloc.stats()
    }
}

impl Drop for Segment {
    fn drop(&mut self) {
        let buf = std::mem::take(&mut self.words);
        // Allocator-managed words sit below the bump pointer; raw verb
        // writes may sit above it — zero out to whichever is higher.
        let dirty = ((self.alloc.bump / WORD) as usize).max(self.hw);
        pool_put(buf, dirty);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn global_addr_roundtrip() {
        let a = GlobalAddr::new(42, 0x1000);
        assert_eq!(GlobalAddr::from_u64(a.to_u64()), a);
        assert_eq!(a.field(3).off, 0x1000 + 24);
        assert!(GlobalAddr::NULL.is_null());
        assert!(!a.is_null());
        // NULL survives the u64 roundtrip too.
        assert!(GlobalAddr::from_u64(GlobalAddr::NULL.to_u64()).is_null());
    }

    #[test]
    fn segment_read_write_atomic() {
        let mut s = Segment::new(1024, 64);
        s.write(0, 7);
        assert_eq!(s.read(0), 7);
        assert_eq!(s.fetch_add(0, 5), 7);
        assert_eq!(s.read(0), 12);
        assert_eq!(s.cas(0, 12, 99), 12);
        assert_eq!(s.read(0), 99);
        assert_eq!(s.cas(0, 12, 1), 99); // failed CAS leaves value
        assert_eq!(s.read(0), 99);
    }

    #[test]
    fn alloc_reuses_freed_blocks() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(24);
        let b = s.alloc(24);
        assert_ne!(a, b);
        s.free(a, 24);
        let c = s.alloc(24);
        assert_eq!(c, a, "freed block should be recycled");
        let st = s.alloc_stats();
        assert_eq!(st.total_allocs, 3);
        assert_eq!(st.total_frees, 1);
        assert_eq!(st.live_bytes, 48);
    }

    #[test]
    fn alloc_zeroes_memory() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(16);
        s.write(a, u64::MAX);
        s.write(a + 8, u64::MAX);
        s.free(a, 16);
        let b = s.alloc(16);
        assert_eq!(b, a);
        assert_eq!(s.read(b), 0);
        assert_eq!(s.read(b + 8), 0);
    }

    #[test]
    fn alloc_rounds_to_words() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(1);
        let b = s.alloc(1);
        assert_eq!(b - a, WORD);
    }

    #[test]
    #[should_panic(expected = "segment exhausted")]
    fn exhaustion_panics() {
        let mut s = Segment::new(64, 0);
        let _ = s.alloc(128);
    }

    /// A dropped segment's buffer comes back through the thread-local pool
    /// with every previously dirtied word zeroed — a recycled segment must
    /// be indistinguishable from a fresh one.
    #[test]
    fn recycled_segment_is_all_zero() {
        // An odd capacity no other test uses, so this class is ours alone.
        let cap = 81 * 1024 * 8;
        let mut dirtied = Vec::new();
        {
            let mut s = Segment::new(cap, 128);
            s.write(0, u64::MAX); // reserved region
            for _ in 0..100 {
                let off = s.alloc(56);
                s.write(off, 0xDEAD_BEEF);
                s.write(off + 48, 0xF00D);
                dirtied.push(off);
            }
        } // drop → pooled
        let s = Segment::new(cap, 128);
        assert_eq!(s.read(0), 0);
        for off in dirtied {
            for i in 0..7 {
                assert_eq!(s.read(off + i * WORD), 0, "stale word at {off}+{i}");
            }
        }
    }

    #[test]
    fn peak_tracking() {
        let mut s = Segment::new(4096, 0);
        let a = s.alloc(100); // rounds to 104
        s.free(a, 100);
        let _ = s.alloc(8);
        let st = s.alloc_stats();
        assert_eq!(st.peak_bytes, 104);
        assert_eq!(st.live_bytes, 8);
    }
}
