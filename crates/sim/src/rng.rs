//! Deterministic pseudo-random number generation for the simulator.
//!
//! Work stealing selects victims uniformly at random; reproducible
//! simulations need a seeded, dependency-free generator with independent
//! per-worker streams. [`SimRng`] is xoshiro256** (Blackman & Vigna), seeded
//! through SplitMix64 — the standard, well-tested combination. Each worker
//! derives its stream from `(run_seed, worker_id)` so adding workers never
//! perturbs the streams of existing ones.

/// SplitMix64 step; used for seeding and as a cheap standalone mixer.
#[inline]
pub fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// xoshiro256** deterministic PRNG.
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Seed from a run seed; all-zero states are impossible because SplitMix64
    /// never yields four zeros in a row.
    pub fn new(seed: u64) -> SimRng {
        let mut sm = seed;
        SimRng {
            s: [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ],
        }
    }

    /// Independent per-worker stream.
    pub fn for_worker(run_seed: u64, worker: usize) -> SimRng {
        // Mix the worker id through SplitMix64 so streams are decorrelated.
        let mut sm = run_seed ^ 0xD6E8_FEB8_6659_FD93;
        let a = splitmix64(&mut sm);
        SimRng::new(a ^ (worker as u64).wrapping_mul(0xA076_1D64_78BD_642F))
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1]
            .wrapping_mul(5)
            .rotate_left(7)
            .wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform integer in `[0, bound)` via Lemire's multiply-shift rejection.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let lo = m as u64;
            if lo >= bound || lo >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Pick a victim uniformly from `[0, n)` excluding `me` (n ≥ 2).
    #[inline]
    pub fn victim(&mut self, n: usize, me: usize) -> usize {
        debug_assert!(n >= 2);
        let v = self.below(n as u64 - 1) as usize;
        if v >= me {
            v + 1
        } else {
            v
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        let mut a = SimRng::new(7);
        let mut b = SimRng::new(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SimRng::new(8);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn worker_streams_differ() {
        let mut w0 = SimRng::for_worker(1, 0);
        let mut w1 = SimRng::for_worker(1, 1);
        let same = (0..32).filter(|_| w0.next_u64() == w1.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn below_is_in_range_and_covers() {
        let mut r = SimRng::new(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = r.below(7) as usize;
            assert!(v < 7);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn victim_never_self() {
        let mut r = SimRng::new(5);
        for _ in 0..1000 {
            let v = r.victim(8, 3);
            assert!(v < 8 && v != 3);
        }
        // Two-worker case: always the other one.
        for me in 0..2 {
            let v = r.victim(2, me);
            assert_eq!(v, 1 - me);
        }
    }

    #[test]
    fn unit_f64_in_range_and_uniformish() {
        let mut r = SimRng::new(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = r.unit_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} too far from 0.5");
    }

    #[test]
    fn splitmix_known_behaviour() {
        // First output for state 0 is the published SplitMix64 value.
        let mut s = 0u64;
        assert_eq!(splitmix64(&mut s), 0xE220_A839_7B1D_CDAF);
    }
}
