//! Deterministic fault injection for the simulated fabric.
//!
//! Real RDMA clusters see transient verb timeouts, lost and duplicated
//! messages, degraded NICs, and nodes that stop responding for a while. The
//! runtimes must stay *correct* under all of that and degrade gracefully in
//! *throughput*. This module injects exactly those faults, deterministically:
//! a [`FaultPlan`] carries its own seed, every worker draws from its own
//! fault stream (independent of the scheduler's victim-selection streams),
//! and all fault overheads are charged to virtual time, so a `(plan, seed)`
//! pair always reproduces the same run.
//!
//! Zero-cost when disabled: [`Machine`](crate::Machine) holds
//! `Option<FaultState>`; with [`FaultPlan::none()`] no RNG is ever drawn and
//! no cost is altered, so runs are bit-identical to a build without the
//! fault layer.
//!
//! Fault semantics:
//!
//! * **Transient verb failure** (`verb_fail_p`): each remote verb attempt
//!   independently fails with this probability. The issuer detects the
//!   failure after a timeout (a multiple of the verb's nominal latency),
//!   backs off exponentially with jitter, and re-issues. Verbs never give
//!   up — the memory effect is applied exactly once — so protocols stay
//!   correct by construction while retries show up in time and counters.
//! * **Crash-stop windows** (`crash`): worker `w` is unresponsive during
//!   `[from, until)`. Its own steps freeze (consumers poll
//!   [`Machine::crashed_until`](crate::Machine::crashed_until)) and verbs
//!   targeting it time out until the issuer's retry clock passes the window
//!   end. State is preserved — this models a hung process, not data loss.
//! * **Degraded-NIC windows** (`degrade`): the network component of any verb
//!   touching worker `w` during `[from, until)` is scaled by `factor`.
//! * **Message drop / duplication** (`msg_drop_p` / `msg_dup_p`): two-sided
//!   control messages are lost or delivered twice. Callers declare whether a
//!   message is droppable — task-carrying messages model a reliable bulk
//!   channel and are only ever duplicated, never dropped, so no work is
//!   destroyed by the network itself.
//! * **Fail-stop kills** (`kill`): worker `w` dies permanently at time `T`.
//!   Unlike a crash-stop window the state is *lost*: verbs targeting the
//!   dead worker fail fast with a NIC unreachable error (see
//!   [`Machine::dead_guard`](crate::Machine::dead_guard)), its memory
//!   segment becomes unreadable, and anything it held (bag contents, deque
//!   items, in-flight grants it had received) is gone. Survivors detect the
//!   death either through such a verb error or through the heartbeat/lease
//!   registry: every worker publishes a heartbeat every `hb_period` into a
//!   well-known registry (modeled as a pure function of the kill schedule —
//!   the beats stand for background NIC/progress-thread traffic), and a
//!   worker whose lease (`lease` since its last beat) has expired is
//!   *confirmed dead*. Confirmation is sound: a live worker's beats never
//!   stop, so only genuinely dead workers are ever confirmed.
//!
//! `recover=on` arms the recovery machinery (lineage tracking, heartbeat
//! reads, transfer-counted termination) without scheduling any kill — the
//! configuration used to measure the overhead of being *prepared* to lose a
//! worker (`ablate_recovery`).

use std::fmt;

use crate::rng::SimRng;
use crate::time::VTime;
use crate::WorkerId;

/// A failed verb attempt is detected after this multiple of the verb's
/// nominal (possibly degraded) latency — models a completion-queue timeout.
pub const TIMEOUT_FACTOR: u64 = 8;
/// Exponential backoff doubles up to this many times (then stays capped).
pub const BACKOFF_CAP_EXP: u32 = 6;
/// Default heartbeat period of the one-sided lease registry.
pub const HB_PERIOD_DEFAULT: VTime = VTime::us(25);
/// Default lease: a worker silent for this long since its last heartbeat is
/// confirmed dead (8 missed beats at the default period).
pub const LEASE_DEFAULT: VTime = VTime::us(200);
/// Nominal flight time of a heartbeat put from the worker's NIC to the lease
/// registry. Degraded-NIC windows covering the emitter scale it, which is
/// exactly how a live straggler's lease can expire under the message
/// detector.
pub const HB_FLIGHT: VTime = VTime::us(1);

/// How survivors decide that a peer is dead.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum Detector {
    /// Ground-truth detector computed from the kill schedule: a live worker
    /// is never suspected and a dead one is confirmed exactly `lease` after
    /// its kill. Sound by construction — the pre-PR-9 behaviour, and still
    /// the default so every golden stays byte-identical.
    #[default]
    Oracle,
    /// Message-based detector: each worker's beats are fabric puts subject
    /// to the plan's drop probability and degraded-NIC windows, so lease
    /// expiry can fire on a *live* worker. The runtime must survive the
    /// resulting false suspicion (epoch fencing + rejoin).
    Message,
}

/// A per-worker time window during which remote operations touching the
/// worker run `factor`× slower (degraded NIC / congested link).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct DegradeWindow {
    pub worker: WorkerId,
    pub from: VTime,
    pub until: VTime,
    pub factor: f64,
}

/// A per-worker time window during which the worker is unresponsive
/// (crash-stop that recovers at `until`; state is preserved).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CrashWindow {
    pub worker: WorkerId,
    pub from: VTime,
    pub until: VTime,
}

/// Permanent fail-stop: `worker` dies at `at` and never returns; its state
/// (memory segment, held tasks) is lost.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct KillEvent {
    pub worker: WorkerId,
    pub at: VTime,
}

/// Typed rejection of a fault-plan spec: either the text itself is
/// malformed, or the clauses are individually well-formed but describe a
/// plan that cannot behave as written (a silently-miscalibrated registry,
/// a kill that can never fire). Collapsing these into one string would let
/// callers print them, but not distinguish a typo from a semantic trap —
/// the CLI wants to suggest the nearest working configuration for the
/// latter.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum FaultPlanError {
    /// The spec text does not parse (unknown clause, bad number, …).
    Syntax(String),
    /// `lease=` is shorter than `hb=`: a worker could be confirmed dead
    /// between two of its own heartbeats, making the registry unsound
    /// (live workers "confirmed" and their work double-executed).
    LeaseShorterThanHeartbeat { lease: VTime, hb: VTime },
    /// A kill is scheduled at or past the plan's declared `horizon=`: it
    /// would never fire, silently turning a crash test into a healthy run.
    KillPastHorizon {
        worker: WorkerId,
        at: VTime,
        horizon: VTime,
    },
    /// Two `kill=W@T` clauses name the same worker. A worker fail-stops at
    /// most once; silently letting the later clause shadow the earlier one
    /// turns a typo into a different experiment.
    DuplicateKill { worker: WorkerId },
    /// Under `detector=message` the suspicion lease is shorter than one
    /// heartbeat period plus the beat flight time, so even a loss-free
    /// fabric would suspect live workers continuously.
    SuspectLeaseTooShort { suspect: VTime, min: VTime },
}

impl fmt::Display for FaultPlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FaultPlanError::Syntax(s) => write!(f, "{s}"),
            FaultPlanError::LeaseShorterThanHeartbeat { lease, hb } => write!(
                f,
                "lease {lease} is shorter than the heartbeat period {hb}: a live worker \
                 could be confirmed dead between two of its own beats (need lease ≥ hb)"
            ),
            FaultPlanError::KillPastHorizon { worker, at, horizon } => write!(
                f,
                "kill of worker {worker} at {at} lies at or past the declared horizon \
                 {horizon}: it would never fire"
            ),
            FaultPlanError::DuplicateKill { worker } => write!(
                f,
                "worker {worker} has more than one kill= clause: a worker fail-stops \
                 at most once"
            ),
            FaultPlanError::SuspectLeaseTooShort { suspect, min } => write!(
                f,
                "suspect lease {suspect} is shorter than one heartbeat period plus the \
                 beat flight time ({min}): the message detector would suspect live \
                 workers even on a loss-free fabric"
            ),
        }
    }
}

impl std::error::Error for FaultPlanError {}

impl From<String> for FaultPlanError {
    fn from(s: String) -> FaultPlanError {
        FaultPlanError::Syntax(s)
    }
}

impl From<FaultPlanError> for String {
    fn from(e: FaultPlanError) -> String {
        e.to_string()
    }
}

/// Declarative description of every fault the fabric will inject.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Per-attempt probability that a remote verb fails and must be retried.
    pub verb_fail_p: f64,
    /// Probability that a droppable (control) message is lost.
    pub msg_drop_p: f64,
    /// Probability that a message is delivered twice.
    pub msg_dup_p: f64,
    pub degrade: Vec<DegradeWindow>,
    pub crash: Vec<CrashWindow>,
    /// Permanent fail-stop kills.
    pub kill: Vec<KillEvent>,
    /// Arm the recovery machinery (lineage tracking, heartbeat/lease reads,
    /// transfer-counted termination) even when `kill` is empty.
    pub recover: bool,
    /// Heartbeat period of the lease registry.
    pub hb_period: VTime,
    /// Lease: silence beyond this since the last heartbeat confirms death.
    pub lease: VTime,
    /// How survivors confirm deaths (`detector=` clause).
    pub detector: Detector,
    /// Suspicion lease of the message detector (`suspect=` clause): silence
    /// beyond this since the last *visible* beat suspects the worker. Falls
    /// back to `lease` when unset. Smaller = more aggressive.
    pub suspect: Option<VTime>,
    /// Whether an evicted-but-live worker may rejoin as a fresh incarnation
    /// (`rejoin=` clause). Defaults on; `rejoin=off` makes false suspicion
    /// permanent, which is only useful for measuring the cost of rejoin.
    pub rejoin: bool,
    /// Declared run horizon (`horizon=` clause): the latest virtual time the
    /// caller intends to simulate. Purely a validation aid — kills scheduled
    /// at or past it are rejected instead of silently never firing.
    pub horizon: Option<VTime>,
    /// Seed of the fault RNG streams (independent of the run seed).
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> FaultPlan {
        FaultPlan::none()
    }
}

impl FaultPlan {
    /// The empty plan: the fault layer is compiled out of the run entirely.
    pub fn none() -> FaultPlan {
        FaultPlan {
            verb_fail_p: 0.0,
            msg_drop_p: 0.0,
            msg_dup_p: 0.0,
            degrade: Vec::new(),
            crash: Vec::new(),
            kill: Vec::new(),
            recover: false,
            hb_period: HB_PERIOD_DEFAULT,
            lease: LEASE_DEFAULT,
            detector: Detector::Oracle,
            suspect: None,
            rejoin: true,
            horizon: None,
            seed: 0,
        }
    }

    /// Uniform transient-fault plan: verb failures at `p`, message drops at
    /// `p`, duplications at `p/2`. The shape used by the `ablate_faults`
    /// sweep.
    pub fn transient(p: f64, seed: u64) -> FaultPlan {
        FaultPlan {
            verb_fail_p: p,
            msg_drop_p: p,
            msg_dup_p: p / 2.0,
            ..FaultPlan::none()
        }
        .with_seed(seed)
    }

    /// True when any fault can ever fire (or recovery is armed); `false`
    /// guarantees the plan costs nothing at runtime.
    pub fn is_active(&self) -> bool {
        self.verb_fail_p > 0.0
            || self.msg_drop_p > 0.0
            || self.msg_dup_p > 0.0
            || !self.degrade.is_empty()
            || !self.crash.is_empty()
            || self.recovery_armed()
    }

    /// True when the recovery machinery (lineage, leases, transfer-counted
    /// termination) must run: a kill is scheduled, the plan asks for it
    /// explicitly, or the message detector is selected (false suspicion can
    /// evict a live worker, whose in-flight work must then be replayable).
    pub fn recovery_armed(&self) -> bool {
        self.recover || !self.kill.is_empty() || self.suspicion_possible()
    }

    /// True when the detector can suspect a *live* worker (message detector
    /// selected). Callers that assume confirmation implies death — strict
    /// leak accounting, the oracle soundness shortcut — must check this.
    pub fn suspicion_possible(&self) -> bool {
        self.detector == Detector::Message
    }

    /// Lease the active detector applies to heartbeat silence.
    pub fn suspect_lease(&self) -> VTime {
        self.suspect.unwrap_or(self.lease)
    }

    /// First kill time of `worker`, if any.
    pub fn killed_at(&self, worker: WorkerId) -> Option<VTime> {
        self.kill
            .iter()
            .filter(|k| k.worker == worker)
            .map(|k| k.at)
            .min()
    }

    pub fn with_seed(mut self, seed: u64) -> FaultPlan {
        self.seed = seed;
        self
    }

    pub fn with_degrade(mut self, w: DegradeWindow) -> FaultPlan {
        self.degrade.push(w);
        self
    }

    pub fn with_crash(mut self, w: CrashWindow) -> FaultPlan {
        self.crash.push(w);
        self
    }

    pub fn with_kill(mut self, worker: WorkerId, at: VTime) -> FaultPlan {
        self.kill.push(KillEvent { worker, at });
        self
    }

    pub fn with_recovery(mut self) -> FaultPlan {
        self.recover = true;
        self
    }

    pub fn with_detector(mut self, detector: Detector) -> FaultPlan {
        self.detector = detector;
        self
    }

    pub fn with_suspect(mut self, suspect: VTime) -> FaultPlan {
        self.suspect = Some(suspect);
        self
    }

    /// Parse the CLI spec grammar, a comma-separated list of clauses:
    ///
    /// ```text
    /// verb=P              transient verb failure probability
    /// drop=P              control-message drop probability
    /// dup=P               message duplication probability
    /// degrade=W@A..B*F    worker W's NIC runs F× slower in [A, B)
    /// crash=W@A..B        worker W is unresponsive in [A, B)
    /// kill=W@T            worker W fail-stops permanently at T
    /// recover=on          arm recovery machinery without scheduling a kill
    /// hb=T                heartbeat period of the lease registry
    /// lease=T             lease timeout confirming a silent worker dead
    /// detector=oracle|message   how deaths are confirmed (default oracle)
    /// suspect=T           message-detector suspicion lease (default: lease)
    /// rejoin=on|off       evicted live workers rejoin (default on)
    /// horizon=T           declared run horizon; kills must fire before it
    /// ```
    ///
    /// Times accept `ns`/`us`/`ms`/`s` suffixes (default ns):
    /// `verb=0.01,drop=0.02,degrade=3@2ms..9ms*4,crash=1@1ms..3ms,kill=2@4ms`.
    ///
    /// Beyond the grammar, the assembled plan is [`validated`]
    /// (FaultPlan::validate): a lease shorter than the heartbeat period or
    /// a kill at/past the declared horizon is a typed error, not a plan
    /// that silently misbehaves.
    pub fn parse(spec: &str) -> Result<FaultPlan, FaultPlanError> {
        let mut plan = FaultPlan::none();
        for clause in spec.split(',').filter(|c| !c.is_empty()) {
            let (key, val) = clause
                .split_once('=')
                .ok_or_else(|| format!("fault clause `{clause}` is not key=value"))?;
            match key {
                "verb" => plan.verb_fail_p = parse_prob(val)?,
                "drop" => plan.msg_drop_p = parse_prob(val)?,
                "dup" => plan.msg_dup_p = parse_prob(val)?,
                "degrade" => {
                    let (worker, rest) = parse_worker_at(val)?;
                    let (range, factor) = rest
                        .split_once('*')
                        .ok_or_else(|| format!("degrade `{val}` missing `*factor`"))?;
                    let (from, until) = parse_range(range)?;
                    let factor: f64 = factor
                        .parse()
                        .map_err(|_| format!("bad degrade factor `{factor}`"))?;
                    if factor < 1.0 {
                        return Err(format!("degrade factor {factor} must be ≥ 1").into());
                    }
                    plan.degrade.push(DegradeWindow {
                        worker,
                        from,
                        until,
                        factor,
                    });
                }
                "crash" => {
                    let (worker, range) = parse_worker_at(val)?;
                    let (from, until) = parse_range(range)?;
                    plan.crash.push(CrashWindow {
                        worker,
                        from,
                        until,
                    });
                }
                "kill" => {
                    let (worker, at) = parse_worker_at(val)?;
                    plan.kill.push(KillEvent {
                        worker,
                        at: parse_vtime(at)?,
                    });
                }
                "recover" => {
                    plan.recover = match val {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        _ => return Err(format!("recover wants on/off, got `{val}`").into()),
                    };
                }
                "hb" => plan.hb_period = parse_vtime(val)?,
                "lease" => plan.lease = parse_vtime(val)?,
                "detector" => {
                    plan.detector = match val {
                        "oracle" => Detector::Oracle,
                        "message" => Detector::Message,
                        _ => {
                            return Err(
                                format!("detector wants oracle/message, got `{val}`").into()
                            )
                        }
                    };
                }
                "suspect" => plan.suspect = Some(parse_vtime(val)?),
                "rejoin" => {
                    plan.rejoin = match val {
                        "on" | "true" | "1" => true,
                        "off" | "false" | "0" => false,
                        _ => return Err(format!("rejoin wants on/off, got `{val}`").into()),
                    };
                }
                "horizon" => plan.horizon = Some(parse_vtime(val)?),
                _ => return Err(format!("unknown fault clause `{key}`").into()),
            }
        }
        plan.validate()?;
        Ok(plan)
    }

    /// Semantic validation of an assembled plan — the checks that individual
    /// clause parsing cannot see. Runs automatically at the end of
    /// [`Self::parse`]; programmatic constructors may call it directly.
    pub fn validate(&self) -> Result<(), FaultPlanError> {
        if self.recovery_armed() && self.lease < self.hb_period {
            return Err(FaultPlanError::LeaseShorterThanHeartbeat {
                lease: self.lease,
                hb: self.hb_period,
            });
        }
        if let Some(horizon) = self.horizon {
            if let Some(k) = self.kill.iter().find(|k| k.at >= horizon) {
                return Err(FaultPlanError::KillPastHorizon {
                    worker: k.worker,
                    at: k.at,
                    horizon,
                });
            }
        }
        for (i, k) in self.kill.iter().enumerate() {
            if self.kill[..i].iter().any(|p| p.worker == k.worker) {
                return Err(FaultPlanError::DuplicateKill { worker: k.worker });
            }
        }
        if self.detector == Detector::Message {
            let min = self.hb_period + HB_FLIGHT;
            if self.suspect_lease() < min {
                return Err(FaultPlanError::SuspectLeaseTooShort {
                    suspect: self.suspect_lease(),
                    min,
                });
            }
        }
        Ok(())
    }
}

/// Emits the exact grammar [`FaultPlan::parse`] accepts, one clause per
/// non-default field, so `parse(format(p)) == p` for every plan whose times
/// are whole nanoseconds (all constructible ones are). Times print as raw
/// `{}ns`, probabilities and factors via `{}` (Rust's shortest round-trip
/// float repr) — both re-parse to the identical value.
impl fmt::Display for FaultPlan {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut sep = "";
        let mut clause = |f: &mut fmt::Formatter<'_>, args: fmt::Arguments<'_>| {
            let r = write!(f, "{sep}{args}");
            sep = ",";
            r
        };
        if self.verb_fail_p > 0.0 {
            clause(f, format_args!("verb={}", self.verb_fail_p))?;
        }
        if self.msg_drop_p > 0.0 {
            clause(f, format_args!("drop={}", self.msg_drop_p))?;
        }
        if self.msg_dup_p > 0.0 {
            clause(f, format_args!("dup={}", self.msg_dup_p))?;
        }
        for d in &self.degrade {
            clause(
                f,
                format_args!(
                    "degrade={}@{}ns..{}ns*{}",
                    d.worker,
                    d.from.as_ns(),
                    d.until.as_ns(),
                    d.factor
                ),
            )?;
        }
        for c in &self.crash {
            clause(
                f,
                format_args!("crash={}@{}ns..{}ns", c.worker, c.from.as_ns(), c.until.as_ns()),
            )?;
        }
        for k in &self.kill {
            clause(f, format_args!("kill={}@{}ns", k.worker, k.at.as_ns()))?;
        }
        if self.recover {
            clause(f, format_args!("recover=on"))?;
        }
        if self.hb_period != HB_PERIOD_DEFAULT {
            clause(f, format_args!("hb={}ns", self.hb_period.as_ns()))?;
        }
        if self.lease != LEASE_DEFAULT {
            clause(f, format_args!("lease={}ns", self.lease.as_ns()))?;
        }
        if self.detector == Detector::Message {
            clause(f, format_args!("detector=message"))?;
        }
        if let Some(s) = self.suspect {
            clause(f, format_args!("suspect={}ns", s.as_ns()))?;
        }
        if !self.rejoin {
            clause(f, format_args!("rejoin=off"))?;
        }
        if let Some(h) = self.horizon {
            clause(f, format_args!("horizon={}ns", h.as_ns()))?;
        }
        Ok(())
    }
}

fn parse_prob(s: &str) -> Result<f64, String> {
    let p: f64 = s.parse().map_err(|_| format!("bad probability `{s}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability {p} outside [0, 1]"));
    }
    Ok(p)
}

fn parse_worker_at(s: &str) -> Result<(WorkerId, &str), String> {
    let (w, rest) = s
        .split_once('@')
        .ok_or_else(|| format!("window `{s}` missing `worker@`"))?;
    let worker: WorkerId = w.parse().map_err(|_| format!("bad worker id `{w}`"))?;
    Ok((worker, rest))
}

fn parse_range(s: &str) -> Result<(VTime, VTime), String> {
    let (a, b) = s
        .split_once("..")
        .ok_or_else(|| format!("window `{s}` missing `start..end`"))?;
    let from = parse_vtime(a)?;
    let until = parse_vtime(b)?;
    if until <= from {
        return Err(format!("window `{s}` is empty or inverted"));
    }
    Ok((from, until))
}

/// Parse `123`, `5us`, `2ms`, `1s` (bare numbers are nanoseconds).
pub fn parse_vtime(s: &str) -> Result<VTime, String> {
    let (num, mult) = if let Some(n) = s.strip_suffix("ns") {
        (n, 1u64)
    } else if let Some(n) = s.strip_suffix("us") {
        (n, 1_000)
    } else if let Some(n) = s.strip_suffix("ms") {
        (n, 1_000_000)
    } else if let Some(n) = s.strip_suffix('s') {
        (n, 1_000_000_000)
    } else {
        (s, 1)
    };
    let v: u64 = num
        .trim()
        .parse()
        .map_err(|_| format!("bad time `{s}` (expect e.g. 500us, 2ms)"))?;
    Ok(VTime::ns(v * mult))
}

/// What the fabric does with one two-sided message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgFate {
    /// Delivered once, normally.
    Deliver,
    /// Lost in flight; the sender still paid the injection cost.
    Drop,
    /// Delivered twice (the duplicate arrives one extra latency later).
    Duplicate,
}

/// Time-ordered feed of *candidate* detector status changes, shared by
/// every consumer of [`FaultState::confirmed_dead`].
///
/// The detector registry is a pure function of the plan, so the set of
/// instants at which any worker's confirmed/suspected status can flip is
/// computable up front (oracle: one event per kill) or incrementally
/// (message detector: suspicion intervals derived from each candidate's
/// visible-beat sequence). Consumers hold a cursor into the append-only
/// `events` list and learn in O(changes) which workers to re-examine —
/// replacing the former O(workers) full-registry scan per idle poll, the
/// dominant term at 10⁵ workers.
///
/// Candidate sets are conservative but tight: under the oracle only killed
/// workers ever confirm; under a loss-free message detector only killed or
/// degraded workers can be suspected (a live worker's beats all land within
/// the lease — validated at plan parse); with `msg_drop_p > 0` every worker
/// is a candidate and its beat stream is walked once per run, amortized
/// across all consumers.
#[derive(Default)]
struct DeathWatch {
    /// `(time, worker)` candidate status changes, sorted by time.
    events: Vec<(VTime, WorkerId)>,
    /// Every status change at or before this instant is already in
    /// `events` (`VTime` max when the feed is complete up front).
    generated_to: VTime,
    /// Per-candidate incremental generators (message detector only).
    gens: Vec<BeatGen>,
}

/// Incremental suspicion-interval generator for one message-detector
/// candidate: merges the worker's visible heartbeats into an "unsuspected
/// coverage" frontier and emits a feed event at each boundary where
/// suspicion begins or clears.
struct BeatGen {
    worker: WorkerId,
    /// Next heartbeat index to emit.
    next_k: u64,
    /// Visible-at times of beats already emitted but landing past the
    /// generated horizon (degraded flights arrive out of order), sorted.
    pending: Vec<VTime>,
    /// The worker is continuously unsuspected up to here (exclusive).
    cover_end: VTime,
    /// A suspicion interval is open (its start event is already emitted).
    gap_open: bool,
    /// The kill point was reached: no further beats will ever be emitted.
    beats_done: bool,
    /// Suspected forever (killed, all beats landed): nothing left to emit.
    done: bool,
}

impl DeathWatch {
    fn new(plan: &FaultPlan, workers: usize) -> DeathWatch {
        let complete = VTime::ns(u64::MAX);
        if !plan.recovery_armed() {
            // `confirmed_dead` is identically false: empty, complete feed.
            return DeathWatch {
                events: Vec::new(),
                generated_to: complete,
                gens: Vec::new(),
            };
        }
        match plan.detector {
            Detector::Oracle => {
                // Ground truth: worker `w` confirms exactly once, at
                // `kill + lease`, and never revokes.
                let mut events: Vec<(VTime, WorkerId)> = plan
                    .kill
                    .iter()
                    .map(|k| (k.at + plan.lease, k.worker))
                    .collect();
                events.sort_unstable();
                DeathWatch {
                    events,
                    generated_to: complete,
                    gens: Vec::new(),
                }
            }
            Detector::Message => {
                // Tight candidate set: with a loss-free fabric only killed
                // or degraded workers can ever be suspected; per-beat drops
                // make every worker a candidate.
                let mut cands: Vec<WorkerId> = if plan.msg_drop_p > 0.0 {
                    (0..workers).collect()
                } else {
                    plan.kill
                        .iter()
                        .map(|k| k.worker)
                        .chain(plan.degrade.iter().map(|d| d.worker))
                        .filter(|&w| w < workers)
                        .collect()
                };
                cands.sort_unstable();
                cands.dedup();
                let grace = plan.suspect_lease();
                let gens = cands
                    .into_iter()
                    .map(|worker| BeatGen {
                        worker,
                        next_k: 0,
                        pending: Vec::new(),
                        // Startup grace: `suspected` is false before one
                        // full lease regardless of beats.
                        cover_end: grace,
                        gap_open: false,
                        beats_done: false,
                        done: false,
                    })
                    .collect();
                DeathWatch {
                    events: Vec::new(),
                    generated_to: VTime::ZERO,
                    gens,
                }
            }
        }
    }

    /// Extend the feed so every status change at or before `target` is in
    /// `events`. Generates in chunks of at least 64 heartbeat periods so a
    /// caller polling every few nanoseconds touches the generators rarely.
    fn generate(&mut self, fs: &FaultState, target: VTime) {
        if target <= self.generated_to {
            return;
        }
        let period = fs.plan.hb_period.as_ns().max(1);
        let t = target.max(self.generated_to + VTime::ns(64 * period));
        let s = fs.plan.suspect_lease();
        let mut batch: Vec<(VTime, WorkerId)> = Vec::new();
        for g in &mut self.gens {
            if g.done {
                continue;
            }
            // Emit this chunk's beats. A beat emitted at `e` becomes
            // visible at `e + flight(e)` — possibly past `t` (parked in
            // `pending`) and possibly out of order under degrade windows.
            if !g.beats_done {
                loop {
                    let emit = VTime::ns(g.next_k * period);
                    if emit > t {
                        break;
                    }
                    if matches!(fs.kill_at[g.worker], Some(k) if emit >= k) {
                        g.beats_done = true; // beats stop at the kill
                        break;
                    }
                    if g.next_k == 0 || !fs.beat_dropped(g.worker, g.next_k) {
                        let flight =
                            HB_FLIGHT.scale(fs.degrade_factor(g.worker, g.worker, emit));
                        g.pending.push(emit + flight);
                    }
                    g.next_k += 1;
                }
                g.pending.sort_unstable();
            }
            // Merge beats visible by `t` into the coverage frontier. Every
            // boundary crossed is a feed event; `suspected` holds exactly
            // on the complement of `[0, grace) ∪ ⋃ [visible, visible+s)`.
            let cut = g.pending.partition_point(|&v| v <= t);
            for &v in &g.pending[..cut] {
                if g.gap_open {
                    batch.push((v, g.worker)); // suspicion clears at `v`
                    g.gap_open = false;
                    g.cover_end = v + s;
                } else if v > g.cover_end {
                    batch.push((g.cover_end, g.worker)); // suspicion begins
                    batch.push((v, g.worker)); // ... and clears
                    g.cover_end = v + s;
                } else {
                    g.cover_end = g.cover_end.max(v + s);
                }
            }
            g.pending.drain(..cut);
            // Coverage ran out within the horizon: suspicion begins at the
            // frontier and stays open into the next chunk (or forever).
            if !g.gap_open && g.cover_end <= t {
                batch.push((g.cover_end, g.worker));
                g.gap_open = true;
            }
            if g.beats_done && g.pending.is_empty() && g.gap_open {
                g.done = true; // killed, all beats landed: suspected forever
            }
        }
        // Each chunk's events all lie in (generated_to, t] — later than
        // everything already emitted — so a per-chunk sort keeps the whole
        // list time-ordered.
        batch.sort_unstable();
        self.events.extend(batch);
        self.generated_to = t;
    }
}

/// Live fault-injection state inside [`Machine`](crate::Machine). Exists only
/// when the plan is active.
pub struct FaultState {
    plan: FaultPlan,
    /// Per-worker fault streams, independent of scheduler RNG.
    rng: Vec<SimRng>,
    /// Virtual clock of each worker at the top of its current step; verbs
    /// evaluate time windows at `step_now + accumulated retry cost`.
    step_now: Vec<VTime>,
    /// Failed attempts since last [`take_faults`](FaultState::take_faults)
    /// poll, per worker — feeds the schedulers' victim blacklists.
    recent: Vec<u64>,
    /// First kill time per worker (precomputed from the plan).
    kill_at: Vec<Option<VTime>>,
    /// Shared candidate feed of detector status changes (see [`DeathWatch`]).
    watch: DeathWatch,
}

impl FaultState {
    pub fn new(plan: FaultPlan, workers: usize) -> FaultState {
        let rng = (0..workers)
            // Decorrelate from scheduler streams (different domain constant).
            .map(|w| SimRng::for_worker(plan.seed ^ 0xFA01_7A11_u64, w))
            .collect();
        let kill_at = (0..workers).map(|w| plan.killed_at(w)).collect();
        let watch = DeathWatch::new(&plan, workers);
        FaultState {
            plan,
            rng,
            step_now: vec![VTime::ZERO; workers],
            recent: vec![0; workers],
            kill_at,
            watch,
        }
    }

    /// Advance `cursor` through the detector's candidate feed up to `now`,
    /// appending the id of every worker whose [`Self::confirmed_dead`]
    /// status may have changed since the cursor's last position. Each
    /// consumer owns its cursor (starting at 0) and re-examines only the
    /// returned workers — O(status changes) total instead of O(workers) per
    /// poll. The feed is conservative (a returned worker's status may be
    /// unchanged after an intra-poll toggle) but complete: a worker absent
    /// from the feed since the cursor's last position has not changed.
    pub fn death_candidates(&mut self, cursor: &mut usize, now: VTime, out: &mut Vec<WorkerId>) {
        if now > self.watch.generated_to {
            // Detach the feed so generation can read plan state through
            // `&self` (it never touches the watch itself).
            let mut watch = std::mem::take(&mut self.watch);
            watch.generate(self, now);
            self.watch = watch;
        }
        let events = &self.watch.events;
        while let Some(&(t, w)) = events.get(*cursor) {
            if t > now {
                break;
            }
            out.push(w);
            *cursor += 1;
        }
    }

    pub fn plan(&self) -> &FaultPlan {
        &self.plan
    }

    #[inline]
    pub fn begin_step(&mut self, me: WorkerId, now: VTime) {
        self.step_now[me] = now;
    }

    pub fn take_faults(&mut self, me: WorkerId) -> u64 {
        std::mem::take(&mut self.recent[me])
    }

    /// Kill time of `worker`, if the plan fail-stops it at all.
    #[inline]
    pub fn killed_at(&self, worker: WorkerId) -> Option<VTime> {
        self.kill_at[worker]
    }

    /// Is `worker` fail-stopped at time `at`? This is ground truth (the
    /// NIC's view): verbs against a dead peer fail fast from the kill
    /// instant on, before any lease expires.
    #[inline]
    pub fn is_dead(&self, worker: WorkerId, at: VTime) -> bool {
        matches!(self.kill_at[worker], Some(t) if at >= t)
    }

    /// Does the active detector consider `worker` dead at `at`?
    ///
    /// * `detector=oracle`: ground truth — the lease registry is a pure
    ///   function of the kill schedule, so a live worker is never confirmed
    ///   and a dead one is confirmed exactly `lease` after its kill.
    /// * `detector=message`: beats travel over the lossy fabric, so this is
    ///   mere *suspicion* — it fires on a dead worker once its beats stop,
    ///   but can also fire on a live worker whose beats were dropped or
    ///   delayed past the suspicion lease. Callers must treat a confirmed
    ///   worker as evicted, not as provably dead.
    #[inline]
    pub fn confirmed_dead(&self, worker: WorkerId, at: VTime) -> bool {
        match self.plan.detector {
            Detector::Oracle => {
                matches!(self.kill_at[worker], Some(t) if at >= t + self.plan.lease)
            }
            Detector::Message => self.suspected(worker, at),
        }
    }

    /// Message-detector view: is `worker` suspected at `at` because no beat
    /// of its became visible within the suspicion lease?
    ///
    /// The beat sequence is a deterministic pure function of the plan: beat
    /// `k` is emitted at `k·hb_period` while the worker lives, dropped with
    /// probability `msg_drop_p` (hashed from `(seed, worker, k)`, so repeated
    /// queries agree), and becomes visible [`HB_FLIGHT`] later — scaled by
    /// any degraded-NIC window covering the emitter, which is how a live
    /// straggler gets falsely suspected. Beat 0 is the registration write
    /// and is never dropped, so a worker is only suspected after startup
    /// grace (`at ≥ suspect lease`).
    pub fn suspected(&self, worker: WorkerId, at: VTime) -> bool {
        let s = self.plan.suspect_lease();
        if at < s {
            return false;
        }
        let period = self.plan.hb_period.as_ns().max(1);
        // A beat emitted before the window start can still land inside it
        // after a degraded flight; widen the scan by the worst-case flight.
        let max_factor = self
            .plan
            .degrade
            .iter()
            .filter(|d| d.worker == worker)
            .map(|d| d.factor)
            .fold(1.0, f64::max);
        let max_flight = HB_FLIGHT.scale(max_factor);
        let lo = (at - s).as_ns().saturating_sub(max_flight.as_ns()) / period;
        let hi = at.as_ns() / period;
        for k in lo..=hi {
            let emit = VTime::ns(k * period);
            if matches!(self.kill_at[worker], Some(t) if emit >= t) {
                break; // beats stop at the kill
            }
            if k > 0 && self.beat_dropped(worker, k) {
                continue;
            }
            let flight = HB_FLIGHT.scale(self.degrade_factor(worker, worker, emit));
            let visible = emit + flight;
            // Not suspected iff some beat is visible in (at - s, at].
            if visible > at - s && visible <= at {
                return false;
            }
        }
        true
    }

    /// Deterministic per-(plan, worker, beat) drop draw, independent of every
    /// other RNG stream so querying suspicion never perturbs the run.
    fn beat_dropped(&self, worker: WorkerId, k: u64) -> bool {
        if self.plan.msg_drop_p <= 0.0 {
            return false;
        }
        let mut s = self.plan.seed
            ^ 0x5EED_BEA7_0000_0000
            ^ ((worker as u64) << 32)
            ^ k.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        let x = crate::rng::splitmix64(&mut s);
        let u = (x >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        u < self.plan.msg_drop_p
    }

    /// Has a heartbeat from `worker` been published strictly after `since`
    /// and become visible by `at`? Beats are emitted at multiples of
    /// `hb_period` while the worker lives. Used by the termination wave's
    /// attest rule: a token round may only complete once every
    /// not-confirmed-dead peer has beaten *after* the round started.
    pub fn fresh_since(&self, worker: WorkerId, since: VTime, at: VTime) -> bool {
        let period = self.plan.hb_period.as_ns().max(1);
        let alive_until = match self.kill_at[worker] {
            Some(t) if t <= at => t,
            _ => at,
        };
        // Latest beat emitted at or before `alive_until` (and strictly
        // before the kill, if any).
        let mut latest = alive_until.as_ns() / period * period;
        if matches!(self.kill_at[worker], Some(t) if latest >= t.as_ns()) {
            latest = latest.saturating_sub(period);
        }
        latest > since.as_ns()
    }

    /// End of a crash window covering `worker` at `at`, if any.
    pub fn crashed_until(&self, worker: WorkerId, at: VTime) -> Option<VTime> {
        self.plan
            .crash
            .iter()
            .filter(|c| c.worker == worker && c.from <= at && at < c.until)
            .map(|c| c.until)
            .max()
    }

    /// Largest degrade factor covering either endpoint at `at` (1.0 = none).
    fn degrade_factor(&self, a: WorkerId, b: WorkerId, at: VTime) -> f64 {
        self.plan
            .degrade
            .iter()
            .filter(|d| (d.worker == a || d.worker == b) && d.from <= at && at < d.until)
            .map(|d| d.factor)
            .fold(1.0, f64::max)
    }

    /// Charge one remote verb issued by `me` against `peer` with nominal
    /// cost `base`: retries through transient failures and crash windows
    /// until the attempt lands, returning the total elapsed cost. Bumps
    /// `retries`/`timeouts` counters through the returned struct.
    pub fn charge_verb(
        &mut self,
        me: WorkerId,
        peer: WorkerId,
        base: VTime,
        retries: &mut u64,
        timeouts: &mut u64,
    ) -> VTime {
        let mut acc = VTime::ZERO;
        let mut attempt: u32 = 0;
        loop {
            let at = self.step_now[me] + acc;
            let factor = self.degrade_factor(me, peer, at);
            let scaled = if factor > 1.0 { base.scale(factor) } else { base };
            // An unresponsive peer looks exactly like a lost completion: the
            // issuer times out and retries; the accumulated backoff is what
            // eventually carries the retry clock past the window end.
            let crashed = self.crashed_until(peer, at).is_some();
            let transient = !crashed
                && self.plan.verb_fail_p > 0.0
                && self.rng[me].unit_f64() < self.plan.verb_fail_p;
            if !crashed && !transient {
                return acc + scaled;
            }
            if crashed {
                *timeouts += 1;
            } else {
                *retries += 1;
            }
            self.recent[me] += 1;
            acc += scaled * TIMEOUT_FACTOR + self.backoff(me, scaled, attempt);
            attempt += 1;
        }
    }

    /// Exponential backoff with jitter: `scaled × 2^min(attempt, cap)` plus
    /// a uniform jitter in `[0, backoff/2)` to break retry synchronization.
    fn backoff(&mut self, me: WorkerId, scaled: VTime, attempt: u32) -> VTime {
        let exp = attempt.min(BACKOFF_CAP_EXP);
        let b = scaled * (1u64 << exp);
        let jitter = if b > VTime::ZERO {
            VTime::ns(self.rng[me].below(b.as_ns() / 2 + 1))
        } else {
            VTime::ZERO
        };
        b + jitter
    }

    /// Decide the fate of one two-sided message sent by `me`. Task-carrying
    /// messages pass `droppable = false` (reliable channel: duplication
    /// possible, loss not).
    pub fn msg_fate(&mut self, me: WorkerId, droppable: bool) -> MsgFate {
        if droppable && self.plan.msg_drop_p > 0.0 && self.rng[me].unit_f64() < self.plan.msg_drop_p
        {
            return MsgFate::Drop;
        }
        if self.plan.msg_dup_p > 0.0 && self.rng[me].unit_f64() < self.plan.msg_dup_p {
            return MsgFate::Duplicate;
        }
        MsgFate::Deliver
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn none_is_inactive_and_default() {
        assert!(!FaultPlan::none().is_active());
        assert_eq!(FaultPlan::default(), FaultPlan::none());
        assert!(FaultPlan::transient(0.01, 1).is_active());
        assert!(!FaultPlan::transient(0.0, 1).is_active());
    }

    #[test]
    fn parse_full_spec() {
        let p = FaultPlan::parse("verb=0.01,drop=0.02,dup=0.005,degrade=3@2ms..9ms*4,crash=1@1ms..3ms")
            .unwrap();
        assert_eq!(p.verb_fail_p, 0.01);
        assert_eq!(p.msg_drop_p, 0.02);
        assert_eq!(p.msg_dup_p, 0.005);
        assert_eq!(
            p.degrade,
            vec![DegradeWindow {
                worker: 3,
                from: VTime::ms(2),
                until: VTime::ms(9),
                factor: 4.0
            }]
        );
        assert_eq!(
            p.crash,
            vec![CrashWindow {
                worker: 1,
                from: VTime::ms(1),
                until: VTime::ms(3)
            }]
        );
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(FaultPlan::parse("verb=1.5").is_err());
        assert!(FaultPlan::parse("nope=1").is_err());
        assert!(FaultPlan::parse("crash=1@5ms..2ms").is_err());
        assert!(FaultPlan::parse("degrade=0@1ms..2ms").is_err()); // missing factor
        assert!(FaultPlan::parse("crash=x@1ms..2ms").is_err());
        assert!(FaultPlan::parse("").map(|p| !p.is_active()).unwrap());
    }

    #[test]
    fn parse_vtime_units() {
        assert_eq!(parse_vtime("123").unwrap(), VTime::ns(123));
        assert_eq!(parse_vtime("5us").unwrap(), VTime::us(5));
        assert_eq!(parse_vtime("2ms").unwrap(), VTime::ms(2));
        assert_eq!(parse_vtime("1s").unwrap(), VTime::secs(1));
        assert!(parse_vtime("1.5ms").is_err());
    }

    #[test]
    fn charge_verb_clean_is_base() {
        let mut fs = FaultState::new(FaultPlan::none().with_seed(1), 2);
        let (mut r, mut t) = (0, 0);
        let c = fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t);
        assert_eq!(c, VTime::us(2));
        assert_eq!((r, t), (0, 0));
    }

    #[test]
    fn transient_failures_retry_and_count() {
        let mut plan = FaultPlan::none();
        plan.verb_fail_p = 0.5;
        plan.seed = 42;
        let mut fs = FaultState::new(plan, 2);
        let (mut r, mut t) = (0, 0);
        let mut total = VTime::ZERO;
        for _ in 0..200 {
            total += fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t);
        }
        assert!(r > 50, "p=0.5 over 200 verbs must retry many times, got {r}");
        assert_eq!(t, 0);
        assert!(total > VTime::us(2) * 200);
        assert_eq!(fs.take_faults(0), r);
        assert_eq!(fs.take_faults(0), 0, "take_faults clears");
    }

    #[test]
    fn crash_window_times_out_until_recovery() {
        let plan = FaultPlan::none().with_crash(CrashWindow {
            worker: 1,
            from: VTime::ZERO,
            until: VTime::ms(1),
        });
        let mut fs = FaultState::new(plan, 2);
        fs.begin_step(0, VTime::ZERO);
        let (mut r, mut t) = (0, 0);
        let c = fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t);
        // The verb can only land once the retry clock passes the window end.
        assert!(c >= VTime::ms(1));
        assert!(t >= 1);
        assert_eq!(r, 0);
        // After recovery the same verb is clean again.
        fs.begin_step(0, VTime::ms(2));
        let c2 = fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t);
        assert_eq!(c2, VTime::us(2));
    }

    #[test]
    fn degrade_window_scales_cost() {
        let plan = FaultPlan::none().with_degrade(DegradeWindow {
            worker: 1,
            from: VTime::ZERO,
            until: VTime::ms(1),
            factor: 4.0,
        });
        let mut fs = FaultState::new(plan, 2);
        fs.begin_step(0, VTime::ZERO);
        let (mut r, mut t) = (0, 0);
        assert_eq!(
            fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t),
            VTime::us(8)
        );
        // Outside the window: nominal. Untouched pair: nominal.
        fs.begin_step(0, VTime::ms(5));
        assert_eq!(
            fs.charge_verb(0, 1, VTime::us(2), &mut r, &mut t),
            VTime::us(2)
        );
        assert_eq!((r, t), (0, 0), "degradation slows but never fails verbs");
    }

    #[test]
    fn parse_kill_and_recover() {
        let p = FaultPlan::parse("kill=2@4ms,kill=0@1s,recover=on,hb=10us,lease=80us").unwrap();
        assert_eq!(
            p.kill,
            vec![
                KillEvent { worker: 2, at: VTime::ms(4) },
                KillEvent { worker: 0, at: VTime::secs(1) },
            ]
        );
        assert!(p.recover);
        assert_eq!(p.hb_period, VTime::us(10));
        assert_eq!(p.lease, VTime::us(80));
        assert!(p.is_active());
        assert!(p.recovery_armed());
        assert_eq!(p.killed_at(2), Some(VTime::ms(4)));
        assert_eq!(p.killed_at(1), None);
        // recover=on alone arms the machinery.
        let r = FaultPlan::parse("recover=on").unwrap();
        assert!(r.recovery_armed() && r.is_active() && r.kill.is_empty());
        assert!(FaultPlan::parse("kill=1@").is_err());
        assert!(FaultPlan::parse("kill=@2ms").is_err());
        assert!(FaultPlan::parse("recover=maybe").is_err());
    }

    #[test]
    fn parse_rejects_lease_shorter_than_heartbeat() {
        // A registry that could confirm a live worker dead is rejected with
        // the typed error, not accepted as a silently-unsound plan.
        let err = FaultPlan::parse("kill=1@2ms,hb=50us,lease=20us").unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::LeaseShorterThanHeartbeat {
                lease: VTime::us(20),
                hb: VTime::us(50),
            }
        );
        assert!(err.to_string().contains("lease"), "{err}");
        // Same misconfiguration under recover=on (no kill scheduled).
        assert!(matches!(
            FaultPlan::parse("recover=on,hb=50us,lease=20us"),
            Err(FaultPlanError::LeaseShorterThanHeartbeat { .. })
        ));
        // Equality is fine; so is a short lease when recovery never runs.
        assert!(FaultPlan::parse("kill=1@2ms,hb=20us,lease=20us").is_ok());
        assert!(FaultPlan::parse("hb=50us,lease=20us").is_ok());
    }

    #[test]
    fn parse_rejects_kill_past_horizon() {
        let err = FaultPlan::parse("kill=2@5ms,horizon=4ms").unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::KillPastHorizon {
                worker: 2,
                at: VTime::ms(5),
                horizon: VTime::ms(4),
            }
        );
        assert!(err.to_string().contains("horizon"), "{err}");
        // At the horizon exactly: still never fires (run ends first).
        assert!(FaultPlan::parse("kill=2@4ms,horizon=4ms").is_err());
        // Strictly before: valid, and the horizon round-trips.
        let p = FaultPlan::parse("kill=2@3ms,horizon=4ms").unwrap();
        assert_eq!(p.horizon, Some(VTime::ms(4)));
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        // A horizon with no kills constrains nothing.
        assert!(FaultPlan::parse("horizon=1us,crash=1@2ms..3ms").is_ok());
    }

    #[test]
    fn parse_rejects_duplicate_kill() {
        // Same worker twice: typed error, whatever the times are.
        let err = FaultPlan::parse("kill=2@4ms,kill=2@9ms").unwrap_err();
        assert_eq!(err, FaultPlanError::DuplicateKill { worker: 2 });
        assert!(err.to_string().contains("more than one kill"), "{err}");
        assert!(matches!(
            FaultPlan::parse("kill=1@5us,kill=0@9us,kill=1@5us"),
            Err(FaultPlanError::DuplicateKill { worker: 1 })
        ));
        // Distinct workers still parse.
        assert!(FaultPlan::parse("kill=1@5us,kill=0@9us").is_ok());
        // Programmatic construction trips the same validation.
        let p = FaultPlan::none()
            .with_kill(3, VTime::us(1))
            .with_kill(3, VTime::us(2));
        assert_eq!(
            p.validate(),
            Err(FaultPlanError::DuplicateKill { worker: 3 })
        );
    }

    #[test]
    fn parse_detector_suspect_rejoin() {
        let p = FaultPlan::parse("detector=message,suspect=40us,rejoin=off").unwrap();
        assert_eq!(p.detector, Detector::Message);
        assert_eq!(p.suspect, Some(VTime::us(40)));
        assert!(!p.rejoin);
        assert!(p.suspicion_possible());
        // Message detector alone arms recovery: false suspicion must be
        // survivable even with no kill scheduled.
        assert!(p.recovery_armed() && p.is_active());
        assert_eq!(p.suspect_lease(), VTime::us(40));
        // Defaults: oracle, no suspicion, rejoin on, suspect falls back to
        // the lease.
        let d = FaultPlan::none();
        assert_eq!(d.detector, Detector::Oracle);
        assert!(d.rejoin && !d.suspicion_possible());
        assert_eq!(d.suspect_lease(), d.lease);
        // Round-trip of the new clauses.
        assert_eq!(FaultPlan::parse(&p.to_string()).unwrap(), p);
        assert!(FaultPlan::parse("detector=gossip").is_err());
        assert!(FaultPlan::parse("rejoin=maybe").is_err());
    }

    #[test]
    fn parse_rejects_too_aggressive_suspect_lease() {
        // hb=25us default + 1us flight: suspect below 26us would suspect
        // live workers even loss-free.
        let err = FaultPlan::parse("detector=message,suspect=20us").unwrap_err();
        assert_eq!(
            err,
            FaultPlanError::SuspectLeaseTooShort {
                suspect: VTime::us(20),
                min: HB_PERIOD_DEFAULT + HB_FLIGHT,
            }
        );
        assert!(err.to_string().contains("suspect lease"), "{err}");
        assert!(FaultPlan::parse("detector=message,suspect=26us").is_ok());
        // Under the oracle the suspect lease is inert and unvalidated.
        assert!(FaultPlan::parse("suspect=1ns").is_ok());
    }

    #[test]
    fn message_detector_loss_free_never_suspects_live_workers() {
        let plan = FaultPlan::none()
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        let fs = FaultState::new(plan, 2);
        for t in (0..2_000).map(|k| VTime::us(k)) {
            assert!(!fs.suspected(0, t), "falsely suspected at {t}");
            assert!(!fs.confirmed_dead(0, t));
        }
    }

    #[test]
    fn message_detector_suspects_dead_workers() {
        let plan = FaultPlan::none()
            .with_kill(1, VTime::us(60))
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        let fs = FaultState::new(plan, 2);
        // Last beat emitted at 50us, visible 51us; suspicion holds from
        // 81us on (and forever, since beats never resume).
        assert!(!fs.suspected(1, VTime::us(80)));
        assert!(fs.suspected(1, VTime::us(82)));
        assert!(fs.suspected(1, VTime::ms(50)));
        assert!(fs.confirmed_dead(1, VTime::ms(50)));
    }

    #[test]
    fn degraded_nic_window_causes_false_suspicion() {
        // Worker 1 is alive the whole run, but a 50× degraded NIC inflates
        // its beat flight to 50us > the 30us suspicion lease: the detector
        // falsely suspects it, then clears once beats land again.
        let plan = FaultPlan::none()
            .with_degrade(DegradeWindow {
                worker: 1,
                from: VTime::ZERO,
                until: VTime::us(500),
                factor: 50.0,
            })
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        let fs = FaultState::new(plan, 2);
        // Beat 0 emitted at 0 is visible at 50us; nothing is visible in
        // (5us, 35us] so worker 1 is suspected at 35us...
        assert!(fs.suspected(1, VTime::us(35)));
        // ...but unsuspected once the delayed beats land (50us, 75us, ...).
        assert!(!fs.suspected(1, VTime::us(55)));
        // The undegraded worker 0 is never suspected.
        for t in (0..600).map(|k| VTime::us(k)) {
            assert!(!fs.suspected(0, t));
        }
        // Under the oracle the same plan confirms nobody (ground truth).
        let mut oracle = fs.plan().clone();
        oracle.detector = Detector::Oracle;
        let ofs = FaultState::new(oracle, 2);
        assert!(!ofs.confirmed_dead(1, VTime::us(35)));
    }

    #[test]
    fn beat_drops_are_deterministic() {
        let mut plan = FaultPlan::none()
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(60));
        plan.msg_drop_p = 0.5;
        plan.seed = 9;
        let a = FaultState::new(plan.clone(), 4);
        let b = FaultState::new(plan, 4);
        let mut suspected_somewhere = false;
        for w in 0..4 {
            for t in (0..4_000).map(|k| VTime::us(k)) {
                assert_eq!(a.suspected(w, t), b.suspected(w, t));
                suspected_somewhere |= a.suspected(w, t);
            }
        }
        assert!(
            suspected_somewhere,
            "p=0.5 drops with a 60us lease must falsely suspect somebody"
        );
    }

    #[test]
    fn kill_death_and_lease_semantics() {
        let plan = FaultPlan::none().with_kill(1, VTime::ms(1));
        let lease = plan.lease;
        let fs = FaultState::new(plan, 3);
        assert!(!fs.is_dead(1, VTime::ms(1) - VTime::ns(1)));
        assert!(fs.is_dead(1, VTime::ms(1)));
        assert!(!fs.is_dead(0, VTime::secs(9)), "unkilled workers never die");
        // Lease: confirmation lags death by exactly the lease.
        assert!(!fs.confirmed_dead(1, VTime::ms(1)));
        assert!(!fs.confirmed_dead(1, VTime::ms(1) + lease - VTime::ns(1)));
        assert!(fs.confirmed_dead(1, VTime::ms(1) + lease));
        assert!(!fs.confirmed_dead(0, VTime::secs(9)), "live workers are never confirmed");
    }

    #[test]
    fn heartbeats_fresh_only_while_alive() {
        let plan = FaultPlan::none().with_kill(1, VTime::us(60));
        let period = plan.hb_period; // 25us
        let fs = FaultState::new(plan, 2);
        // Live worker 0: a beat lands strictly after `since` once a period
        // boundary passes.
        assert!(!fs.fresh_since(0, VTime::us(30), VTime::us(40)));
        assert!(fs.fresh_since(0, VTime::us(30), period * 2));
        // Worker 1 dies at 60us: its last beat is at 50us; nothing after.
        assert!(fs.fresh_since(1, VTime::us(30), VTime::ms(5)));
        assert!(!fs.fresh_since(1, VTime::us(50), VTime::ms(5)));
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(256))]

        #[test]
        fn display_parse_round_trip(
            verb_m in 0u64..3,
            drop_m in 0u64..3,
            dup_m in 0u64..3,
            degrade in proptest::collection::vec((0usize..16, 0u64..1_000_000, 1u64..1_000_000), 0..3),
            crash in proptest::collection::vec((0usize..16, 0u64..1_000_000, 1u64..1_000_000), 0..3),
            kill in proptest::collection::vec((0usize..16, 0u64..5_000_000), 0..4),
            recover in proptest::bool::ANY,
            hb_us in 1u64..100,
            lease_extra_us in 0u64..1000,
            default_registry in proptest::bool::ANY,
            with_horizon in proptest::bool::ANY,
            message in proptest::bool::ANY,
            suspect_extra_us in 0u64..500,
            rejoin in proptest::bool::ANY,
        ) {
            let mut p = FaultPlan::none();
            p.verb_fail_p = verb_m as f64 * 0.005;
            p.msg_drop_p = drop_m as f64 * 0.01;
            p.msg_dup_p = dup_m as f64 * 0.0025;
            for (w, from, len) in degrade {
                p.degrade.push(DegradeWindow {
                    worker: w,
                    from: VTime::ns(from),
                    until: VTime::ns(from + len),
                    factor: 2.0,
                });
            }
            for (w, from, len) in crash {
                p.crash.push(CrashWindow { worker: w, from: VTime::ns(from), until: VTime::ns(from + len) });
            }
            for (w, at) in kill {
                // At most one kill per worker (DuplicateKill is validated).
                if p.kill.iter().all(|k| k.worker != w) {
                    p.kill.push(KillEvent { worker: w, at: VTime::ns(at) });
                }
            }
            p.recover = recover;
            if !default_registry {
                // A valid registry needs lease ≥ hb (validated at parse), so
                // generate the lease as heartbeat-plus-slack.
                p.hb_period = VTime::us(hb_us);
                p.lease = VTime::us(hb_us + lease_extra_us);
            }
            if message {
                p.detector = Detector::Message;
                // The suspicion lease must cover a beat period plus flight.
                p.suspect = Some(p.hb_period + HB_FLIGHT + VTime::us(suspect_extra_us));
            }
            p.rejoin = rejoin;
            if with_horizon {
                // The horizon must lie strictly past every kill to be valid.
                let last = p.kill.iter().map(|k| k.at).max().unwrap_or(VTime::ZERO);
                p.horizon = Some(last + VTime::ns(1));
            }
            let printed = p.to_string();
            let back = FaultPlan::parse(&printed)
                .unwrap_or_else(|e| panic!("`{printed}` failed to re-parse: {e}"));
            prop_assert_eq!(back, p, "round-trip through `{}`", printed);
        }
    }

    /// A consumer that re-examines only fed candidates must observe every
    /// status transition a brute-force all-worker scan would, at the same
    /// poll instants.
    fn assert_feed_covers_brute_force(plan: FaultPlan, workers: usize, horizon_us: u64) {
        let mut fs = FaultState::new(plan, workers);
        let mut cursor = 0usize;
        let mut latched = vec![false; workers];
        let mut out = Vec::new();
        for t in (0..horizon_us).map(VTime::us) {
            out.clear();
            fs.death_candidates(&mut cursor, t, &mut out);
            for w in 0..workers {
                let now_dead = fs.confirmed_dead(w, t);
                if now_dead != latched[w] {
                    assert!(
                        out.contains(&w),
                        "feed missed worker {w}'s transition to {now_dead} at {t}"
                    );
                    latched[w] = now_dead;
                }
            }
        }
    }

    #[test]
    fn death_feed_covers_oracle_transitions() {
        let plan = FaultPlan::none()
            .with_kill(1, VTime::us(60))
            .with_kill(5, VTime::us(300))
            .with_kill(0, VTime::us(301));
        assert_feed_covers_brute_force(plan, 8, 1_000);
    }

    #[test]
    fn death_feed_covers_message_detector_transitions() {
        // Loss-free: candidates are exactly the killed + degraded workers.
        let plan = FaultPlan::none()
            .with_kill(1, VTime::us(60))
            .with_degrade(DegradeWindow {
                worker: 2,
                from: VTime::us(100),
                until: VTime::us(400),
                factor: 50.0,
            })
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        assert_feed_covers_brute_force(plan, 4, 1_000);
        // Lossy: every worker is a candidate; drops carve suspicion
        // intervals out of live workers' beat streams.
        let mut lossy = FaultPlan::none()
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        lossy.msg_drop_p = 0.5;
        lossy.seed = 9;
        assert_feed_covers_brute_force(lossy, 4, 2_000);
    }

    #[test]
    fn death_feed_is_silent_for_steady_workers() {
        // Oracle, one kill: the feed names only the killed worker, once.
        let plan = FaultPlan::none().with_kill(1, VTime::us(60));
        let mut fs = FaultState::new(plan, 8);
        let (mut cursor, mut out) = (0usize, Vec::new());
        fs.death_candidates(&mut cursor, VTime::secs(1), &mut out);
        assert_eq!(out, vec![1]);
        // A transient-only plan (no recovery armed) feeds nothing at all.
        let mut fs = FaultState::new(FaultPlan::transient(0.1, 3), 8);
        let (mut cursor, mut out) = (0usize, Vec::new());
        fs.death_candidates(&mut cursor, VTime::secs(1), &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn death_feed_is_poll_granularity_independent() {
        // The feed is a pure function of the plan: polling every 1us and
        // polling once at the horizon must generate identical events.
        let mut plan = FaultPlan::none()
            .with_kill(1, VTime::us(777))
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(30));
        plan.msg_drop_p = 0.4;
        plan.seed = 12;
        let horizon = VTime::us(3_000);
        let mut fine = FaultState::new(plan.clone(), 3);
        let (mut cursor, mut sink) = (0usize, Vec::new());
        for t in (0..3_000).map(VTime::us) {
            fine.death_candidates(&mut cursor, t, &mut sink);
        }
        let mut coarse = FaultState::new(plan, 3);
        let (mut cursor2, mut sink2) = (0usize, Vec::new());
        coarse.death_candidates(&mut cursor2, horizon, &mut sink2);
        let upto = |fs: &FaultState| -> Vec<(VTime, WorkerId)> {
            fs.watch
                .events
                .iter()
                .copied()
                .take_while(|&(t, _)| t <= horizon)
                .collect()
        };
        assert_eq!(upto(&fine), upto(&coarse));
        assert!(!sink2.is_empty(), "drops at p=0.4 must produce suspicions");
    }

    #[test]
    fn msg_fates_deterministic_and_distributed() {
        let mut plan = FaultPlan::none();
        plan.msg_drop_p = 0.3;
        plan.msg_dup_p = 0.3;
        plan.seed = 7;
        let mut a = FaultState::new(plan.clone(), 1);
        let mut b = FaultState::new(plan, 1);
        let fates_a: Vec<_> = (0..100).map(|_| a.msg_fate(0, true)).collect();
        let fates_b: Vec<_> = (0..100).map(|_| b.msg_fate(0, true)).collect();
        assert_eq!(fates_a, fates_b);
        assert!(fates_a.contains(&MsgFate::Drop));
        assert!(fates_a.contains(&MsgFate::Duplicate));
        assert!(fates_a.contains(&MsgFate::Deliver));
        // Non-droppable messages are never dropped.
        assert!((0..200).all(|_| a.msg_fate(0, false) != MsgFate::Drop));
    }
}
