//! Latency and machine models.
//!
//! [`LatencyModel`] assigns a virtual-time cost to every class of simulated
//! operation. [`MachineProfile`] bundles a latency model with a compute-speed
//! scale so that applications can express compute kernels in "ITO-A time" and
//! have them automatically slowed down on the A64FX-like profile.
//!
//! The presets in [`profiles`] are calibrated so that the *composite*
//! operation costs land near the paper's measurements (Table II):
//!
//! * a successful child steal (queue lock CAS + metadata get + 56 B descriptor
//!   get + unlock put) ≈ 20–30 µs,
//! * a successful continuation steal additionally moves a 1–2 KB call stack,
//!   adding < 20% latency,
//! * an RDMA atomic (fetch-and-add) round trip is slightly costlier than a
//!   small get.

use crate::time::VTime;

/// Virtual-time cost of each simulated operation class.
///
/// All values are nanoseconds except `bytes_per_ns` (effective small-message
/// bandwidth used to charge bulk payloads on top of the base latency).
#[derive(Clone, Debug, PartialEq)]
pub struct LatencyModel {
    /// A purely local operation (deque push/pop, local flag check, allocator
    /// touch). Mirrors a handful of cache accesses.
    pub local_op: u64,
    /// CPU-side cost of injecting any one-sided verb (descriptor setup,
    /// doorbell). Paid even for non-blocking puts.
    pub injection: u64,
    /// Round-trip latency of a small (≤ 8 B) RDMA read.
    pub rdma_get: u64,
    /// Round-trip latency of a small RDMA write (the issuer waits for the
    /// completion; see [`crate::machine::Machine::post_put_u64_unsignaled`] for the
    /// fire-and-forget variant that only costs `injection`).
    pub rdma_put: u64,
    /// Round-trip latency of an RDMA atomic (fetch-and-add / CAS).
    pub rdma_amo: u64,
    /// Effective bandwidth for bulk payloads, bytes per nanosecond. Charged as
    /// `len / bytes_per_ns` *on top of* the base get/put latency. Deliberately
    /// set to the small-message effective bandwidth (far below line rate)
    /// because stolen stacks are 1–2 KB.
    pub bytes_per_ns: f64,
    /// Cost of a full user-level context switch (saving/restoring a
    /// suspended thread, starting a fully-fledged thread on a fresh stack).
    pub ctx_switch: u64,
    /// Cost of resuming a continuation whose stack is already resident in
    /// the uni-address region (popping the parent at DIE, taking a deque
    /// continuation): close to a subroutine return.
    pub ctx_restore: u64,
    /// One-way latency of a two-sided (active message) send. Used only by the
    /// message-based baselines (Charm++/X10-style stealing in `dcs-bot`).
    pub message: u64,
    /// CPU cost, at the receiver, of handling one two-sided message
    /// (progress-engine interruption — the cost RDMA designs avoid).
    pub msg_handler: u64,
}

impl LatencyModel {
    /// Cost of a small one-sided read.
    #[inline]
    pub fn get_small(&self) -> VTime {
        VTime::ns(self.injection + self.rdma_get)
    }

    /// Cost of a blocking small one-sided write.
    #[inline]
    pub fn put_small(&self) -> VTime {
        VTime::ns(self.injection + self.rdma_put)
    }

    /// Cost of a non-blocking small write (issuer does not wait).
    #[inline]
    pub fn put_nb(&self) -> VTime {
        VTime::ns(self.injection)
    }

    /// Cost of a one-sided atomic.
    #[inline]
    pub fn amo(&self) -> VTime {
        VTime::ns(self.injection + self.rdma_amo)
    }

    /// Payload term for a bulk transfer of `len` bytes.
    #[inline]
    pub fn payload(&self, len: usize) -> VTime {
        VTime::ns((len as f64 / self.bytes_per_ns).round() as u64)
    }

    /// Cost of a bulk one-sided read of `len` bytes.
    #[inline]
    pub fn get_bulk(&self, len: usize) -> VTime {
        self.get_small() + self.payload(len)
    }

    /// Cost of a bulk one-sided write of `len` bytes.
    #[inline]
    pub fn put_bulk(&self, len: usize) -> VTime {
        self.put_small() + self.payload(len)
    }

    #[inline]
    pub fn local(&self) -> VTime {
        VTime::ns(self.local_op)
    }

    #[inline]
    pub fn ctx_switch(&self) -> VTime {
        VTime::ns(self.ctx_switch)
    }

    #[inline]
    pub fn ctx_restore(&self) -> VTime {
        VTime::ns(self.ctx_restore)
    }
}

/// A named machine configuration: latency model + compute scaling.
#[derive(Clone, Debug, PartialEq)]
pub struct MachineProfile {
    pub name: &'static str,
    pub latency: LatencyModel,
    /// Multiplier applied by applications to compute-kernel durations.
    /// 1.0 on the Xeon-like profile; > 1 on the slower A64FX-like profile.
    pub compute_scale: f64,
}

impl MachineProfile {
    /// Scale an application compute duration for this machine.
    #[inline]
    pub fn compute(&self, base: VTime) -> VTime {
        base.scale(self.compute_scale)
    }
}

/// Calibrated machine presets.
pub mod profiles {
    use super::{LatencyModel, MachineProfile};

    /// ITO-A-like: Intel Xeon Gold 6154 (3.0 GHz) + InfiniBand EDR 4x,
    /// Open MPI 5 / UCX one-sided backend.
    ///
    /// Composite costs with this model: child steal ≈ 26 µs, continuation
    /// steal ≈ 30 µs with a 1.8 KB stack (paper: 27.7 µs / 31.6 µs).
    pub fn itoa() -> MachineProfile {
        MachineProfile {
            name: "ITO-A",
            latency: LatencyModel {
                local_op: 10,
                injection: 300,
                rdma_get: 5_200,
                rdma_put: 5_000,
                rdma_amo: 6_000,
                bytes_per_ns: 0.45,
                ctx_switch: 350,
                ctx_restore: 30,
                message: 7_000,
                msg_handler: 2_500,
            },
            compute_scale: 1.0,
        }
    }

    /// Wisteria-O-like: Fujitsu A64FX (2.2 GHz) + Tofu Interconnect-D.
    /// Lower network latency than ITO-A (paper Table II: ~20 µs steals vs.
    /// ~28 µs) but slower cores (serial UTS 1.55 vs. 5.27 Mnodes/s, LCS leaf
    /// 0.872 vs. 0.340 ms ⇒ compute_scale ≈ 2.56) and costlier context
    /// switches (§V-B: "Full threads incur larger overheads on WISTERIA-O
    /// because of their relatively large context switching costs").
    pub fn wisteria() -> MachineProfile {
        MachineProfile {
            name: "Wisteria-O",
            latency: LatencyModel {
                local_op: 18,
                injection: 250,
                rdma_get: 3_600,
                rdma_put: 3_400,
                rdma_amo: 4_200,
                bytes_per_ns: 0.40,
                ctx_switch: 1_400,
                ctx_restore: 100,
                message: 5_200,
                msg_handler: 3_500,
            },
            compute_scale: 2.56,
        }
    }

    /// A zero-latency model for unit tests: all operations cost 1 ns so that
    /// schedules still interleave deterministically but tests run fast and
    /// timing asserts stay trivial.
    pub fn test_profile() -> MachineProfile {
        MachineProfile {
            name: "test",
            latency: LatencyModel {
                local_op: 1,
                injection: 1,
                rdma_get: 1,
                rdma_put: 1,
                rdma_amo: 1,
                bytes_per_ns: 1024.0,
                ctx_switch: 1,
                ctx_restore: 1,
                message: 1,
                msg_handler: 1,
            },
            compute_scale: 1.0,
        }
    }

    /// All known profiles by name (used by benchmark binaries' CLI).
    pub fn by_name(name: &str) -> Option<MachineProfile> {
        match name {
            "itoa" | "ito-a" | "ITO-A" => Some(itoa()),
            "wisteria" | "wisteria-o" | "Wisteria-O" => Some(wisteria()),
            "test" => Some(test_profile()),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composite_steal_costs_match_paper_shape() {
        let m = profiles::itoa();
        let l = &m.latency;
        // Child steal: lock CAS + bounds get + descriptor get + unlock put.
        let child = l.amo() + l.get_small() + l.get_bulk(56) + l.put_nb();
        // Continuation steal: same protocol + 1.8 KB stack payload + entry update.
        let cont = l.amo() + l.get_small() + l.get_bulk(1800) + l.put_nb();
        let child_us = child.as_us_f64();
        let cont_us = cont.as_us_f64();
        assert!(
            (15.0..40.0).contains(&child_us),
            "child steal {child_us} µs out of calibration window"
        );
        // Paper: continuation steal latency < 20% above child steal.
        let overhead = cont_us / child_us - 1.0;
        assert!(
            overhead > 0.02 && overhead < 0.35,
            "cont-steal overhead {overhead} not in plausible band"
        );
    }

    #[test]
    fn wisteria_is_lower_latency_but_slower_compute() {
        let a = profiles::itoa();
        let w = profiles::wisteria();
        assert!(w.latency.rdma_get < a.latency.rdma_get);
        assert!(w.compute_scale > a.compute_scale);
        assert!(w.latency.ctx_switch > a.latency.ctx_switch);
    }

    #[test]
    fn payload_costs_scale_with_length() {
        let l = profiles::itoa().latency;
        assert!(l.get_bulk(2048) > l.get_bulk(56));
        assert_eq!(l.payload(0), VTime::ZERO);
    }

    #[test]
    fn profile_lookup() {
        assert_eq!(profiles::by_name("itoa").unwrap().name, "ITO-A");
        assert_eq!(profiles::by_name("wisteria").unwrap().name, "Wisteria-O");
        assert!(profiles::by_name("nonexistent").is_none());
    }

    use crate::time::VTime;

    #[test]
    fn compute_scaling() {
        let w = profiles::wisteria();
        assert_eq!(w.compute(VTime::us(100)), VTime::ns(256_000));
    }
}
