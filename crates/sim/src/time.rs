//! Virtual time.
//!
//! All simulated durations and timestamps are nanoseconds held in a [`VTime`]
//! newtype. Virtual time is completely decoupled from host wall-clock time:
//! a worker's clock advances only when the worker performs a simulated action
//! (a fabric verb, a local queue operation, a context switch, or `compute(M)`).

use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in (or span of) virtual time, in nanoseconds.
///
/// `u64` nanoseconds cover ~584 years of simulated time, far beyond any run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VTime(pub u64);

impl VTime {
    pub const ZERO: VTime = VTime(0);
    /// Largest representable time; used as the key for halted workers.
    pub const MAX: VTime = VTime(u64::MAX);

    #[inline]
    pub const fn ns(n: u64) -> VTime {
        VTime(n)
    }

    #[inline]
    pub const fn us(n: u64) -> VTime {
        VTime(n * 1_000)
    }

    #[inline]
    pub const fn ms(n: u64) -> VTime {
        VTime(n * 1_000_000)
    }

    #[inline]
    pub const fn secs(n: u64) -> VTime {
        VTime(n * 1_000_000_000)
    }

    /// Construct from a (non-negative) floating-point microsecond count.
    #[inline]
    pub fn from_us_f64(us: f64) -> VTime {
        debug_assert!(us >= 0.0);
        VTime((us * 1_000.0).round() as u64)
    }

    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / 1_000.0
    }

    #[inline]
    pub fn as_ms_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    #[inline]
    pub fn saturating_sub(self, rhs: VTime) -> VTime {
        VTime(self.0.saturating_sub(rhs.0))
    }

    /// Scale a duration by a dimensionless factor (used for per-machine
    /// compute-speed scaling).
    #[inline]
    pub fn scale(self, factor: f64) -> VTime {
        debug_assert!(factor >= 0.0);
        VTime((self.0 as f64 * factor).round() as u64)
    }

    #[inline]
    pub fn max(self, rhs: VTime) -> VTime {
        VTime(self.0.max(rhs.0))
    }

    #[inline]
    pub fn min(self, rhs: VTime) -> VTime {
        VTime(self.0.min(rhs.0))
    }
}

impl Add for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VTime) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VTime) {
        self.0 += rhs.0;
    }
}

impl Sub for VTime {
    type Output = VTime;
    #[inline]
    fn sub(self, rhs: VTime) -> VTime {
        debug_assert!(self.0 >= rhs.0, "VTime underflow: {} - {}", self.0, rhs.0);
        VTime(self.0 - rhs.0)
    }
}

impl SubAssign for VTime {
    #[inline]
    fn sub_assign(&mut self, rhs: VTime) {
        *self = *self - rhs;
    }
}

impl Mul<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn mul(self, rhs: u64) -> VTime {
        VTime(self.0 * rhs)
    }
}

impl Div<u64> for VTime {
    type Output = VTime;
    #[inline]
    fn div(self, rhs: u64) -> VTime {
        VTime(self.0 / rhs)
    }
}

impl Sum for VTime {
    fn sum<I: Iterator<Item = VTime>>(iter: I) -> VTime {
        VTime(iter.map(|t| t.0).sum())
    }
}

impl fmt::Debug for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self)
    }
}

impl fmt::Display for VTime {
    /// Human-scaled rendering: picks ns/µs/ms/s by magnitude.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let n = self.0;
        if n < 10_000 {
            write!(f, "{n}ns")
        } else if n < 10_000_000 {
            write!(f, "{:.2}us", self.as_us_f64())
        } else if n < 10_000_000_000 {
            write!(f, "{:.2}ms", self.as_ms_f64())
        } else {
            write!(f, "{:.3}s", self.as_secs_f64())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors_scale_correctly() {
        assert_eq!(VTime::us(3).as_ns(), 3_000);
        assert_eq!(VTime::ms(2).as_ns(), 2_000_000);
        assert_eq!(VTime::secs(1).as_ns(), 1_000_000_000);
        assert_eq!(VTime::from_us_f64(1.5).as_ns(), 1_500);
    }

    #[test]
    fn arithmetic() {
        let a = VTime::us(10);
        let b = VTime::us(4);
        assert_eq!((a + b).as_ns(), 14_000);
        assert_eq!((a - b).as_ns(), 6_000);
        assert_eq!((a * 3).as_ns(), 30_000);
        assert_eq!((a / 2).as_ns(), 5_000);
        assert_eq!(b.saturating_sub(a), VTime::ZERO);
    }

    #[test]
    fn scaling_rounds() {
        assert_eq!(VTime::ns(100).scale(2.56).as_ns(), 256);
        assert_eq!(VTime::ns(3).scale(0.5).as_ns(), 2); // 1.5 rounds to 2
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(VTime::ns(12).to_string(), "12ns");
        assert_eq!(VTime::us(123).to_string(), "123.00us");
        assert_eq!(VTime::ms(123).to_string(), "123.00ms");
        assert_eq!(VTime::secs(12).to_string(), "12.000s");
    }

    #[test]
    fn sum_and_ordering() {
        let total: VTime = [VTime::us(1), VTime::us(2)].into_iter().sum();
        assert_eq!(total, VTime::us(3));
        assert!(VTime::us(1) < VTime::us(2));
        assert_eq!(VTime::us(1).max(VTime::us(2)), VTime::us(2));
        assert_eq!(VTime::us(1).min(VTime::us(2)), VTime::us(1));
    }
}
