//! # dcs-sim — a deterministic simulator of an RDMA-connected cluster
//!
//! This crate provides the machine substrate that the distributed
//! continuation-stealing runtime (`dcs-core`) runs on. The paper evaluated on
//! two real supercomputers (ITO-A: Xeon + InfiniBand EDR, Wisteria-O: A64FX +
//! Tofu-D) with MPI-3 RMA as the one-sided communication layer. Reproducing
//! that requires a cluster; instead we model the *performance-relevant*
//! behaviour exactly:
//!
//! * every worker is a simulated **process** with its own pinned memory
//!   [`Segment`] — a worker can touch remote memory *only* through one-sided
//!   verbs, which are *posted* ([`Machine::post_get_u64`],
//!   [`Machine::post_put_u64`], [`Machine::post_fetch_add_u64`],
//!   [`Machine::post_cas_u64`], bulk [`Machine::post_get_bulk`] /
//!   [`Machine::post_put_bulk`]) and reaped from a per-worker completion
//!   queue ([`Machine::wait`] / [`Machine::poll_cq`] / [`Machine::fence`]),
//!   exactly like `ibv_post_send` / `ibv_poll_cq`; the blocking forms
//!   ([`Machine::get_u64`] etc.) are `post + wait` wrappers,
//! * each verb charges a calibrated latency ([`LatencyModel`], with presets for
//!   both machines in [`profiles`]) to the issuing worker's **virtual clock**
//!   and updates per-worker operation/byte counters ([`FabricStats`]),
//! * a discrete-event [`Engine`] runs worker [`Actor`]s strictly in
//!   smallest-virtual-clock-first order, which makes every simulation
//!   **deterministic** given a seed.
//!
//! Atomicity model: the memory effect of a verb is applied at issue time and
//! the round-trip latency is charged to the issuer. Races between workers
//! therefore resolve within one latency window of real hardware — the same
//! nondeterminism envelope physical RDMA has — while every individual
//! operation stays linearizable.

pub mod engine;
pub mod fault;
pub mod latency;
pub mod machine;
pub mod mailbox;
pub mod mem;
pub mod rng;
pub mod time;
pub mod topology;

pub use engine::{Actor, Engine, EventQueue, ScheduleHook, Step};
pub use fault::{CrashWindow, DegradeWindow, Detector, FaultPlan, KillEvent, MsgFate};
pub use latency::{profiles, LatencyModel, MachineProfile};
pub use machine::{Completion, FabricMode, FabricStats, Machine, MachineConfig, VerbHandle};
pub use mailbox::Mailbox;
pub use mem::{GlobalAddr, SegAlloc, Segment, PAGE_BYTES, WORD};
pub use rng::SimRng;
pub use time::VTime;
pub use topology::Topology;

/// Identifier of a worker (= simulated process = node rank in the paper's
/// one-worker-per-core deployment).
pub type WorkerId = usize;
