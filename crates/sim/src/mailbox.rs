//! Two-sided (message-based) communication for the baseline runtimes.
//!
//! The paper attributes the poor scaling of Charm++ and X10/GLB on UTS to
//! their *two-sided* steal protocols: a steal interrupts the victim, which
//! must poll for and handle the request. [`Mailbox`] models exactly that: a
//! per-worker delivery queue where a message becomes visible only after its
//! delivery timestamp, and handling it costs receiver CPU time (charged by
//! the caller via [`crate::Machine::message_handled`]).

use std::collections::VecDeque;

use crate::time::VTime;
use crate::WorkerId;

/// Per-worker in-order delivery queues for messages of type `M`.
pub struct Mailbox<M> {
    queues: Vec<VecDeque<(VTime, WorkerId, M)>>,
}

impl<M> Mailbox<M> {
    pub fn new(workers: usize) -> Mailbox<M> {
        Mailbox {
            // Unallocated until a worker actually receives a message: an
            // empty VecDeque holds no heap buffer, so a 100k-worker mailbox
            // costs per-queue headers only. A VecDeque never shrinks, so
            // after warm-up each active queue is allocation-free anyway.
            queues: (0..workers).map(|_| VecDeque::new()).collect(),
        }
    }

    /// Deposit a message for `to`, visible at `deliver_at`
    /// (= sender clock + one-way message latency).
    pub fn send(&mut self, from: WorkerId, to: WorkerId, deliver_at: VTime, msg: M) {
        let q = &mut self.queues[to];
        // Keep the queue sorted by delivery time. Messages from one sender
        // are already in order; cross-sender interleavings need the insert
        // scan, which is almost always O(1) from the back.
        let pos = q
            .iter()
            .rposition(|&(t, _, _)| t <= deliver_at)
            .map_or(0, |p| p + 1);
        q.insert(pos, (deliver_at, from, msg));
    }

    /// Pop the next message already delivered by `now`, if any.
    pub fn recv(&mut self, me: WorkerId, now: VTime) -> Option<(WorkerId, M)> {
        let q = &mut self.queues[me];
        if q.front().is_some_and(|&(t, _, _)| t <= now) {
            let (_, from, msg) = q.pop_front().expect("checked front");
            Some((from, msg))
        } else {
            None
        }
    }

    /// Earliest pending delivery time for `me` (delivered or not).
    pub fn next_delivery(&self, me: WorkerId) -> Option<VTime> {
        self.queues[me].front().map(|&(t, _, _)| t)
    }

    /// Number of messages (delivered or in flight) queued for `me`.
    pub fn pending(&self, me: WorkerId) -> usize {
        self.queues[me].len()
    }

    /// True when no message is queued anywhere (used by termination checks in
    /// tests).
    pub fn is_empty(&self) -> bool {
        self.queues.iter().all(|q| q.is_empty())
    }
}

impl<M: Clone> Mailbox<M> {
    /// Deposit a message subject to a fabric-decided [`MsgFate`]: deliver
    /// once, drop it (the sender already paid the injection cost), or
    /// deliver twice with the duplicate arriving at `redeliver_at` (models a
    /// spurious NIC-level retransmit).
    pub fn send_with_fate(
        &mut self,
        from: WorkerId,
        to: WorkerId,
        deliver_at: VTime,
        redeliver_at: VTime,
        fate: crate::fault::MsgFate,
        msg: M,
    ) {
        use crate::fault::MsgFate;
        match fate {
            MsgFate::Drop => {}
            MsgFate::Deliver => self.send(from, to, deliver_at, msg),
            MsgFate::Duplicate => {
                self.send(from, to, deliver_at, msg.clone());
                self.send(from, to, redeliver_at.max(deliver_at), msg);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_time() {
        let mut mb: Mailbox<&str> = Mailbox::new(2);
        mb.send(0, 1, VTime::ns(100), "hello");
        assert_eq!(mb.recv(1, VTime::ns(50)), None);
        assert_eq!(mb.recv(1, VTime::ns(100)), Some((0, "hello")));
        assert_eq!(mb.recv(1, VTime::ns(200)), None);
    }

    #[test]
    fn messages_sorted_by_delivery() {
        let mut mb: Mailbox<u32> = Mailbox::new(2);
        mb.send(0, 1, VTime::ns(300), 3);
        mb.send(0, 1, VTime::ns(100), 1);
        mb.send(0, 1, VTime::ns(200), 2);
        let now = VTime::ns(1000);
        assert_eq!(mb.recv(1, now), Some((0, 1)));
        assert_eq!(mb.recv(1, now), Some((0, 2)));
        assert_eq!(mb.recv(1, now), Some((0, 3)));
    }

    #[test]
    fn ties_preserve_insertion_order() {
        let mut mb: Mailbox<u32> = Mailbox::new(1);
        mb.send(0, 0, VTime::ns(5), 1);
        mb.send(0, 0, VTime::ns(5), 2);
        let now = VTime::ns(5);
        assert_eq!(mb.recv(0, now).unwrap().1, 1);
        assert_eq!(mb.recv(0, now).unwrap().1, 2);
    }

    #[test]
    fn fates_drop_deliver_duplicate() {
        use crate::fault::MsgFate;
        let mut mb: Mailbox<u32> = Mailbox::new(2);
        mb.send_with_fate(0, 1, VTime::ns(10), VTime::ns(20), MsgFate::Drop, 1);
        assert!(mb.is_empty());
        mb.send_with_fate(0, 1, VTime::ns(10), VTime::ns(20), MsgFate::Deliver, 2);
        assert_eq!(mb.pending(1), 1);
        mb.send_with_fate(0, 1, VTime::ns(30), VTime::ns(40), MsgFate::Duplicate, 3);
        assert_eq!(mb.pending(1), 3);
        let now = VTime::ns(100);
        assert_eq!(mb.recv(1, now), Some((0, 2)));
        assert_eq!(mb.recv(1, now), Some((0, 3)));
        assert_eq!(mb.recv(1, now), Some((0, 3)), "duplicate arrives later");
    }

    #[test]
    fn bookkeeping() {
        let mut mb: Mailbox<()> = Mailbox::new(2);
        assert!(mb.is_empty());
        mb.send(1, 0, VTime::ns(7), ());
        assert_eq!(mb.pending(0), 1);
        assert_eq!(mb.next_delivery(0), Some(VTime::ns(7)));
        assert_eq!(mb.next_delivery(1), None);
        assert!(!mb.is_empty());
        mb.recv(0, VTime::ns(7));
        assert!(mb.is_empty());
    }
}
