//! Network topology models.
//!
//! The paper evaluates on flat random victim selection and notes
//! (§VI) that topology-aware stealing "could be used in conjunction with
//! RDMA-based work stealing; their benefits have not been well studied in
//! the context of RDMA, which is our future interest". This module provides
//! that study's substrate: a distance model that scales the *network* part
//! of every remote verb by the position of the two endpoints.
//!
//! * [`Topology::Flat`] — uniform distance (the paper's setting).
//! * [`Topology::Hierarchical`] — workers grouped into nodes of `node_size`
//!   cores (ITO-A: 36); intra-node one-sided operations are substantially
//!   faster than inter-node ones (shared-memory window vs. NIC round trip).
//! * [`Topology::Mesh3d`] — a Tofu-D-like 3-D mesh of nodes with per-hop
//!   latency, using the same close-to-cubic allocation the paper requested
//!   on Wisteria-O ("we specified a 3D mesh topology as close to a cube as
//!   possible").

use crate::WorkerId;

/// Distance model between workers.
#[derive(Clone, Debug, PartialEq)]
pub enum Topology {
    /// Every remote pair is equidistant (factor 1.0).
    Flat,
    /// `node_size` workers per node; intra-node remote ops run at
    /// `intra_factor` (< 1) of the base latency, inter-node at 1.0.
    Hierarchical { node_size: usize, intra_factor: f64 },
    /// Nodes of `node_size` workers arranged in an `x × y × z` mesh;
    /// latency scales with Manhattan hop count: `1 + hop_factor·(hops − 1)`
    /// for inter-node pairs, `intra_factor` within a node. With `torus`,
    /// each dimension wraps around (Wisteria-O's Tofu-D is a 6-D *torus*,
    /// not an open mesh): the per-dimension hop count is
    /// `min(|Δ|, dim − |Δ|)`.
    Mesh3d {
        node_size: usize,
        dims: (usize, usize, usize),
        intra_factor: f64,
        hop_factor: f64,
        torus: bool,
    },
}

impl Topology {
    /// A cube-ish mesh for `workers` total workers with `node_size` per
    /// node (mirrors the paper's allocation request on Wisteria-O).
    pub fn cubish_mesh(workers: usize, node_size: usize) -> Topology {
        let nodes = workers.div_ceil(node_size).max(1);
        let side = (nodes as f64).cbrt().ceil() as usize;
        let x = side.max(1);
        let y = ((nodes as f64 / x as f64).sqrt().ceil() as usize).max(1);
        let z = nodes.div_ceil(x * y).max(1);
        Topology::Mesh3d {
            node_size,
            dims: (x, y, z),
            intra_factor: 0.3,
            hop_factor: 0.08,
            torus: false,
        }
    }

    /// [`Self::cubish_mesh`] with torus wraparound in every dimension —
    /// the Tofu-D-faithful variant used by the worker-scaling sweeps.
    pub fn cubish_torus(workers: usize, node_size: usize) -> Topology {
        match Self::cubish_mesh(workers, node_size) {
            Topology::Mesh3d {
                node_size,
                dims,
                intra_factor,
                hop_factor,
                ..
            } => Topology::Mesh3d {
                node_size,
                dims,
                intra_factor,
                hop_factor,
                torus: true,
            },
            other => other,
        }
    }

    /// Node index of a worker.
    pub fn node_of(&self, w: WorkerId) -> usize {
        match *self {
            Topology::Flat => 0,
            Topology::Hierarchical { node_size, .. } | Topology::Mesh3d { node_size, .. } => {
                w / node_size
            }
        }
    }

    /// Number of workers per node (1 for flat: every worker its own node
    /// from a locality perspective is wrong — flat means no locality, so we
    /// report the whole machine as one node).
    pub fn node_size(&self) -> Option<usize> {
        match *self {
            Topology::Flat => None,
            Topology::Hierarchical { node_size, .. } | Topology::Mesh3d { node_size, .. } => {
                Some(node_size)
            }
        }
    }

    fn mesh_coords(idx: usize, dims: (usize, usize, usize)) -> (usize, usize, usize) {
        let (x, y, _) = dims;
        (idx % x, (idx / x) % y, idx / (x * y))
    }

    /// Latency scale factor for a remote operation from `a` to `b`.
    /// Local (same-worker) operations never consult this.
    pub fn factor(&self, a: WorkerId, b: WorkerId) -> f64 {
        debug_assert_ne!(a, b, "factor is for remote pairs");
        match *self {
            Topology::Flat => 1.0,
            Topology::Hierarchical {
                node_size,
                intra_factor,
            } => {
                if a / node_size == b / node_size {
                    intra_factor
                } else {
                    1.0
                }
            }
            Topology::Mesh3d {
                node_size,
                dims,
                intra_factor,
                hop_factor,
                torus,
            } => {
                let (na, nb) = (a / node_size, b / node_size);
                if na == nb {
                    return intra_factor;
                }
                let ca = Self::mesh_coords(na, dims);
                let cb = Self::mesh_coords(nb, dims);
                let axis = |d: usize, len: usize| {
                    if torus {
                        d.min(len - d)
                    } else {
                        d
                    }
                };
                let hops = axis(ca.0.abs_diff(cb.0), dims.0)
                    + axis(ca.1.abs_diff(cb.1), dims.1)
                    + axis(ca.2.abs_diff(cb.2), dims.2);
                1.0 + hop_factor * hops.saturating_sub(1) as f64
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_is_uniform() {
        let t = Topology::Flat;
        assert_eq!(t.factor(0, 5), 1.0);
        assert_eq!(t.factor(7, 1), 1.0);
        assert_eq!(t.node_size(), None);
    }

    #[test]
    fn hierarchical_discounts_intra_node() {
        let t = Topology::Hierarchical {
            node_size: 4,
            intra_factor: 0.3,
        };
        assert_eq!(t.factor(0, 3), 0.3); // same node (0..4)
        assert_eq!(t.factor(0, 4), 1.0); // next node
        assert_eq!(t.node_of(5), 1);
        assert_eq!(t.node_size(), Some(4));
    }

    #[test]
    fn mesh_distance_grows_with_hops() {
        let t = Topology::Mesh3d {
            node_size: 2,
            dims: (3, 3, 3),
            intra_factor: 0.3,
            hop_factor: 0.1,
            torus: false,
        };
        // Workers 0,1 on node 0 at (0,0,0); workers 4,5 on node 2 at (2,0,0).
        assert_eq!(t.factor(0, 1), 0.3);
        // node 1 at (1,0,0): 1 hop → factor 1.0.
        assert_eq!(t.factor(0, 2), 1.0);
        // node 2 at (2,0,0): 2 hops → 1.1.
        assert!((t.factor(0, 4) - 1.1).abs() < 1e-9);
        // Far corner node 26 at (2,2,2): 6 hops → 1.5.
        assert!((t.factor(0, 53) - 1.5).abs() < 1e-9);
    }

    #[test]
    fn cubish_mesh_covers_all_nodes() {
        let t = Topology::cubish_mesh(1024, 48);
        if let Topology::Mesh3d { dims: (x, y, z), node_size, .. } = t {
            assert!(x * y * z * node_size >= 1024);
            // Close to a cube: no dimension dominates wildly.
            assert!(x.max(y).max(z) <= 3 * x.min(y).min(z).max(1));
        } else {
            panic!("expected mesh");
        }
    }

    #[test]
    fn factor_is_symmetric() {
        let t = Topology::cubish_mesh(256, 8);
        for (a, b) in [(0usize, 255usize), (3, 77), (12, 200)] {
            assert!((t.factor(a, b) - t.factor(b, a)).abs() < 1e-12);
        }
    }

    #[test]
    fn torus_wraps_each_dimension() {
        let mesh = Topology::Mesh3d {
            node_size: 1,
            dims: (5, 4, 3),
            intra_factor: 0.3,
            hop_factor: 0.1,
            torus: false,
        };
        let torus = Topology::Mesh3d {
            node_size: 1,
            dims: (5, 4, 3),
            intra_factor: 0.3,
            hop_factor: 0.1,
            torus: true,
        };
        // Node 0 at (0,0,0) vs node 4 at (4,0,0): 4 mesh hops, but the x
        // wraparound link makes it 1 torus hop.
        assert!((mesh.factor(0, 4) - 1.3).abs() < 1e-9);
        assert!((torus.factor(0, 4) - 1.0).abs() < 1e-9);
        // (0,0,0) vs (4,3,2): mesh 4+3+2 = 9 hops; torus 1+1+1 = 3 hops.
        let far = 4 + 3 * 5 + 2 * 20;
        assert!((mesh.factor(0, far) - 1.8).abs() < 1e-9);
        assert!((torus.factor(0, far) - 1.2).abs() < 1e-9);
        // Distances at or below half the ring are unchanged by wrapping.
        assert_eq!(mesh.factor(0, 2), torus.factor(0, 2));
        assert_eq!(mesh.factor(0, 1), torus.factor(0, 1));
        // Intra-node discount is topology-independent.
        let t2 = Topology::cubish_torus(64, 4);
        assert_eq!(t2.factor(0, 3), 0.3);
    }

    #[test]
    fn torus_factor_is_symmetric() {
        let t = Topology::cubish_torus(256, 8);
        assert!(matches!(t, Topology::Mesh3d { torus: true, .. }));
        for (a, b) in [(0usize, 255usize), (3, 77), (12, 200), (9, 250)] {
            assert!((t.factor(a, b) - t.factor(b, a)).abs() < 1e-12);
        }
        // Wrapping can only shorten paths, never lengthen them.
        let open = Topology::cubish_mesh(256, 8);
        for (a, b) in [(0usize, 255usize), (3, 77), (12, 200), (9, 250)] {
            assert!(t.factor(a, b) <= open.factor(a, b) + 1e-12);
        }
    }
}
