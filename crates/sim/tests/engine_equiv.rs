//! Property test: the engine's peek-compare fast path is unobservable.
//!
//! The production [`Engine`] skips the heap push/pop when the stepping actor
//! remains the global minimum after a `Yield`. This test drives the same
//! randomized actor schedules through the production engine *and* through a
//! plain reference loop that always goes through the `BinaryHeap`, and
//! requires identical `(time, worker)` step sequences, end times, step
//! counts and final clocks — including the tricky schedules: zero-duration
//! yields (bumped to 1 ns), duplicate durations producing simultaneous
//! halts, actors with no yields at all, and a single actor running alone
//! (the all-fast-path extreme).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dcs_sim::{Actor, Engine, Step, VTime, WorkerId};
use proptest::prelude::*;

/// Trace of every step the engine performed, in execution order.
type Trace = Vec<(VTime, WorkerId)>;

/// An actor that follows a fixed yield script, then halts.
#[derive(Clone)]
struct Scripted {
    yields: Vec<u64>,
    next: usize,
}

impl Scripted {
    fn new(yields: Vec<u64>) -> Scripted {
        Scripted { yields, next: 0 }
    }
}

impl Actor<Trace> for Scripted {
    fn step(&mut self, me: WorkerId, now: VTime, world: &mut Trace) -> Step {
        world.push((now, me));
        match self.yields.get(self.next) {
            Some(&d) => {
                self.next += 1;
                Step::Yield(VTime::ns(d))
            }
            None => Step::Halt,
        }
    }
}

/// The pre-fast-path event loop: unconditional pop/push on every step. This
/// is the semantics the production engine must reproduce exactly.
fn reference_run(mut actors: Vec<Scripted>) -> (Trace, VTime, u64, Vec<VTime>) {
    let n = actors.len();
    let mut heap: BinaryHeap<Reverse<(VTime, WorkerId)>> = BinaryHeap::new();
    for w in 0..n {
        heap.push(Reverse((VTime::ZERO, w)));
    }
    let mut trace = Trace::new();
    let mut clocks = vec![VTime::ZERO; n];
    let mut steps = 0u64;
    let mut end = VTime::ZERO;
    while let Some(Reverse((t, w))) = heap.pop() {
        steps += 1;
        match actors[w].step(w, t, &mut trace) {
            Step::Yield(d) => {
                let nt = t + d.max(VTime::ns(1));
                clocks[w] = nt;
                heap.push(Reverse((nt, w)));
            }
            Step::Halt => {
                clocks[w] = t;
                end = end.max(t);
            }
        }
    }
    (trace, end, steps, clocks)
}

fn fast_run(actors: Vec<Scripted>) -> (Trace, VTime, u64, Vec<VTime>) {
    let n = actors.len();
    let mut e = Engine::new(Trace::new(), actors);
    let r = e.run();
    let clocks = (0..n).map(|w| e.clock(w)).collect();
    let (trace, _) = e.into_parts();
    (trace, r.end_time, r.steps, clocks)
}

fn assert_equivalent(scripts: Vec<Vec<u64>>) {
    let actors: Vec<Scripted> = scripts.iter().cloned().map(Scripted::new).collect();
    let (rt, rend, rsteps, rclocks) = reference_run(actors.clone());
    let (ft, fend, fsteps, fclocks) = fast_run(actors);
    assert_eq!(rt, ft, "step sequences diverged for scripts {scripts:?}");
    assert_eq!(rend, fend, "end_time diverged for scripts {scripts:?}");
    assert_eq!(rsteps, fsteps, "step counts diverged for scripts {scripts:?}");
    assert_eq!(rclocks, fclocks, "final clocks diverged for scripts {scripts:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random fleets of 1–6 actors, each with 0–12 yields drawn from a
    /// small range so that collisions (equal wakeup times) are frequent.
    #[test]
    fn fast_path_is_unobservable(
        scripts in proptest::collection::vec(
            proptest::collection::vec(0u64..6, 0..12),
            1..6,
        )
    ) {
        assert_equivalent(scripts);
    }

    /// Long single-actor runs: the fast path never touches the heap after
    /// the first pop, the purest exercise of the peek-skip.
    #[test]
    fn single_actor_all_fast_path(script in proptest::collection::vec(0u64..50, 0..64)) {
        assert_equivalent(vec![script]);
    }
}

#[test]
fn zero_yield_actors_halt_in_id_order() {
    // Three actors that never yield: three Halt steps at t=0, ids 0,1,2.
    assert_equivalent(vec![vec![], vec![], vec![]]);
    let actors = vec![Scripted::new(vec![]); 3];
    let (trace, end, steps, _) = fast_run(actors);
    assert_eq!(trace, vec![(VTime::ZERO, 0), (VTime::ZERO, 1), (VTime::ZERO, 2)]);
    assert_eq!(end, VTime::ZERO);
    assert_eq!(steps, 3);
}

#[test]
fn simultaneous_halts_match_reference() {
    // Identical scripts → every wakeup and the final halts are ties; order
    // must be by worker id at each instant, same as the reference.
    assert_equivalent(vec![vec![5, 5, 5]; 4]);
    // Mixed: one straggler outlives simultaneous early halts.
    assert_equivalent(vec![vec![], vec![2, 2], vec![1, 1, 1, 1, 1, 1, 1]]);
}
