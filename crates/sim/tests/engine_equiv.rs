//! Property test: the engine's peek-compare fast path is unobservable.
//!
//! The production [`Engine`] skips the heap push/pop when the stepping actor
//! remains the global minimum after a `Yield`. This test drives the same
//! randomized actor schedules through the production engine *and* through a
//! plain reference loop that always goes through the `BinaryHeap`, and
//! requires identical `(time, worker)` step sequences, end times, step
//! counts and final clocks — including the tricky schedules: zero-duration
//! yields (bumped to 1 ns), duplicate durations producing simultaneous
//! halts, actors with no yields at all, and a single actor running alone
//! (the all-fast-path extreme).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dcs_sim::{Actor, Engine, Step, VTime, WorkerId};
use proptest::prelude::*;

/// Trace of every step the engine performed, in execution order.
type Trace = Vec<(VTime, WorkerId)>;

/// An actor that follows a fixed yield script, then halts.
#[derive(Clone)]
struct Scripted {
    yields: Vec<u64>,
    next: usize,
}

impl Scripted {
    fn new(yields: Vec<u64>) -> Scripted {
        Scripted { yields, next: 0 }
    }
}

impl Actor<Trace> for Scripted {
    fn step(&mut self, me: WorkerId, now: VTime, world: &mut Trace) -> Step {
        world.push((now, me));
        match self.yields.get(self.next) {
            Some(&d) => {
                self.next += 1;
                Step::Yield(VTime::ns(d))
            }
            None => Step::Halt,
        }
    }
}

/// The pre-fast-path event loop: unconditional pop/push on every step. This
/// is the semantics the production engine must reproduce exactly.
fn reference_run(mut actors: Vec<Scripted>) -> (Trace, VTime, u64, Vec<VTime>) {
    let n = actors.len();
    let mut heap: BinaryHeap<Reverse<(VTime, WorkerId)>> = BinaryHeap::new();
    for w in 0..n {
        heap.push(Reverse((VTime::ZERO, w)));
    }
    let mut trace = Trace::new();
    let mut clocks = vec![VTime::ZERO; n];
    let mut steps = 0u64;
    let mut end = VTime::ZERO;
    while let Some(Reverse((t, w))) = heap.pop() {
        steps += 1;
        match actors[w].step(w, t, &mut trace) {
            Step::Yield(d) => {
                let nt = t + d.max(VTime::ns(1));
                clocks[w] = nt;
                heap.push(Reverse((nt, w)));
            }
            Step::Park => unreachable!("scripted actors never park"),
            Step::Halt => {
                clocks[w] = t;
                end = end.max(t);
            }
        }
    }
    (trace, end, steps, clocks)
}

fn fast_run(actors: Vec<Scripted>) -> (Trace, VTime, u64, Vec<VTime>) {
    let n = actors.len();
    let mut e = Engine::new(Trace::new(), actors);
    let r = e.run();
    let clocks = (0..n).map(|w| e.clock(w)).collect();
    let (trace, _) = e.into_parts();
    (trace, r.end_time, r.steps, clocks)
}

fn assert_equivalent(scripts: Vec<Vec<u64>>) {
    let actors: Vec<Scripted> = scripts.iter().cloned().map(Scripted::new).collect();
    let (rt, rend, rsteps, rclocks) = reference_run(actors.clone());
    let (ft, fend, fsteps, fclocks) = fast_run(actors);
    assert_eq!(rt, ft, "step sequences diverged for scripts {scripts:?}");
    assert_eq!(rend, fend, "end_time diverged for scripts {scripts:?}");
    assert_eq!(rsteps, fsteps, "step counts diverged for scripts {scripts:?}");
    assert_eq!(rclocks, fclocks, "final clocks diverged for scripts {scripts:?}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random fleets of 1–6 actors, each with 0–12 yields drawn from a
    /// small range so that collisions (equal wakeup times) are frequent.
    #[test]
    fn fast_path_is_unobservable(
        scripts in proptest::collection::vec(
            proptest::collection::vec(0u64..6, 0..12),
            1..6,
        )
    ) {
        assert_equivalent(scripts);
    }

    /// Long single-actor runs: the fast path never touches the heap after
    /// the first pop, the purest exercise of the peek-skip.
    #[test]
    fn single_actor_all_fast_path(script in proptest::collection::vec(0u64..50, 0..64)) {
        assert_equivalent(vec![script]);
    }
}

// ---------------------------------------------------------------------
// Park/wake: parking a polling actor is unobservable
// ---------------------------------------------------------------------

/// World for the park/wake tests: a release event, the park registry, and
/// the wake pipe the engine drains after every step.
struct PWorld {
    trace: Trace,
    /// Engine key `(clock, worker)` of the releasing step, once it ran.
    release: Option<(VTime, WorkerId)>,
    /// `(since, worker)` of the parked poller, if any.
    park: Option<(VTime, WorkerId)>,
    wakeups: Vec<(VTime, WorkerId)>,
    /// Poll period in ns.
    grid: u64,
}

/// A poll at `(now, me)` observes the release iff the releasing step ran
/// strictly before it in engine key order (effects are eager).
fn sees(release: Option<(VTime, WorkerId)>, now: VTime, me: WorkerId) -> bool {
    release.is_some_and(|k| k < (now, me))
}

#[derive(Clone)]
enum Role {
    /// Yields `delay` once, then "releases" on its second step and halts.
    Writer { delay: u64, fired: bool },
    /// Polls every `grid` ns until the release is visible, then halts.
    Spinner,
    /// Like `Spinner`, but parks instead of re-polling; the writer's
    /// release wakes it at the first poll instant that observes the
    /// release — the same rule `Machine::wake_parked` implements.
    Parker,
}

impl Actor<PWorld> for Role {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut PWorld) -> Step {
        w.trace.push((now, me));
        match self {
            Role::Writer { delay, fired } => {
                if !*fired {
                    *fired = true;
                    return Step::Yield(VTime::ns(*delay));
                }
                w.release = Some((now, me));
                if let Some((since, p)) = w.park.take() {
                    let d = now.as_ns() - since.as_ns();
                    let g = w.grid;
                    let (j0, rem) = (d / g, d % g);
                    // First poll index j ≥ 1 with (since + j·g, p) > (now, me).
                    let j = if rem != 0 {
                        j0 + 1
                    } else if j0 >= 1 && p > me {
                        j0
                    } else {
                        j0 + 1
                    };
                    w.wakeups.push((VTime::ns(since.as_ns() + j * g), p));
                }
                Step::Halt
            }
            Role::Spinner => {
                if sees(w.release, now, me) {
                    Step::Halt
                } else {
                    Step::Yield(VTime::ns(w.grid))
                }
            }
            Role::Parker => {
                if sees(w.release, now, me) {
                    Step::Halt
                } else {
                    w.park = Some((now, me));
                    Step::Park
                }
            }
        }
    }
}

fn poll_run(actors: Vec<Role>, grid: u64) -> (Trace, VTime, Vec<VTime>) {
    let n = actors.len();
    let world = PWorld {
        trace: Trace::new(),
        release: None,
        park: None,
        wakeups: Vec::new(),
        grid,
    };
    let mut e = Engine::new(world, actors).with_waker(|w, out| out.append(&mut w.wakeups));
    let r = e.run();
    let clocks = (0..n).map(|w| e.clock(w)).collect();
    let (world, _) = e.into_parts();
    (world.trace, r.end_time, clocks)
}

/// The parked run must halt every actor at the same virtual instant as the
/// polling run — its trace is the polling trace minus the skipped re-polls.
fn assert_park_equivalent(delay: u64, grid: u64, writer_first: bool) {
    let writer = Role::Writer { delay, fired: false };
    let (spin_fleet, park_fleet) = if writer_first {
        (
            vec![writer.clone(), Role::Spinner],
            vec![writer, Role::Parker],
        )
    } else {
        (
            vec![Role::Spinner, writer.clone()],
            vec![Role::Parker, writer],
        )
    };
    let (st, send, sclocks) = poll_run(spin_fleet, grid);
    let (pt, pend, pclocks) = poll_run(park_fleet, grid);
    assert_eq!(
        send, pend,
        "end_time diverged (delay={delay} grid={grid} writer_first={writer_first})"
    );
    assert_eq!(
        sclocks, pclocks,
        "final clocks diverged (delay={delay} grid={grid} writer_first={writer_first})"
    );
    // The parked trace is a subsequence of the polling trace (only failed
    // re-polls are skipped), with identical first and last poller steps.
    let mut si = st.iter();
    assert!(
        pt.iter().all(|e| si.any(|s| s == e)),
        "parked trace is not a subsequence (delay={delay} grid={grid} writer_first={writer_first})"
    );
    assert_eq!(st.last(), pt.last(), "final steps diverged");
    assert!(pt.len() <= st.len());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(300))]

    /// Random release delays (on- and off-grid, both id orders): parking
    /// the poller never changes end time, final clocks, or the poller's
    /// wake step — only the number of host steps.
    #[test]
    fn park_is_unobservable(delay in 1u64..200, grid in 2u64..12, writer_first in proptest::bool::ANY) {
        assert_park_equivalent(delay, grid, writer_first);
    }
}

/// The exact-grid tie: release lands precisely on a poll instant. Whether
/// the poll at that instant sees it depends on the worker-id tiebreak.
#[test]
fn park_wake_grid_tie_is_exact() {
    for &grid in &[5u64, 10] {
        for k in 1..6 {
            assert_park_equivalent(k * grid, grid, true); // writer id < poller id
            assert_park_equivalent(k * grid, grid, false); // writer id > poller id
        }
    }
}

#[test]
#[should_panic(expected = "still parked")]
fn lost_wakeup_panics() {
    // A parker with no writer: the queue drains with it still parked.
    let world = PWorld {
        trace: Trace::new(),
        release: None,
        park: None,
        wakeups: Vec::new(),
        grid: 10,
    };
    let mut e = Engine::new(world, vec![Role::Parker]).with_waker(|w, out| out.append(&mut w.wakeups));
    e.run();
}

#[test]
#[should_panic(expected = "requires a waker")]
fn park_without_waker_panics() {
    let world = PWorld {
        trace: Trace::new(),
        release: None,
        park: None,
        wakeups: Vec::new(),
        grid: 10,
    };
    let mut e = Engine::new(world, vec![Role::Parker]);
    e.run();
}

#[test]
fn zero_yield_actors_halt_in_id_order() {
    // Three actors that never yield: three Halt steps at t=0, ids 0,1,2.
    assert_equivalent(vec![vec![], vec![], vec![]]);
    let actors = vec![Scripted::new(vec![]); 3];
    let (trace, end, steps, _) = fast_run(actors);
    assert_eq!(trace, vec![(VTime::ZERO, 0), (VTime::ZERO, 1), (VTime::ZERO, 2)]);
    assert_eq!(end, VTime::ZERO);
    assert_eq!(steps, 3);
}

#[test]
fn simultaneous_halts_match_reference() {
    // Identical scripts → every wakeup and the final halts are ties; order
    // must be by worker id at each instant, same as the reference.
    assert_equivalent(vec![vec![5, 5, 5]; 4]);
    // Mixed: one straggler outlives simultaneous early halts.
    assert_equivalent(vec![vec![], vec![2, 2], vec![1, 1, 1, 1, 1, 1, 1]]);
}
