//! Simulator integration tests: engine + machine + mailbox + topology
//! working together, exercised by small purpose-built actors.

use dcs_sim::{
    profiles, Actor, Engine, GlobalAddr, Machine, MachineConfig, Mailbox, SimRng, Step, Topology,
    VTime, WorkerId,
};

/// World for the ping-pong test: machine + mailbox.
struct PingWorld {
    m: Machine,
    mail: Mailbox<u64>,
}

/// Two actors bounce a counter via messages until it reaches a limit.
struct Pinger {
    peer: WorkerId,
    limit: u64,
    sent: u64,
    serve: bool,
}

impl Actor<PingWorld> for Pinger {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut PingWorld) -> Step {
        if let Some((_, v)) = w.mail.recv(me, now) {
            if v >= self.limit {
                return Step::Halt;
            }
            let cost = w.m.message_handled(me) + w.m.message_sent(me);
            let deliver = now + cost + VTime::ns(w.m.lat().message);
            w.mail.send(me, self.peer, deliver, v + 1);
            self.sent = v + 1;
            if v + 1 >= self.limit {
                return Step::Halt;
            }
            return Step::Yield(cost);
        }
        if self.serve {
            // Kick off the exchange once.
            self.serve = false;
            let cost = w.m.message_sent(me);
            let deliver = now + cost + VTime::ns(w.m.lat().message);
            w.mail.send(me, self.peer, deliver, 1);
            return Step::Yield(cost);
        }
        Step::Yield(w.m.local_op(me))
    }
}

#[test]
fn message_ping_pong_advances_virtual_time_consistently() {
    let m = Machine::new(MachineConfig::new(2, profiles::itoa()).with_seg_bytes(1 << 12));
    let one_way = VTime::ns(m.lat().message);
    let world = PingWorld {
        m,
        mail: Mailbox::new(2),
    };
    let actors = vec![
        Pinger {
            peer: 1,
            limit: 100,
            sent: 0,
            serve: true,
        },
        Pinger {
            peer: 0,
            limit: 100,
            sent: 0,
            serve: false,
        },
    ];
    let mut e = Engine::new(world, actors);
    let report = e.run();
    // 100 messages, each at least one one-way latency apart.
    assert!(report.end_time >= one_way * 100);
    assert!(e.world.mail.is_empty());
}

/// Counters distributed over a hierarchical machine: intra-node atomics are
/// cheaper, and every worker's final clock reflects its own operation mix.
struct Bumper {
    target: GlobalAddr,
    rounds: u32,
}

impl Actor<Machine> for Bumper {
    fn step(&mut self, me: WorkerId, _now: VTime, m: &mut Machine) -> Step {
        if self.rounds == 0 {
            return Step::Halt;
        }
        self.rounds -= 1;
        let (_, cost) = m.fetch_add_u64(me, self.target, 1);
        Step::Yield(cost)
    }
}

#[test]
fn hierarchical_topology_speeds_up_intra_node_actors() {
    let topo = Topology::Hierarchical {
        node_size: 2,
        intra_factor: 0.25,
    };
    let mut m = Machine::new(
        MachineConfig::new(4, profiles::itoa())
            .with_seg_bytes(1 << 12)
            .with_topology(topo),
    );
    let target = m.alloc(1, 8); // lives on worker 1
    let actors: Vec<Bumper> = (0..4)
        .map(|_| Bumper { target, rounds: 50 })
        .collect();
    let mut e = Engine::new(m, actors);
    e.run();
    // All 200 increments landed.
    let (v, _) = e.world.get_u64(1, target);
    assert_eq!(v, 200);
    // Worker 0 shares a node with the target's owner: its 50 atomics are
    // cheaper, so its final clock is earlier than worker 2/3's.
    assert!(e.clock(0) < e.clock(2));
    assert!(e.clock(0) < e.clock(3));
    // The owner itself pays only local costs.
    assert!(e.clock(1) < e.clock(0));
}

/// Deterministic interleaving: a machine-wide FAA race has one winner per
/// value, and the exact sequence is reproducible across engine runs.
struct Racer {
    word: GlobalAddr,
    won: Vec<u64>,
    rng: SimRng,
    rounds: u32,
}

impl Actor<Machine> for Racer {
    fn step(&mut self, me: WorkerId, _now: VTime, m: &mut Machine) -> Step {
        if self.rounds == 0 {
            return Step::Halt;
        }
        self.rounds -= 1;
        let (old, cost) = m.fetch_add_u64(me, self.word, 1);
        self.won.push(old);
        // Jitter the next attempt so interleavings vary.
        let jitter = VTime::ns(self.rng.below(500));
        Step::Yield(cost + jitter)
    }
}

#[test]
fn faa_race_is_linearizable_and_deterministic() {
    let build = || {
        let mut m = Machine::new(MachineConfig::new(3, profiles::itoa()).with_seg_bytes(1 << 12));
        let word = m.alloc(0, 8);
        let actors: Vec<Racer> = (0..3)
            .map(|w| Racer {
                word,
                won: Vec::new(),
                rng: SimRng::for_worker(42, w),
                rounds: 40,
            })
            .collect();
        Engine::new(m, actors)
    };
    let mut a = build();
    a.run();
    let mut b = build();
    b.run();
    // Every value 0..120 handed out exactly once (linearizable counter).
    let mut all: Vec<u64> = a.actors().iter().flat_map(|r| r.won.clone()).collect();
    all.sort_unstable();
    assert_eq!(all, (0..120).collect::<Vec<u64>>());
    // And the per-actor sequences are bit-identical across runs.
    for (x, y) in a.actors().iter().zip(b.actors()) {
        assert_eq!(x.won, y.won);
    }
}
