//! Replayable schedule files.
//!
//! A schedule is the checker's reproducer: the scenario name, its
//! configuration, and the choice vector the [`crate::hook::ControllerHook`]
//! feeds to the engine (one entry per scheduling decision; missing entries
//! default to 0 = the engine's native min-clock order). The text format is
//! line-oriented so a failing schedule survives a CI artifact upload and a
//! paste into a bug report:
//!
//! ```text
//! # dcs-check schedule
//! scenario=deque-steal
//! workers=2
//! seed=1
//! choices=0,0,1,0,2
//! ```

use std::fmt;

/// A serialized (replayable) schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Schedule {
    pub scenario: String,
    pub workers: usize,
    pub seed: u64,
    /// Index-into-eligible choice per scheduling decision (0 = default
    /// order; out-of-range values are clamped by the hook).
    pub choices: Vec<u32>,
}

impl Schedule {
    /// Parse the text format written by [`fmt::Display`]. Unknown keys and
    /// `#` comments are ignored so the format can grow.
    pub fn parse(text: &str) -> Result<Schedule, String> {
        let mut scenario: Option<String> = None;
        let mut workers: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut choices: Vec<u32> = Vec::new();
        for (ln, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, val) = line
                .split_once('=')
                .ok_or_else(|| format!("line {}: expected key=value, got {line:?}", ln + 1))?;
            match key.trim() {
                "scenario" => scenario = Some(val.trim().to_string()),
                "workers" => {
                    workers = Some(
                        val.trim()
                            .parse()
                            .map_err(|e| format!("line {}: bad workers: {e}", ln + 1))?,
                    )
                }
                "seed" => {
                    seed = Some(
                        val.trim()
                            .parse()
                            .map_err(|e| format!("line {}: bad seed: {e}", ln + 1))?,
                    )
                }
                "choices" => {
                    let val = val.trim();
                    if !val.is_empty() {
                        for c in val.split(',') {
                            choices.push(
                                c.trim()
                                    .parse()
                                    .map_err(|e| format!("line {}: bad choice {c:?}: {e}", ln + 1))?,
                            );
                        }
                    }
                }
                _ => {}
            }
        }
        Ok(Schedule {
            scenario: scenario.ok_or("missing scenario=")?,
            workers: workers.ok_or("missing workers=")?,
            seed: seed.ok_or("missing seed=")?,
            choices,
        })
    }
}

impl fmt::Display for Schedule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "# dcs-check schedule (replay with: dcs check --schedule <file>)")?;
        writeln!(f, "scenario={}", self.scenario)?;
        writeln!(f, "workers={}", self.workers)?;
        writeln!(f, "seed={}", self.seed)?;
        let choices: Vec<String> = self.choices.iter().map(|c| c.to_string()).collect();
        writeln!(f, "choices={}", choices.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let s = Schedule {
            scenario: "deque-steal".into(),
            workers: 2,
            seed: 42,
            choices: vec![0, 0, 1, 0, 2],
        };
        let text = s.to_string();
        assert_eq!(Schedule::parse(&text).unwrap(), s);
    }

    #[test]
    fn empty_choices_roundtrip() {
        let s = Schedule {
            scenario: "x".into(),
            workers: 8,
            seed: 0,
            choices: vec![],
        };
        assert_eq!(Schedule::parse(&s.to_string()).unwrap(), s);
    }

    #[test]
    fn comments_and_unknown_keys_ignored() {
        let text = "# hi\nscenario=a\nworkers=3\nseed=7\nfuture-key=zzz\nchoices=1\n";
        let s = Schedule::parse(text).unwrap();
        assert_eq!(s.scenario, "a");
        assert_eq!(s.workers, 3);
        assert_eq!(s.seed, 7);
        assert_eq!(s.choices, vec![1]);
    }

    #[test]
    fn missing_fields_error() {
        assert!(Schedule::parse("workers=2\nseed=0\n").is_err());
        assert!(Schedule::parse("scenario=a\nworkers=x\nseed=0").is_err());
    }
}
