//! Checkable scenarios: small, oracle-bearing workloads the explorer drives.
//!
//! Each [`Scenario`] is a deterministic function from a [`dcs_sim::ScheduleHook`]
//! to a list of oracle violations (empty = clean). Three families:
//!
//! * **Raw deque protocols** (`deque-steal`, `broken-release`): an owner and
//!   thieves drive [`dcs_core::deque`] verbs directly against a simulated
//!   machine, with a shadow deque as the linearizability oracle — every
//!   pushed item is popped (LIFO, by the owner) or stolen (FIFO-from-top, by
//!   a thief) *exactly once*, and nobody observes a dead ring slot.
//!   `broken-release` recomposes the steal with the lock released *before*
//!   the top advance — the historical ordering this PR fixed — and exists to
//!   prove the checker catches that bug (`expect_violation`).
//! * **Full runtime** (`single-steal:*`, `fork-join`): real programs through
//!   [`dcs_core::run_hooked`] under every Policy × FreeStrategy, with the
//!   result value and the invariant watchdog (protocol + leak oracles) as
//!   the spec.
//! * **Termination** (`bot-term`): the BoT one-sided runtime on a micro UTS
//!   tree; oracles are termination safety (created == consumed, no resident
//!   work lost) and the serial node count.

use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};

use dcs_core::dedup::ClaimSet;
use dcs_core::deque::{
    ff_owner_pop, ff_owner_push, ff_thief_claim, lock_word, owner_pop, owner_push,
    thief_advance_top, thief_lock, thief_lock_epoch, thief_read_bounds, thief_release_lock,
    thief_take, thief_take_at, thief_take_no_release, DequeError, FfSteal,
};
use dcs_core::frame::{frame, Effect, TaskCtx};
use dcs_core::layout::{SegLayout, DQ_LOCK, DQ_TOP};
use dcs_core::util::Slab;
use dcs_core::value::{ThreadHandle, Value};
use dcs_core::world::{QueueItem, WorkerShared};
use dcs_core::{run_hooked, FreeStrategy, Policy, Program, Protocol, RunConfig};
use dcs_sim::{
    profiles, Actor, Engine, FabricMode, GlobalAddr, Machine, MachineConfig, ScheduleHook, Step,
    VTime, VerbHandle, WorkerId,
};

use crate::explore::RunRecord;
use crate::hook::{ControllerHook, PctHook};

/// One run of a scenario under a schedule controller, yielding oracle
/// violations (empty = clean).
type ScenarioRunner = Box<dyn Fn(&mut dyn ScheduleHook) -> Vec<String> + Send + Sync>;

/// A named, explorable workload with built-in oracles.
pub struct Scenario {
    pub name: String,
    pub workers: usize,
    /// True for self-test scenarios that deliberately break a protocol:
    /// exploration is expected to find at least one violation (and the
    /// checker fails if it does NOT).
    pub expect_violation: bool,
    runner: ScenarioRunner,
}

impl Scenario {
    /// Drive one run under `hook`, returning oracle violations.
    pub fn run_hooked(&self, hook: &mut dyn ScheduleHook) -> Vec<String> {
        (self.runner)(hook)
    }

    /// Replay a choice vector (missing entries = native order). Panics in
    /// the scenario are caught and reported as a violation, so a protocol
    /// assert firing under a hostile schedule is a finding, not a crash.
    pub fn run_choices(&self, choices: &[u32]) -> RunRecord {
        let mut hook = ControllerHook::new(choices);
        let caught = catch_unwind(AssertUnwindSafe(|| (self.runner)(&mut hook)));
        let violations = match caught {
            Ok(v) => v,
            Err(p) => vec![format!("panic: {}", panic_message(p.as_ref()))],
        };
        RunRecord {
            eligible: std::mem::take(&mut hook.eligible),
            taken: std::mem::take(&mut hook.taken),
            violations,
        }
    }

    /// One randomized PCT run (see [`PctHook`]); the returned record's
    /// `taken` vector replays the run exactly through [`Self::run_choices`].
    pub fn run_pct(&self, seed: u64, depth: usize, horizon: u64) -> RunRecord {
        let mut hook = PctHook::new(self.workers, seed, depth, horizon);
        let caught = catch_unwind(AssertUnwindSafe(|| (self.runner)(&mut hook)));
        let violations = match caught {
            Ok(v) => v,
            Err(p) => vec![format!("panic: {}", panic_message(p.as_ref()))],
        };
        RunRecord {
            eligible: Vec::new(),
            taken: std::mem::take(&mut hook.taken),
            violations,
        }
    }
}

fn panic_message(p: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

// ---------------------------------------------------------------------------
// Raw deque scenarios
// ---------------------------------------------------------------------------

/// Which steal composition the thief runs.
#[derive(Clone, Copy, PartialEq, Eq)]
enum ReleaseOrder {
    /// The shipped protocol: top advances no later than the lock release.
    Fixed,
    /// The historical bug, recomposed from the seam functions: entry taken,
    /// lock released, and only then — one engine step later — the top
    /// advanced. Between those steps the owner can observe the dead slot.
    Broken,
    /// The posted-verb composition the Pipelined fabric runs: take without
    /// release, advance the top, then post the lock-release put and the
    /// payload get together and reap them one engine step later. The window
    /// between post and completion is a real interleaving point — the
    /// overlap-race oracle checks the owner can race into it freely and
    /// that no completion is left unreaped at the end.
    Pipelined,
}

struct DqWorld {
    m: Machine,
    items: Slab<QueueItem>,
    lay: SegLayout,
    /// Linearizability oracle: tags in deque order (front = top = oldest).
    /// Thieves must take from the front, the owner pops from the back.
    shadow: VecDeque<u64>,
    violations: Vec<String>,
}

fn dq_body(_: Value, _: &mut TaskCtx) -> Effect {
    Effect::ret(0u64)
}

fn dq_item(tag: u64) -> QueueItem {
    QueueItem::Child {
        f: dq_body,
        arg: Value::U64(tag),
        handle: ThreadHandle::single(GlobalAddr::new(0, 8 * (tag as u32 + 1))),
    }
}

fn dq_tag(item: &QueueItem) -> u64 {
    match item {
        QueueItem::Child { arg, .. } => arg.as_u64(),
        QueueItem::Cont { th, .. } => th.tid,
    }
}

enum DqActor {
    Owner { to_push: u64, pushed: u64 },
    Thief { state: ThiefState, order: ReleaseOrder },
}

enum ThiefState {
    Locking { attempts: u32 },
    Take,
    /// Broken order only: lock already released, top advance still pending.
    Advance { new_top: u64 },
    /// Pipelined order only: release put + payload get posted, not reaped.
    Reap {
        h_release: VerbHandle,
        h_copy: VerbHandle,
    },
    Done,
}

impl Actor<DqWorld> for DqActor {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut DqWorld) -> Step {
        match self {
            DqActor::Owner { to_push, pushed } => {
                if *pushed < *to_push {
                    let tag = *pushed;
                    return match owner_push(&mut w.m, &mut w.items, &w.lay, me, dq_item(tag)) {
                        Ok(cost) => {
                            *pushed += 1;
                            w.shadow.push_back(tag);
                            Step::Yield(cost)
                        }
                        Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
                        Err(DequeError::Dead(d)) => {
                            w.violations
                                .push(format!("owner_push observed dead slot: {d:?}"));
                            Step::Halt
                        }
                    };
                }
                // Drain phase: pop until the shadow confirms nothing is left.
                match owner_pop(&mut w.m, &mut w.items, &w.lay, me) {
                    Ok((Some(item), cost)) => {
                        let tag = dq_tag(&item);
                        match w.shadow.pop_back() {
                            Some(expect) if expect == tag => {}
                            other => w.violations.push(format!(
                                "owner_pop LIFO violated: got tag {tag}, shadow back was {other:?}"
                            )),
                        }
                        Step::Yield(cost)
                    }
                    Ok((None, cost)) => {
                        if w.shadow.is_empty() {
                            Step::Halt
                        } else {
                            // Items outstanding but the deque reads empty:
                            // either a thief is mid-steal (keep waiting) or
                            // an item was lost. The end-of-run leak oracle
                            // distinguishes the two.
                            Step::Yield(cost)
                        }
                    }
                    Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
                    Err(DequeError::Dead(d)) => {
                        w.violations.push(format!(
                            "deque-protocol: owner_pop observed a dead ring slot at index {} (steal advanced the lock before the top)",
                            d.index
                        ));
                        Step::Halt
                    }
                }
            }
            DqActor::Thief { state, order } => match state {
                ThiefState::Locking { attempts } => {
                    let (locked, cost) = thief_lock(&mut w.m, &w.lay, me, 0);
                    if locked {
                        *state = ThiefState::Take;
                    } else {
                        *attempts += 1;
                        if *attempts >= 16 {
                            return Step::Halt; // give up: a failed steal
                        }
                    }
                    Step::Yield(cost)
                }
                ThiefState::Take => match order {
                    ReleaseOrder::Fixed => {
                        match thief_take(&mut w.m, &mut w.items, &w.lay, me, 0) {
                            Ok((Some((item, _size)), cost)) => {
                                check_fifo(w, &item);
                                *state = ThiefState::Done;
                                Step::Yield(cost)
                            }
                            Ok((None, cost)) => {
                                if !w.shadow.is_empty() {
                                    w.violations.push(format!(
                                        "steal missed items: deque read empty with {} outstanding",
                                        w.shadow.len()
                                    ));
                                }
                                *state = ThiefState::Done;
                                Step::Yield(cost)
                            }
                            Err(d) => {
                                w.violations
                                    .push(format!("thief_take observed dead slot: {d:?}"));
                                Step::Halt
                            }
                        }
                    }
                    ReleaseOrder::Broken => {
                        match thief_take_no_release(&mut w.m, &mut w.items, &w.lay, me, 0) {
                            Ok((Some((item, _size, top)), cost)) => {
                                check_fifo(w, &item);
                                // BUG (deliberate): release the lock now,
                                // advance the top only next step.
                                let cost = cost + thief_release_lock(&mut w.m, &w.lay, me, 0);
                                *state = ThiefState::Advance { new_top: top + 1 };
                                Step::Yield(cost)
                            }
                            Ok((None, cost)) => {
                                let cost = cost + thief_release_lock(&mut w.m, &w.lay, me, 0);
                                *state = ThiefState::Done;
                                Step::Yield(cost)
                            }
                            Err(d) => {
                                w.violations
                                    .push(format!("thief_take observed dead slot: {d:?}"));
                                Step::Halt
                            }
                        }
                    }
                    ReleaseOrder::Pipelined => {
                        match thief_take_no_release(&mut w.m, &mut w.items, &w.lay, me, 0) {
                            Ok((Some((item, size, top)), cost)) => {
                                check_fifo(w, &item);
                                // The shipped pipelined composition: top is
                                // advanced before the release is posted, so
                                // the deque is consistent the instant the
                                // release's (eager) effect lands.
                                thief_advance_top(&mut w.m, &w.lay, me, 0, top + 1);
                                let at = now + cost;
                                let lock = GlobalAddr::new(0, w.lay.dq_word(DQ_LOCK));
                                let h_release = w.m.post_put_u64(me, lock, 0, at);
                                let h_copy = w.m.post_get_bulk(me, 0, size, at);
                                *state = ThiefState::Reap { h_release, h_copy };
                                Step::Yield(cost)
                            }
                            Ok((None, cost)) => {
                                let cost = cost + thief_release_lock(&mut w.m, &w.lay, me, 0);
                                *state = ThiefState::Done;
                                Step::Yield(cost)
                            }
                            Err(d) => {
                                w.violations
                                    .push(format!("thief_take observed dead slot: {d:?}"));
                                Step::Halt
                            }
                        }
                    }
                },
                ThiefState::Advance { new_top } => {
                    thief_advance_top(&mut w.m, &w.lay, me, 0, *new_top);
                    *state = ThiefState::Done;
                    Step::Yield(w.m.local_op(me))
                }
                ThiefState::Reap { h_release, h_copy } => {
                    let (_, f1) = w.m.wait(me, *h_release);
                    let (_, f2) = w.m.wait(me, *h_copy);
                    *state = ThiefState::Done;
                    Step::Yield(f1.max(f2).saturating_sub(now))
                }
                ThiefState::Done => Step::Halt,
            },
        }
    }
}

fn check_fifo(w: &mut DqWorld, item: &QueueItem) {
    let tag = dq_tag(item);
    match w.shadow.pop_front() {
        Some(expect) if expect == tag => {}
        other => w.violations.push(format!(
            "steal FIFO violated: got tag {tag}, shadow front was {other:?}"
        )),
    }
}

/// Build a raw-deque scenario: worker 0 owns the deque and pushes `n_items`;
/// workers `1..workers` each attempt one steal with the given composition.
fn deque_scenario(name: &str, workers: usize, n_items: u64, order: ReleaseOrder) -> Scenario {
    assert!(workers >= 2);
    let expect_violation = order == ReleaseOrder::Broken;
    let fabric = if order == ReleaseOrder::Pipelined {
        FabricMode::Pipelined
    } else {
        FabricMode::Blocking
    };
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(workers, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved)
                .with_fabric(fabric),
        );
        let world = DqWorld {
            m,
            items: Slab::new(),
            lay,
            shadow: VecDeque::new(),
            violations: Vec::new(),
        };
        let mut actors = vec![DqActor::Owner {
            to_push: n_items,
            pushed: 0,
        }];
        for _ in 1..workers {
            actors.push(DqActor::Thief {
                state: ThiefState::Locking { attempts: 0 },
                order,
            });
        }
        let mut engine = Engine::new(world, actors).with_max_steps(100_000);
        engine.run_with_hook(hook);
        let w = &mut engine.world;
        if !w.shadow.is_empty() {
            w.violations
                .push(format!("leak: {} pushed items never consumed", w.shadow.len()));
        }
        if !w.items.is_empty() {
            w.violations
                .push("leak: queue-item slab not empty at end of run".to_string());
        }
        for p in 0..workers {
            let depth = w.m.cq_depth(p);
            if depth > 0 {
                w.violations.push(format!(
                    "overlap-race: worker {p} ended with {depth} posted verbs never reaped"
                ));
            }
        }
        std::mem::take(&mut w.violations)
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Fence-free deque scenarios (the multiplicity oracle)
// ---------------------------------------------------------------------------

/// World for the fence-free steal scenarios. Unlike the CAS-lock shadow
/// deque, the oracle here is a *multiplicity* ledger: fence-free steals are
/// read/write-only, so an occupancy may be **taken** (payload transferred)
/// by more than one party, but the claim arbitration must ensure every
/// pushed task is **executed** exactly once, with the total take count per
/// task bounded by the number of potential takers (owner + thieves = the
/// worker count). Delivery order is deliberately not part of the contract —
/// fence-free takers validate instead of serializing.
struct FfWorld {
    m: Machine,
    /// Worker 0's shared state: the item slab and the live-ticket map.
    ws: WorkerShared,
    /// The claim arbiter honest takers share (models the claim-write).
    claims: ClaimSet,
    lay: SegLayout,
    /// Per-tag (executions, take attempts); filled at push time.
    counts: HashMap<u64, (u32, u32)>,
    pushed: u64,
    /// The multiplicity bound k: owner + thieves.
    cap: u32,
    violations: Vec<String>,
}

impl FfWorld {
    /// A party got the payload and will run the task.
    fn note_exec(&mut self, tag: u64, who: &str) {
        let e = self.counts.entry(tag).or_insert((0, 0));
        e.0 += 1;
        e.1 += 1;
        if e.0 > 1 {
            self.violations.push(format!(
                "multiplicity: task {tag} executed {} times ({who} took it again)",
                e.0
            ));
        }
        if e.1 > self.cap {
            self.violations.push(format!(
                "multiplicity: task {tag} taken {} times, bound is {}",
                e.1, self.cap
            ));
        }
    }

    /// A party paid the payload transfer but lost the claim race.
    fn note_dup(&mut self, tag: u64) {
        let e = self.counts.entry(tag).or_insert((0, 0));
        e.1 += 1;
        if e.1 > self.cap {
            self.violations.push(format!(
                "multiplicity: task {tag} taken {} times, bound is {}",
                e.1, self.cap
            ));
        }
    }

    fn all_executed(&self) -> bool {
        self.counts.values().all(|&(e, _)| e >= 1)
    }
}

enum FfActor {
    Owner {
        to_push: u64,
    },
    Thief {
        state: FfThiefState,
        /// `Some` recomposes the deliberate bug: this thief arbitrates
        /// against its own private claim set — a claim-write that reaches
        /// nobody — so a take it wins is invisible to the owner and the
        /// task runs twice. The self-test (`broken-claim`) proves the
        /// multiplicity oracle catches exactly that.
        private_claims: Option<ClaimSet>,
    },
}

enum FfThiefState {
    Bounds { attempts: u32 },
    Claim { top: u64, attempts: u32 },
    Done,
}

impl Actor<FfWorld> for FfActor {
    fn step(&mut self, me: WorkerId, _now: VTime, w: &mut FfWorld) -> Step {
        match self {
            FfActor::Owner { to_push } => {
                if w.pushed < *to_push {
                    let tag = w.pushed;
                    let cost = ff_owner_push(&mut w.m, &mut w.ws, &w.lay, me, dq_item(tag));
                    w.pushed += 1;
                    w.counts.insert(tag, (0, 0));
                    return Step::Yield(cost);
                }
                match ff_owner_pop(&mut w.m, &mut w.ws, &mut w.claims, &w.lay, me) {
                    Ok((Some(item), cost)) => {
                        let tag = dq_tag(&item);
                        w.note_exec(tag, "owner_pop");
                        Step::Yield(cost)
                    }
                    Ok((None, cost)) => {
                        // Claim + execution bookkeeping are atomic within a
                        // taker's step, so an empty deque with every task
                        // executed means the run is over; otherwise a thief
                        // is still between bounds read and claim.
                        if w.pushed == *to_push && w.all_executed() {
                            Step::Halt
                        } else {
                            Step::Yield(cost)
                        }
                    }
                    Err(DequeError::Busy) => {
                        unreachable!("fence-free owners are never blocked")
                    }
                    Err(DequeError::Dead(d)) => {
                        w.violations
                            .push(format!("ff_owner_pop observed a corrupt slot: {d:?}"));
                        Step::Halt
                    }
                }
            }
            FfActor::Thief {
                state,
                private_claims,
            } => match state {
                FfThiefState::Bounds { attempts } => {
                    let ((top, bottom), cost) = thief_read_bounds(&mut w.m, &w.lay, me, 0);
                    if top >= bottom {
                        *attempts += 1;
                        if *attempts >= 16 {
                            return Step::Halt; // give up: a failed steal
                        }
                        return Step::Yield(cost);
                    }
                    *state = FfThiefState::Claim {
                        top,
                        attempts: *attempts,
                    };
                    Step::Yield(cost)
                }
                FfThiefState::Claim { top, attempts } => {
                    // Oracle-side peek at the slot the claim will target, so
                    // a Dup can be charged to the right task.
                    let keyp1 = w.m.read_own(0, GlobalAddr::new(0, w.lay.dq_slot(*top)));
                    let (outcome, mut cost) = match private_claims {
                        Some(p) => ff_thief_claim(&mut w.m, &mut w.ws, p, &w.lay, me, 0, *top),
                        None => ff_thief_claim(
                            &mut w.m,
                            &mut w.ws,
                            &mut w.claims,
                            &w.lay,
                            me,
                            0,
                            *top,
                        ),
                    };
                    match outcome {
                        FfSteal::Taken(item, size) => {
                            cost += w.m.get_bulk(me, 0, size);
                            let tag = dq_tag(&item);
                            w.note_exec(tag, &format!("thief {me}"));
                            *state = FfThiefState::Done; // one steal per thief
                            Step::Yield(cost)
                        }
                        FfSteal::Dup => {
                            let tag = keyp1
                                .checked_sub(1)
                                .and_then(|k| w.ws.items.get(k as u32))
                                .map(dq_tag);
                            if let Some(tag) = tag {
                                w.note_dup(tag);
                            }
                            *state = FfThiefState::Bounds {
                                attempts: *attempts + 1,
                            };
                            Step::Yield(cost)
                        }
                        FfSteal::Lost => {
                            *state = FfThiefState::Bounds {
                                attempts: *attempts + 1,
                            };
                            Step::Yield(cost)
                        }
                    }
                }
                FfThiefState::Done => Step::Halt,
            },
        }
    }
}

/// Build a fence-free steal scenario: worker 0 owns the ring and pushes
/// `n_items` `Child` descriptors; workers `1..workers` each run the
/// bounds-read → claim pipeline. With `broken_claim`, every thief arbitrates
/// against a private claim set (the no-op claim-write bug) and the
/// multiplicity oracle must catch a double execution.
fn ff_deque_scenario(name: &str, workers: usize, n_items: u64, broken_claim: bool) -> Scenario {
    assert!(workers >= 2);
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(workers, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        let world = FfWorld {
            m,
            ws: WorkerShared::new(&cfg),
            claims: ClaimSet::default(),
            lay,
            counts: HashMap::new(),
            pushed: 0,
            cap: workers as u32,
            violations: Vec::new(),
        };
        let mut actors = vec![FfActor::Owner { to_push: n_items }];
        for _ in 1..workers {
            actors.push(FfActor::Thief {
                state: FfThiefState::Bounds { attempts: 0 },
                private_claims: broken_claim.then(ClaimSet::default),
            });
        }
        let mut engine = Engine::new(world, actors).with_max_steps(100_000);
        engine.run_with_hook(hook);
        let w = &mut engine.world;
        let mut tags: Vec<u64> = w.counts.keys().copied().collect();
        tags.sort_unstable();
        for tag in tags {
            let (exec, takes) = w.counts[&tag];
            if exec != 1 {
                w.violations.push(format!(
                    "multiplicity: task {tag} executed {exec} times, want exactly 1"
                ));
            }
            if takes > w.cap {
                w.violations.push(format!(
                    "multiplicity: task {tag} taken {takes} times, bound is {}",
                    w.cap
                ));
            }
        }
        if !w.ws.items.is_empty() {
            w.violations
                .push("leak: queue-item slab not empty at end of run".to_string());
        }
        if !w.ws.ff_tickets.is_empty() {
            w.violations
                .push("leak: live tickets left at end of run".to_string());
        }
        w.violations.sort_unstable();
        w.violations.dedup();
        std::mem::take(&mut w.violations)
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: broken_claim,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Multi-steal probe-ring scenarios
// ---------------------------------------------------------------------------

/// World for the multi-steal probe rings: TWO owners (workers 0 and 1) each
/// drive their own deque; each thief keeps a probe on both victims in flight
/// at once — the `--multi-steal` composition — and commits the first in ring
/// order that holds work, abandoning the other. Oracles: per-deque
/// exactly-once FIFO/LIFO (shadow deques), every victim's lock word reads 0
/// at the end of the run (an abandoned steal must release a won-but-unused
/// lock), and no posted verb is left unreaped.
struct MsWorld {
    m: Machine,
    items: Vec<Slab<QueueItem>>,
    lay: SegLayout,
    shadow: Vec<VecDeque<u64>>,
    violations: Vec<String>,
}

enum MsActor {
    Owner { to_push: u64, pushed: u64 },
    Thief { state: MsThiefState, pipelined: bool },
}

enum MsThiefState {
    /// Probe both victims in one step (the ring is posted as a unit).
    Probe { attempts: u32 },
    /// Ring winner committed: the lock is held and the bounds are frozen
    /// across this engine-step boundary — the window the owners and the
    /// other thieves interleave into.
    Take { victim: WorkerId, top: u64, bottom: u64 },
    Done,
}

impl Actor<MsWorld> for MsActor {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut MsWorld) -> Step {
        match self {
            MsActor::Owner { to_push, pushed } => {
                if *pushed < *to_push {
                    let tag = me as u64 * 100 + *pushed;
                    return match owner_push(&mut w.m, &mut w.items[me], &w.lay, me, dq_item(tag))
                    {
                        Ok(cost) => {
                            *pushed += 1;
                            w.shadow[me].push_back(tag);
                            Step::Yield(cost)
                        }
                        Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
                        Err(DequeError::Dead(d)) => {
                            w.violations
                                .push(format!("owner_push observed dead slot: {d:?}"));
                            Step::Halt
                        }
                    };
                }
                match owner_pop(&mut w.m, &mut w.items[me], &w.lay, me) {
                    Ok((Some(item), cost)) => {
                        let tag = dq_tag(&item);
                        match w.shadow[me].pop_back() {
                            Some(expect) if expect == tag => {}
                            other => w.violations.push(format!(
                                "owner_pop LIFO violated: got tag {tag}, shadow back was {other:?}"
                            )),
                        }
                        Step::Yield(cost)
                    }
                    Ok((None, cost)) => {
                        if w.shadow[me].is_empty() {
                            Step::Halt
                        } else {
                            Step::Yield(cost)
                        }
                    }
                    Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
                    Err(DequeError::Dead(d)) => {
                        w.violations.push(format!(
                            "multi-steal: owner_pop observed a dead ring slot at index {}",
                            d.index
                        ));
                        Step::Halt
                    }
                }
            }
            MsActor::Thief { state, pipelined } => match state {
                MsThiefState::Probe { attempts } => {
                    const RING: [usize; 2] = [0, 1];
                    let mut cost = VTime::ZERO;
                    // (victim, lock won, top, bottom) per ring slot.
                    let mut probes: Vec<(usize, bool, u64, u64)> = Vec::new();
                    if *pipelined {
                        // The shipped pipelined ring: every probe's CAS and
                        // bounds read posted behind one doorbell, reaped
                        // together; decisions use the eager values.
                        w.m.chain_begin(me);
                        let mut handles = Vec::new();
                        for &v in &RING {
                            let lock = GlobalAddr::new(v, w.lay.dq_word(DQ_LOCK));
                            let h_cas = w.m.post_cas_u64(me, lock, 0, me as u64 + 1, now);
                            let top_addr = GlobalAddr::new(v, w.lay.dq_word(DQ_TOP));
                            let (vals, h_b) = w.m.post_get_u64_span::<2>(me, top_addr, now);
                            handles.push((v, h_cas, h_b, vals));
                        }
                        w.m.chain_end(me);
                        let mut fin_max = now;
                        for (v, h_cas, h_b, vals) in handles {
                            let (observed, f1) = w.m.wait(me, h_cas);
                            let (_, f2) = w.m.wait(me, h_b);
                            fin_max = fin_max.max(f1).max(f2);
                            probes.push((v, observed == 0, vals[0], vals[1]));
                        }
                        cost = fin_max.saturating_sub(now);
                    } else {
                        for &v in &RING {
                            let (locked, c1) = thief_lock(&mut w.m, &w.lay, me, v);
                            cost += c1;
                            if locked {
                                let ((top, bottom), c2) =
                                    thief_read_bounds(&mut w.m, &w.lay, me, v);
                                cost += c2;
                                probes.push((v, true, top, bottom));
                            } else {
                                probes.push((v, false, 0, 0));
                            }
                        }
                    }
                    // First in ring order with the lock AND work wins; every
                    // other won lock is released before this step ends — a
                    // leak here is exactly what the end-of-run lock oracle
                    // catches.
                    let mut won: Option<(usize, u64, u64)> = None;
                    for &(v, locked, top, bottom) in &probes {
                        if !locked {
                            continue;
                        }
                        if won.is_none() && top < bottom {
                            won = Some((v, top, bottom));
                        } else {
                            cost += thief_release_lock(&mut w.m, &w.lay, me, v);
                        }
                    }
                    match won {
                        Some((v, top, bottom)) => {
                            *state = MsThiefState::Take { victim: v, top, bottom };
                            Step::Yield(cost)
                        }
                        None => {
                            *attempts += 1;
                            if *attempts >= 16 {
                                return Step::Halt; // give up: failed steals
                            }
                            Step::Yield(cost.max(w.m.local_op(me)))
                        }
                    }
                }
                MsThiefState::Take { victim, top, bottom } => {
                    let v = *victim;
                    match thief_take_at(
                        &mut w.m,
                        &mut w.items[v],
                        &w.lay,
                        me,
                        v,
                        *top,
                        *bottom,
                    ) {
                        Ok((Some((item, _size)), cost)) => {
                            let tag = dq_tag(&item);
                            match w.shadow[v].pop_front() {
                                Some(expect) if expect == tag => {}
                                other => w.violations.push(format!(
                                    "steal FIFO violated on victim {v}: got tag {tag}, shadow front was {other:?}"
                                )),
                            }
                            *state = MsThiefState::Done;
                            Step::Yield(cost)
                        }
                        Ok((None, cost)) => {
                            // The bounds were read under the held lock, so
                            // the owner cannot have drained the slot since.
                            w.violations.push(format!(
                                "multi-steal: probe promised work on victim {v} but the known-bounds take found none"
                            ));
                            *state = MsThiefState::Done;
                            Step::Yield(cost)
                        }
                        Err(d) => {
                            w.violations
                                .push(format!("thief_take_at observed dead slot: {d:?}"));
                            Step::Halt
                        }
                    }
                }
                MsThiefState::Done => Step::Halt,
            },
        }
    }
}

/// Build a multi-steal probe-ring scenario: workers 0 and 1 own deques and
/// push `n_items` each; workers `2..workers` run the two-victim probe ring
/// (posted as one doorbell chain when `pipelined`).
fn multi_steal_scenario(name: &str, workers: usize, n_items: u64, pipelined: bool) -> Scenario {
    let workers = workers.max(3);
    let fabric = if pipelined {
        FabricMode::Pipelined
    } else {
        FabricMode::Blocking
    };
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(workers, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved)
                .with_fabric(fabric),
        );
        let world = MsWorld {
            m,
            items: (0..workers).map(|_| Slab::new()).collect(),
            lay,
            shadow: vec![VecDeque::new(); workers],
            violations: Vec::new(),
        };
        let mut actors = vec![
            MsActor::Owner { to_push: n_items, pushed: 0 },
            MsActor::Owner { to_push: n_items, pushed: 0 },
        ];
        for _ in 2..workers {
            actors.push(MsActor::Thief {
                state: MsThiefState::Probe { attempts: 0 },
                pipelined,
            });
        }
        let mut engine = Engine::new(world, actors).with_max_steps(100_000);
        engine.run_with_hook(hook);
        let w = &mut engine.world;
        for v in 0..2usize {
            if !w.shadow[v].is_empty() {
                w.violations.push(format!(
                    "leak: {} items of victim {v} never consumed",
                    w.shadow[v].len()
                ));
            }
            if !w.items[v].is_empty() {
                w.violations
                    .push(format!("leak: victim {v}'s queue-item slab not empty"));
            }
            let lock = w.m.read_own(v, GlobalAddr::new(v, w.lay.dq_word(DQ_LOCK)));
            if lock != 0 {
                w.violations.push(format!(
                    "abandoned lock: victim {v}'s deque lock still held by {lock} at end of run"
                ));
            }
        }
        for p in 0..workers {
            let depth = w.m.cq_depth(p);
            if depth > 0 {
                w.violations.push(format!(
                    "overlap-race: worker {p} ended with {depth} posted verbs never reaped"
                ));
            }
        }
        std::mem::take(&mut w.violations)
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

/// World for the fence-free multi-steal variant: two owners with their own
/// rings, ticket maps and claim arbiters; thieves probe both victims'
/// bounds, then run the claim pipeline against the ring winner ONLY. The
/// multiplicity ledger is the double-claim oracle: a thief that claimed the
/// victim it abandoned would execute a task twice (or leak a ticket, caught
/// at end of run).
struct MsFfWorld {
    m: Machine,
    ws: Vec<WorkerShared>,
    claims: Vec<ClaimSet>,
    lay: SegLayout,
    /// Per (victim, tag): (executions, take attempts).
    counts: HashMap<(usize, u64), (u32, u32)>,
    /// Takers per deque: its owner + every thief.
    cap: u32,
    violations: Vec<String>,
}

impl MsFfWorld {
    fn note_exec(&mut self, victim: usize, tag: u64, who: &str) {
        let e = self.counts.entry((victim, tag)).or_insert((0, 0));
        e.0 += 1;
        e.1 += 1;
        if e.0 > 1 {
            self.violations.push(format!(
                "multiplicity: victim {victim} task {tag} executed {} times ({who} took it again)",
                e.0
            ));
        }
        if e.1 > self.cap {
            self.violations.push(format!(
                "multiplicity: victim {victim} task {tag} taken {} times, bound is {}",
                e.1, self.cap
            ));
        }
    }

    fn note_dup(&mut self, victim: usize, tag: u64) {
        let e = self.counts.entry((victim, tag)).or_insert((0, 0));
        e.1 += 1;
        if e.1 > self.cap {
            self.violations.push(format!(
                "multiplicity: victim {victim} task {tag} taken {} times, bound is {}",
                e.1, self.cap
            ));
        }
    }

    fn owner_done(&self, me: usize) -> bool {
        self.counts
            .iter()
            .filter(|((v, _), _)| *v == me)
            .all(|(_, &(e, _))| e >= 1)
    }
}

enum MsFfActor {
    Owner { to_push: u64, pushed: u64 },
    Thief { state: MsFfState },
}

enum MsFfState {
    /// Read both victims' bounds in one step (the posted ring).
    Probe { attempts: u32 },
    /// Claim against the ring winner only — never the abandoned victim.
    Claim { victim: usize, top: u64, attempts: u32 },
    Done,
}

impl Actor<MsFfWorld> for MsFfActor {
    fn step(&mut self, me: WorkerId, _now: VTime, w: &mut MsFfWorld) -> Step {
        match self {
            MsFfActor::Owner { to_push, pushed } => {
                if *pushed < *to_push {
                    let tag = *pushed;
                    let cost =
                        ff_owner_push(&mut w.m, &mut w.ws[me], &w.lay, me, dq_item(tag));
                    *pushed += 1;
                    w.counts.insert((me, tag), (0, 0));
                    return Step::Yield(cost);
                }
                match ff_owner_pop(&mut w.m, &mut w.ws[me], &mut w.claims[me], &w.lay, me) {
                    Ok((Some(item), cost)) => {
                        let tag = dq_tag(&item);
                        w.note_exec(me, tag, "owner_pop");
                        Step::Yield(cost)
                    }
                    Ok((None, cost)) => {
                        if *pushed == *to_push && w.owner_done(me) {
                            Step::Halt
                        } else {
                            Step::Yield(cost)
                        }
                    }
                    Err(DequeError::Busy) => {
                        unreachable!("fence-free owners are never blocked")
                    }
                    Err(DequeError::Dead(d)) => {
                        w.violations
                            .push(format!("ff_owner_pop observed a corrupt slot: {d:?}"));
                        Step::Halt
                    }
                }
            }
            MsFfActor::Thief { state } => match state {
                MsFfState::Probe { attempts } => {
                    const RING: [usize; 2] = [0, 1];
                    let mut cost = VTime::ZERO;
                    let mut won: Option<(usize, u64)> = None;
                    for &v in &RING {
                        let ((top, bottom), c) = thief_read_bounds(&mut w.m, &w.lay, me, v);
                        cost += c;
                        if won.is_none() && top < bottom {
                            won = Some((v, top));
                        }
                        // An abandoned ready victim needs no cancel under
                        // fence-free: the probe was a plain read, no ticket
                        // was claimed.
                    }
                    match won {
                        Some((v, top)) => {
                            *state = MsFfState::Claim { victim: v, top, attempts: *attempts };
                            Step::Yield(cost)
                        }
                        None => {
                            *attempts += 1;
                            if *attempts >= 16 {
                                return Step::Halt; // give up: failed steals
                            }
                            Step::Yield(cost)
                        }
                    }
                }
                MsFfState::Claim { victim, top, attempts } => {
                    let v = *victim;
                    // Oracle-side peek at the claim target so a Dup can be
                    // charged to the right task.
                    let keyp1 = w.m.read_own(v, GlobalAddr::new(v, w.lay.dq_slot(*top)));
                    let (outcome, mut cost) = ff_thief_claim(
                        &mut w.m,
                        &mut w.ws[v],
                        &mut w.claims[v],
                        &w.lay,
                        me,
                        v,
                        *top,
                    );
                    match outcome {
                        FfSteal::Taken(item, size) => {
                            cost += w.m.get_bulk(me, v, size);
                            let tag = dq_tag(&item);
                            w.note_exec(v, tag, &format!("thief {me}"));
                            *state = MsFfState::Done; // one steal per thief
                            Step::Yield(cost)
                        }
                        FfSteal::Dup => {
                            let tag = keyp1
                                .checked_sub(1)
                                .and_then(|k| w.ws[v].items.get(k as u32))
                                .map(dq_tag);
                            if let Some(tag) = tag {
                                w.note_dup(v, tag);
                            }
                            *state = MsFfState::Probe { attempts: *attempts + 1 };
                            Step::Yield(cost)
                        }
                        FfSteal::Lost => {
                            *state = MsFfState::Probe { attempts: *attempts + 1 };
                            Step::Yield(cost)
                        }
                    }
                }
                MsFfState::Done => Step::Halt,
            },
        }
    }
}

/// Build the fence-free multi-steal scenario: workers 0 and 1 own rings and
/// push `n_items` each; workers `2..workers` probe both and claim from the
/// ring winner only.
fn ms_ff_scenario(name: &str, workers: usize, n_items: u64) -> Scenario {
    let workers = workers.max(3);
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(workers, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        let world = MsFfWorld {
            m,
            ws: (0..workers).map(|_| WorkerShared::new(&cfg)).collect(),
            claims: (0..workers).map(|_| ClaimSet::default()).collect(),
            lay,
            counts: HashMap::new(),
            cap: (workers - 1) as u32,
            violations: Vec::new(),
        };
        let mut actors = vec![
            MsFfActor::Owner { to_push: n_items, pushed: 0 },
            MsFfActor::Owner { to_push: n_items, pushed: 0 },
        ];
        for _ in 2..workers {
            actors.push(MsFfActor::Thief {
                state: MsFfState::Probe { attempts: 0 },
            });
        }
        let mut engine = Engine::new(world, actors).with_max_steps(100_000);
        engine.run_with_hook(hook);
        let w = &mut engine.world;
        let mut keys: Vec<(usize, u64)> = w.counts.keys().copied().collect();
        keys.sort_unstable();
        for key in keys {
            let (exec, takes) = w.counts[&key];
            if exec != 1 {
                w.violations.push(format!(
                    "multiplicity: victim {} task {} executed {exec} times, want exactly 1",
                    key.0, key.1
                ));
            }
            if takes > w.cap {
                w.violations.push(format!(
                    "multiplicity: victim {} task {} taken {takes} times, bound is {}",
                    key.0, key.1, w.cap
                ));
            }
        }
        for v in 0..2usize {
            if !w.ws[v].items.is_empty() {
                w.violations
                    .push(format!("leak: victim {v}'s queue-item slab not empty"));
            }
            if !w.ws[v].ff_tickets.is_empty() {
                w.violations.push(format!(
                    "leak: victim {v} has live tickets left at end of run (double claim?)"
                ));
            }
        }
        w.violations.sort_unstable();
        w.violations.dedup();
        std::mem::take(&mut w.violations)
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Full-runtime scenarios
// ---------------------------------------------------------------------------

fn leaf(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    Effect::ret(arg.as_u64() * 2)
}

/// Root forks one leaf and joins it: the smallest program whose every run
/// exercises push, pop-parent (the Fig. 4 DIE fast path) and — under a
/// hostile schedule — a steal racing that fast path on a one-item deque.
fn single_steal_root(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
    Effect::fork(
        leaf,
        7u64,
        frame(|h, _| {
            let h = h.as_handle();
            Effect::join(h, frame(|v, _| Effect::ret(v.as_u64() + 1)))
        }),
    )
}

fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let n = arg.as_u64();
    if n < 2 {
        return Effect::ret(n);
    }
    Effect::fork(
        fib,
        n - 1,
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                fib,
                n - 2,
                frame(move |b, _| {
                    let b = b.as_u64();
                    Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                }),
            )
        }),
    )
}

fn policy_slug(p: Policy) -> &'static str {
    match p {
        Policy::ContGreedy => "greedy",
        Policy::ContStalling => "stalling",
        Policy::ChildFull => "child-full",
        Policy::ChildRtc => "child-rtc",
    }
}

fn strategy_slug(s: FreeStrategy) -> &'static str {
    match s {
        FreeStrategy::LockQueue => "lockq",
        FreeStrategy::LocalCollection => "localc",
    }
}

/// What a full-runtime scenario executes and expects back.
#[derive(Clone, Copy)]
struct ProgSpec {
    root: dcs_core::TaskFn,
    arg: u64,
    expected: u64,
}

/// A full-runtime scenario: run the program under the policy/strategy pair
/// with the watchdog on (non-strict, so leaks and protocol violations are
/// reported instead of panicking) and check the result value.
#[allow(clippy::too_many_arguments)]
fn runtime_scenario(
    name: String,
    workers: usize,
    seed: u64,
    policy: Policy,
    strategy: FreeStrategy,
    fabric: FabricMode,
    protocol: Protocol,
    multi_steal: u32,
    spec: ProgSpec,
) -> Scenario {
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_free_strategy(strategy)
            .with_watchdog(true)
            .with_strict(false)
            .with_seed(seed)
            .with_fabric(fabric)
            .with_protocol(protocol)
            .with_multi_steal(multi_steal);
        let report = run_hooked(cfg, Program::new(spec.root, spec.arg), hook);
        let mut violations = Vec::new();
        if report.result.as_u64() != spec.expected {
            violations.push(format!(
                "wrong result: got {}, expected {}",
                report.result.as_u64(),
                spec.expected
            ));
        }
        match &report.watchdog {
            Some(wd) => violations.extend(wd.violations.iter().map(|v| v.to_string())),
            None => violations.push("watchdog missing from report".to_string()),
        }
        violations
    };
    Scenario {
        name,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Fail-stop crash scenarios
// ---------------------------------------------------------------------------

/// Crash-recovery oracle: a run that loses a worker mid-run must still
/// produce the exact fault-free answer under EVERY schedule —
/// continuation-lineage replay plus done-flag dedup means at-least-once
/// execution with exactly-once effects. Covers every recoverable policy:
/// ChildRtc replays stolen child descriptors; the continuation policies
/// replay forked continuation frames and repair the ContGreedy FAA race /
/// ContStalling wait queues through the buddy mirror; killing worker 0
/// additionally exercises root re-election. Leak violations are expected
/// (entries on the dead segment can never be freed, and orphaned duplicate
/// subtrees are tolerated-but-leaky) and filtered; anything else the
/// watchdog reports is a finding.
fn crash_recovery_scenario(
    name: &str,
    workers: usize,
    seed: u64,
    policy: Policy,
    victim: usize,
) -> Scenario {
    use dcs_core::RunOutcome;
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let mut plan = dcs_sim::FaultPlan::none().with_kill(victim, VTime::ns(100));
        plan.lease = VTime::us(5); // keep death confirmation inside the run
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_watchdog(true)
            .with_strict(false)
            .with_seed(seed)
            .with_fault_plan(plan);
        let report = run_hooked(cfg, Program::new(fib, 9u64), hook);
        let mut violations = Vec::new();
        if !matches!(report.outcome, RunOutcome::Complete) {
            violations.push(format!(
                "recoverable kill aborted the run: {:?}",
                report.outcome
            ));
        } else if report.result.as_u64() != 34 {
            violations.push(format!(
                "wrong result after recovery: got {}, expected 34 (workers_lost={}, replayed={})",
                report.result.as_u64(),
                report.stats.workers_lost,
                report.stats.tasks_replayed
            ));
        }
        if let Some(wd) = &report.watchdog {
            violations.extend(
                wd.violations
                    .iter()
                    .filter(|v| !matches!(v, dcs_core::watchdog::Violation::Leak { .. }))
                    .map(|v| v.to_string()),
            );
        }
        violations
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

/// Crash-abort oracle: ChildFull is the one policy whose lost state (full
/// private stacks of suspendable tied threads) genuinely cannot be replayed
/// or mirrored, so a kill that fires mid-run must end in a typed
/// `Unrecoverable` outcome naming the lost worker with the `FullStacks`
/// reason — never a silent wrong answer or a wedged run (a wedge surfaces
/// as a missing root result, which panics and is caught).
fn crash_abort_scenario(workers: usize, seed: u64) -> Scenario {
    use dcs_core::{RunOutcome, UnrecoverableReason};
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let mut plan = dcs_sim::FaultPlan::none().with_kill(workers - 1, VTime::ns(100));
        plan.lease = VTime::us(5);
        let cfg = RunConfig::new(workers, Policy::ChildFull)
            .with_profile(profiles::test_profile())
            .with_watchdog(true)
            .with_strict(false)
            .with_seed(seed)
            .with_fault_plan(plan);
        let report = run_hooked(cfg, Program::new(fib, 9u64), hook);
        let mut violations = Vec::new();
        match (&report.outcome, report.stats.workers_lost) {
            // The schedule let the run finish before the kill landed: the
            // answer must simply be right.
            (RunOutcome::Complete, 0) => {
                if report.result.as_u64() != 34 {
                    violations.push(format!(
                        "wrong result: got {}, expected 34",
                        report.result.as_u64()
                    ));
                }
            }
            (RunOutcome::Complete, _) => violations.push(
                "full-stack child-stealing run completed despite losing a worker's stacks"
                    .to_string(),
            ),
            (RunOutcome::Unrecoverable { worker, reason, .. }, _) => {
                if *worker != workers - 1 {
                    violations.push(format!(
                        "abort blamed worker {worker}, killed {}",
                        workers - 1
                    ));
                }
                if *reason != UnrecoverableReason::FullStacks {
                    violations.push(format!(
                        "abort carried the wrong typed reason: {reason:?}"
                    ));
                }
                let named = report.watchdog.as_ref().is_some_and(|wd| {
                    wd.violations.iter().any(|v| {
                        matches!(v, dcs_core::watchdog::Violation::WorkerLost { .. })
                    })
                });
                if !named {
                    violations
                        .push("abort did not record a worker-lost diagnostic".to_string());
                }
            }
        }
        violations
    };
    Scenario {
        name: "crash-abort".to_string(),
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Zombie-steal scenarios (imperfect failure detection)
// ---------------------------------------------------------------------------

/// The zombie seam, recomposed from the raw deque verbs. Worker 0 owns the
/// deque; worker 1 (the *zombie*) locks it with an epoch-stamped lock word
/// and then pauses mid-steal; worker 2 (the *suspector*) plays a message
/// detector with a false positive — it observes the held lock, evicts the
/// live holder (epoch bump), breaks the now-stale lock exactly as the
/// owner's `break_dead_lock` would, and steals in the zombie's place.
///
/// Shipped composition: the zombie re-checks its own incarnation epoch
/// before every deque mutation (the runtime's self-fence) and abandons the
/// steal the moment it observes its own eviction — so no schedule can make
/// an evicted incarnation touch the deque. With `broken`, the epoch check
/// is removed from the take-verb class: the zombie completes the take with
/// its pre-eviction view, executing a task in a dead incarnation — the
/// two-epochs oracle (and, on nastier schedules, the shadow FIFO and slab
/// tears) must catch it.
enum ZombieActor {
    Owner {
        to_push: u64,
        pushed: u64,
    },
    Zombie {
        state: ZombieState,
        broken: bool,
    },
    Suspector {
        state: SuspectorState,
    },
}

enum ZombieState {
    Locking { attempts: u32 },
    /// Lock held, take pending: the eviction window the explorer aims at.
    Pause,
    Take,
    Done,
}

enum SuspectorState {
    /// Poll the victim's lock word until the zombie is seen holding it.
    Watch { attempts: u32 },
    Locking { attempts: u32 },
    Take,
    Done,
}

impl Actor<DqWorld> for ZombieActor {
    fn step(&mut self, me: WorkerId, _now: VTime, w: &mut DqWorld) -> Step {
        match self {
            ZombieActor::Owner { to_push, pushed } => {
                owner_step(me, w, to_push, pushed)
            }
            ZombieActor::Zombie { state, broken } => {
                // The runtime's self-fence: a worker observing its own
                // eviction quiesces before issuing another verb. The broken
                // variant drops the check from the take class only, so the
                // lock acquisition stays faithful either way.
                match state {
                    ZombieState::Locking { attempts } => {
                        let (locked, cost) = thief_lock_epoch(&mut w.m, &w.lay, me, 0, 0);
                        if locked {
                            *state = ZombieState::Pause;
                        } else {
                            *attempts += 1;
                            if *attempts >= 16 {
                                return Step::Halt;
                            }
                        }
                        Step::Yield(cost)
                    }
                    ZombieState::Pause => {
                        // One idle beat between lock and take: the window a
                        // degraded NIC opens in the real runtime, and the
                        // window the suspector's eviction lands in.
                        *state = ZombieState::Take;
                        Step::Yield(w.m.local_op(me))
                    }
                    ZombieState::Take => {
                        if !*broken && w.m.epoch_of(me) > 0 {
                            // Shipped: observed own eviction — abandon. The
                            // lock is already someone else's problem (the
                            // suspector broke it as stale).
                            *state = ZombieState::Done;
                            return Step::Yield(w.m.local_op(me));
                        }
                        match thief_take(&mut w.m, &mut w.items, &w.lay, me, 0) {
                            Ok((Some((item, _size)), cost)) => {
                                if w.m.epoch_of(me) > 0 {
                                    w.violations.push(
                                        "zombie-steal: task taken by an evicted \
                                         incarnation (epoch fence missing on the \
                                         take verb)"
                                            .to_string(),
                                    );
                                }
                                check_fifo(w, &item);
                                *state = ZombieState::Done;
                                Step::Yield(cost)
                            }
                            Ok((None, cost)) => {
                                *state = ZombieState::Done;
                                Step::Yield(cost)
                            }
                            Err(d) => {
                                w.violations
                                    .push(format!("zombie thief_take observed dead slot: {d:?}"));
                                Step::Halt
                            }
                        }
                    }
                    ZombieState::Done => Step::Halt,
                }
            }
            ZombieActor::Suspector { state } => match state {
                SuspectorState::Watch { attempts } => {
                    let lock = GlobalAddr::new(0, w.lay.dq_word(DQ_LOCK));
                    let (word, cost) = w.m.get_u64(me, lock);
                    if word == lock_word(0, 1) {
                        // False suspicion: the holder is alive, but its
                        // heartbeats look stale from here. Evict it and
                        // break the stale-epoch lock (the owner-side
                        // `break_dead_lock` clause, run by a survivor).
                        w.m.evict(1);
                        let cost = cost + w.m.put_u64(me, lock, 0);
                        *state = SuspectorState::Locking { attempts: 0 };
                        return Step::Yield(cost);
                    }
                    *attempts += 1;
                    if *attempts >= 40 {
                        return Step::Halt; // the zombie finished first: no eviction
                    }
                    Step::Yield(cost)
                }
                SuspectorState::Locking { attempts } => {
                    let (locked, cost) = thief_lock_epoch(&mut w.m, &w.lay, me, 0, 0);
                    if locked {
                        *state = SuspectorState::Take;
                    } else {
                        *attempts += 1;
                        if *attempts >= 16 {
                            return Step::Halt;
                        }
                    }
                    Step::Yield(cost)
                }
                SuspectorState::Take => {
                    match thief_take(&mut w.m, &mut w.items, &w.lay, me, 0) {
                        Ok((Some((item, _size)), cost)) => {
                            check_fifo(w, &item);
                            *state = SuspectorState::Done;
                            Step::Yield(cost)
                        }
                        Ok((None, cost)) => {
                            *state = SuspectorState::Done;
                            Step::Yield(cost)
                        }
                        Err(d) => {
                            w.violations
                                .push(format!("suspector thief_take observed dead slot: {d:?}"));
                            Step::Halt
                        }
                    }
                }
                SuspectorState::Done => Step::Halt,
            },
        }
    }
}

/// Owner push/drain shared by the zombie scenario (the plain deque
/// scenario's owner, factored so both actor enums can use it).
fn owner_step(me: WorkerId, w: &mut DqWorld, to_push: &mut u64, pushed: &mut u64) -> Step {
    if *pushed < *to_push {
        let tag = *pushed;
        return match owner_push(&mut w.m, &mut w.items, &w.lay, me, dq_item(tag)) {
            Ok(cost) => {
                *pushed += 1;
                w.shadow.push_back(tag);
                Step::Yield(cost)
            }
            Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
            Err(DequeError::Dead(d)) => {
                w.violations
                    .push(format!("owner_push observed dead slot: {d:?}"));
                Step::Halt
            }
        };
    }
    match owner_pop(&mut w.m, &mut w.items, &w.lay, me) {
        Ok((Some(item), cost)) => {
            let tag = dq_tag(&item);
            match w.shadow.pop_back() {
                Some(expect) if expect == tag => {}
                other => w.violations.push(format!(
                    "owner_pop LIFO violated: got tag {tag}, shadow back was {other:?}"
                )),
            }
            Step::Yield(cost)
        }
        Ok((None, cost)) => {
            if w.shadow.is_empty() {
                Step::Halt
            } else {
                Step::Yield(cost)
            }
        }
        Err(DequeError::Busy) => Step::Yield(w.m.local_op(me)),
        Err(DequeError::Dead(d)) => {
            w.violations.push(format!(
                "deque-protocol: owner_pop observed a dead ring slot at index {}",
                d.index
            ));
            Step::Halt
        }
    }
}

/// Build the zombie-steal scenario (3 workers: owner, zombie, suspector).
/// `broken` removes the epoch self-fence from the zombie's take.
fn zombie_steal_scenario(name: &str, n_items: u64, broken: bool) -> Scenario {
    let workers = 3;
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let cfg = RunConfig::new(workers, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(workers, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        let world = DqWorld {
            m,
            items: Slab::new(),
            lay,
            shadow: VecDeque::new(),
            violations: Vec::new(),
        };
        let actors = vec![
            ZombieActor::Owner {
                to_push: n_items,
                pushed: 0,
            },
            ZombieActor::Zombie {
                state: ZombieState::Locking { attempts: 0 },
                broken,
            },
            ZombieActor::Suspector {
                state: SuspectorState::Watch { attempts: 0 },
            },
        ];
        let mut engine = Engine::new(world, actors).with_max_steps(100_000);
        engine.run_with_hook(hook);
        let w = &mut engine.world;
        // A broken-variant zombie may have consumed an item it had no right
        // to; the explicit two-epochs oracle has already fired then, so the
        // leak oracles only apply to the shipped composition.
        if !broken {
            if !w.shadow.is_empty() {
                w.violations
                    .push(format!("leak: {} pushed items never consumed", w.shadow.len()));
            }
            if !w.items.is_empty() {
                w.violations
                    .push("leak: queue-item slab not empty at end of run".to_string());
            }
        }
        std::mem::take(&mut w.violations)
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: broken,
        runner: Box::new(runner),
    }
}

/// Full-runtime suspicion scenarios: a message detector with an aggressive
/// lease and a degraded-NIC window on worker 1, **zero kills**. Every
/// explored schedule must complete with the exact fault-free answer —
/// false suspicion may evict live workers mid-steal, tear into their
/// in-flight joins and replay their lineage, but can never lose or
/// duplicate work. `until` bounds the degraded window: a finite window
/// lets the evictee's beats recover, un-suspects it, clears its blacklist
/// entry and (rejoin on) puts the fresh incarnation back to work.
fn suspicion_scenario(
    name: &str,
    workers: usize,
    seed: u64,
    policy: Policy,
    until: VTime,
) -> Scenario {
    use dcs_core::RunOutcome;
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let mut plan = dcs_sim::FaultPlan::none()
            .with_detector(dcs_sim::Detector::Message)
            .with_suspect(VTime::us(3))
            .with_degrade(dcs_sim::DegradeWindow {
                worker: 1,
                from: VTime::ZERO,
                until,
                factor: 20.0,
            });
        plan.hb_period = VTime::us(1);
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_watchdog(true)
            .with_strict(false)
            .with_seed(seed)
            .with_fault_plan(plan);
        let report = run_hooked(cfg, Program::new(fib, 10u64), hook);
        let mut violations = Vec::new();
        if !matches!(report.outcome, RunOutcome::Complete) {
            violations.push(format!(
                "suspicion-only run aborted: {:?} (false_suspects={})",
                report.outcome, report.stats.false_suspects
            ));
        } else if report.result.as_u64() != 55 {
            violations.push(format!(
                "result diverged from fault-free: got {}, expected 55 \
                 (false_suspects={}, rejoins={}, replayed={})",
                report.result.as_u64(),
                report.stats.false_suspects,
                report.stats.rejoins,
                report.stats.tasks_replayed
            ));
        }
        if report.stats.workers_lost != 0 {
            violations.push(format!(
                "a kill=none run counted {} workers as genuinely lost",
                report.stats.workers_lost
            ));
        }
        if let Some(wd) = &report.watchdog {
            violations.extend(
                wd.violations
                    .iter()
                    .filter(|v| !matches!(v, dcs_core::watchdog::Violation::Leak { .. }))
                    .map(|v| v.to_string()),
            );
        }
        violations
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Termination scenario
// ---------------------------------------------------------------------------

/// Micro UTS tree for the BoT termination oracle: small enough for
/// exploration, deep enough that the token circulates while steals and
/// re-activations are still in flight.
fn bot_term_scenario(name: &str, workers: usize, seed: u64, fabric: FabricMode) -> Scenario {
    use dcs_apps::uts::{serial_count, Shape, UtsSpec};
    let name_owned = name.to_string();
    let runner = move |hook: &mut dyn ScheduleHook| -> Vec<String> {
        let spec = UtsSpec::new(2.0, 3, Shape::Fixed, 5);
        let truth = serial_count(&spec).nodes;
        let out = dcs_bot::onesided::run_uts_hooked_fabric(
            &spec,
            workers,
            profiles::test_profile(),
            seed,
            hook,
            dcs_sim::FaultPlan::none(),
            fabric,
        );
        let mut violations = Vec::new();
        if out.created != out.consumed {
            violations.push(format!(
                "termination unsafe: created {} != consumed {}",
                out.created, out.consumed
            ));
        }
        if !out.bags_nonempty.is_empty() {
            violations.push(format!(
                "terminated with resident work in bags of workers {:?}",
                out.bags_nonempty
            ));
        }
        if out.nodes != truth {
            violations.push(format!(
                "wrong node count: got {}, serial truth {truth}",
                out.nodes
            ));
        }
        violations
    };
    Scenario {
        name: name_owned,
        workers,
        expect_violation: false,
        runner: Box::new(runner),
    }
}

// ---------------------------------------------------------------------------
// Catalog
// ---------------------------------------------------------------------------

/// All checkable scenarios at the given scale. `single-steal:*` covers every
/// Policy × FreeStrategy pair; `broken-release` is the self-test that must
/// fail under exploration.
pub fn catalog(workers: usize, seed: u64) -> Vec<Scenario> {
    let workers = workers.max(2);
    let mut v = vec![
        deque_scenario("deque-steal", workers, 2, ReleaseOrder::Fixed),
        deque_scenario("broken-release", 2, 1, ReleaseOrder::Broken),
        deque_scenario("deque-steal-pipelined", workers, 2, ReleaseOrder::Pipelined),
        // The fence-free family: read/write-only steals with bounded
        // multiplicity, and the no-op-claim-write self-test the
        // multiplicity oracle must catch.
        ff_deque_scenario("fence-free-steal", workers, 2, false),
        ff_deque_scenario("broken-claim", 2, 1, true),
        // The multi-steal probe rings (`--multi-steal`): two victims, each
        // thief's probes in flight at once, first hit in ring order wins and
        // the rest are abandoned — the abandoned-lock and double-claim
        // oracles close the new cancel paths.
        multi_steal_scenario("multi-steal-probe", workers, 2, false),
        multi_steal_scenario("multi-steal-probe-pipelined", workers, 2, true),
        ms_ff_scenario("multi-steal-ff", workers, 2),
    ];
    for policy in Policy::ALL {
        for strategy in [FreeStrategy::LockQueue, FreeStrategy::LocalCollection] {
            v.push(runtime_scenario(
                format!("single-steal:{}:{}", policy_slug(policy), strategy_slug(strategy)),
                workers,
                seed,
                policy,
                strategy,
                FabricMode::Blocking,
                Protocol::CasLock,
                1,
                ProgSpec {
                    root: single_steal_root,
                    arg: 0,
                    expected: 15,
                },
            ));
        }
        // The same join race with the posted-verb fabric: steals and retval
        // publications now have a window between post and completion that
        // the explorer can interleave into.
        v.push(runtime_scenario(
            format!("single-steal-pipelined:{}", policy_slug(policy)),
            workers,
            seed,
            policy,
            FreeStrategy::LocalCollection,
            FabricMode::Pipelined,
            Protocol::CasLock,
            1,
            ProgSpec {
                root: single_steal_root,
                arg: 0,
                expected: 15,
            },
        ));
        // The Fig. 4 one-item race again, but stealing fence-free: the
        // thief's claim races the owner's ff_owner_pop_parent fast path and
        // the dedup arbitration (not a lock) must keep the join exact.
        v.push(runtime_scenario(
            format!("single-steal-ff:{}", policy_slug(policy)),
            workers,
            seed,
            policy,
            FreeStrategy::LocalCollection,
            FabricMode::Blocking,
            Protocol::FenceFree,
            1,
            ProgSpec {
                root: single_steal_root,
                arg: 0,
                expected: 15,
            },
        ));
    }
    v.push(runtime_scenario(
        "fork-join".to_string(),
        workers,
        seed,
        Policy::ContGreedy,
        FreeStrategy::LocalCollection,
        FabricMode::Blocking,
        Protocol::CasLock,
        1,
        ProgSpec {
            root: fib,
            arg: 8,
            expected: 21,
        },
    ));
    v.push(runtime_scenario(
        "fork-join-pipelined".to_string(),
        workers,
        seed,
        Policy::ContGreedy,
        FreeStrategy::LocalCollection,
        FabricMode::Pipelined,
        Protocol::CasLock,
        1,
        ProgSpec {
            root: fib,
            arg: 8,
            expected: 21,
        },
    ));
    // Fence-free termination: a full fork-join tree must drain, terminate
    // and pass the end-of-run leak oracles (finalize reclaims thief-claimed
    // slots) under every explored schedule — in both fabric modes, and
    // under the lock-free family for contrast.
    v.push(runtime_scenario(
        "fence-free-term".to_string(),
        workers,
        seed,
        Policy::ContGreedy,
        FreeStrategy::LocalCollection,
        FabricMode::Blocking,
        Protocol::FenceFree,
        1,
        ProgSpec {
            root: fib,
            arg: 8,
            expected: 21,
        },
    ));
    v.push(runtime_scenario(
        "fence-free-term-pipelined".to_string(),
        workers,
        seed,
        Policy::ContGreedy,
        FreeStrategy::LocalCollection,
        FabricMode::Pipelined,
        Protocol::FenceFree,
        1,
        ProgSpec {
            root: fib,
            arg: 8,
            expected: 21,
        },
    ));
    v.push(runtime_scenario(
        "lock-free-term".to_string(),
        workers,
        seed,
        Policy::ContGreedy,
        FreeStrategy::LocalCollection,
        FabricMode::Blocking,
        Protocol::LockFree,
        1,
        ProgSpec {
            root: fib,
            arg: 8,
            expected: 21,
        },
    ));
    // The full runtime with K=2 probe rings under every protocol family —
    // the pipelined fabric keeps both probes genuinely in flight, so the
    // explorer can interleave owners into the probe/commit window.
    for protocol in Protocol::ALL {
        v.push(runtime_scenario(
            format!("multi-steal:{}", protocol.label()),
            workers,
            seed,
            Policy::ContGreedy,
            FreeStrategy::LocalCollection,
            FabricMode::Pipelined,
            protocol,
            2,
            ProgSpec {
                root: fib,
                arg: 8,
                expected: 21,
            },
        ));
    }
    v.push(bot_term_scenario("bot-term", workers, seed, FabricMode::Blocking));
    v.push(bot_term_scenario(
        "bot-term-pipelined",
        workers,
        seed,
        FabricMode::Pipelined,
    ));
    v.push(crash_recovery_scenario(
        "crash-recovery",
        workers,
        seed,
        Policy::ChildRtc,
        workers - 1,
    ));
    v.push(crash_recovery_scenario(
        "crash-recovery-greedy",
        workers,
        seed,
        Policy::ContGreedy,
        workers - 1,
    ));
    v.push(crash_recovery_scenario(
        "crash-recovery-stalling",
        workers,
        seed,
        Policy::ContStalling,
        workers - 1,
    ));
    // Worker 0 holds the root frame: killing it exercises re-election of the
    // root holder from the mirrored lineage record.
    v.push(crash_recovery_scenario(
        "crash-recovery-root",
        workers,
        seed,
        Policy::ContGreedy,
        0,
    ));
    v.push(crash_abort_scenario(workers, seed));
    // Imperfect failure detection: the zombie seam on the raw deque (plus
    // its planted-bug self-test) and the kill=none false-suspicion runs
    // that must stay result-identical to fault-free.
    v.push(zombie_steal_scenario("zombie-steal", 2, false));
    v.push(zombie_steal_scenario("broken-fence", 2, true));
    v.push(suspicion_scenario(
        "false-suspect-term",
        workers,
        seed,
        Policy::ContGreedy,
        VTime::MAX,
    ));
    v.push(suspicion_scenario(
        "rejoin-replay",
        workers,
        seed,
        Policy::ChildRtc,
        VTime::us(6),
    ));
    v
}

/// Look up one scenario by name (as printed by the catalog).
pub fn by_name(name: &str, workers: usize, seed: u64) -> Option<Scenario> {
    catalog(workers, seed).into_iter().find(|s| s.name == name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn native_schedule_is_clean_for_correct_scenarios() {
        for s in catalog(2, 1) {
            let rec = s.run_choices(&[]);
            if !s.expect_violation {
                assert!(
                    rec.violations.is_empty(),
                    "{} violated under the native schedule: {:?}",
                    s.name,
                    rec.violations
                );
            }
        }
    }

    #[test]
    fn scenario_runs_are_deterministic() {
        let s = by_name("deque-steal", 2, 1).unwrap();
        let a = s.run_choices(&[0, 1, 0, 2]);
        let b = s.run_choices(&[0, 1, 0, 2]);
        assert_eq!(a.taken, b.taken);
        assert_eq!(a.eligible, b.eligible);
        assert_eq!(a.violations, b.violations);
    }

    #[test]
    fn catalog_names_are_unique_and_resolvable() {
        let cat = catalog(3, 0);
        for s in &cat {
            assert!(by_name(&s.name, 3, 0).is_some(), "{} not resolvable", s.name);
        }
        let mut names: Vec<&str> = cat.iter().map(|s| s.name.as_str()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), cat.len());
    }
}

