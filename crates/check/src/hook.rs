//! Schedule controllers: the [`dcs_sim::ScheduleHook`] implementations the
//! checker drives runs with.
//!
//! Both hooks record the decision they actually made (after clamping) and
//! how many actors were eligible, so any explored run — including a
//! randomized PCT run — is replayable by feeding the recorded `taken` vector
//! back through a [`ControllerHook`].

use dcs_sim::{ScheduleHook, SimRng, VTime, WorkerId};

/// Replays a choice vector: decision `i` steps the actor at index
/// `choices[i]` (clamped) of the eligible list; missing entries default to 0
/// (the engine's native min-clock order).
pub struct ControllerHook<'a> {
    choices: &'a [u32],
    pos: usize,
    /// The clamped choice actually made at each decision.
    pub taken: Vec<u32>,
    /// Number of eligible actors at each decision — the branching factor
    /// the exhaustive explorer enumerates alternatives from.
    pub eligible: Vec<u32>,
}

impl<'a> ControllerHook<'a> {
    pub fn new(choices: &'a [u32]) -> ControllerHook<'a> {
        ControllerHook {
            choices,
            pos: 0,
            taken: Vec::new(),
            eligible: Vec::new(),
        }
    }
}

impl ScheduleHook for ControllerHook<'_> {
    fn choose(&mut self, eligible: &[(VTime, WorkerId)]) -> usize {
        let want = self.choices.get(self.pos).copied().unwrap_or(0) as usize;
        self.pos += 1;
        let idx = want.min(eligible.len() - 1);
        self.eligible.push(eligible.len() as u32);
        self.taken.push(idx as u32);
        idx
    }
}

/// PCT-style randomized priority scheduling (Burckhardt et al., ASPLOS '10):
/// every worker gets a random priority, the highest-priority eligible worker
/// runs, and at `depth - 1` random change points the running worker's
/// priority drops below everyone else's. Detects any bug of depth `d` with
/// probability ≥ 1/(n·k^(d-1)) per seed — and because `taken` records every
/// clamped decision, a failing PCT run replays exactly through a
/// [`ControllerHook`].
pub struct PctHook {
    /// Current priority per worker; the eligible worker with the highest
    /// value runs. Initialized to a random permutation.
    prio: Vec<u64>,
    /// Decision indices (sorted) at which the chosen worker's priority is
    /// dropped to a fresh minimum.
    change_at: Vec<u64>,
    decision: u64,
    next_low: u64,
    /// After this many decisions the hook reverts to the fair native order
    /// (index 0). Classic PCT assumes every runnable thread eventually
    /// halts; here an idle worker spins forever, so an unbounded priority
    /// schedule could starve the one worker everyone is waiting on. The
    /// cutoff keeps PCT's bug-finding window and guarantees termination.
    horizon: u64,
    /// The clamped choice made at each decision (replayable).
    pub taken: Vec<u32>,
}

impl PctHook {
    /// `horizon` is the expected decision-count scale of a run (the `k` of
    /// PCT); change points are drawn uniformly from `0..horizon`.
    pub fn new(workers: usize, seed: u64, depth: usize, horizon: u64) -> PctHook {
        let mut rng = SimRng::for_worker(seed, workers);
        // Random permutation of n..2n as initial priorities (leaves
        // 0..n free for change-point drops).
        let n = workers as u64;
        let mut prio: Vec<u64> = (n..2 * n).collect();
        for i in (1..prio.len()).rev() {
            let j = rng.below(i as u64 + 1) as usize;
            prio.swap(i, j);
        }
        let mut change_at: Vec<u64> = (0..depth.saturating_sub(1))
            .map(|_| rng.below(horizon.max(1)))
            .collect();
        change_at.sort_unstable();
        PctHook {
            prio,
            change_at,
            decision: 0,
            next_low: n,
            horizon: horizon.max(1),
            taken: Vec::new(),
        }
    }
}

impl ScheduleHook for PctHook {
    fn choose(&mut self, eligible: &[(VTime, WorkerId)]) -> usize {
        if self.decision >= self.horizon {
            self.decision += 1;
            self.taken.push(0);
            return 0;
        }
        let idx = eligible
            .iter()
            .enumerate()
            .max_by_key(|(_, (_, w))| self.prio[*w])
            .map(|(i, _)| i)
            .unwrap_or(0);
        if self.change_at.binary_search(&self.decision).is_ok() {
            // Change point: the running worker falls below everyone.
            self.next_low = self.next_low.saturating_sub(1);
            let (_, w) = eligible[idx];
            self.prio[w] = self.next_low;
        }
        self.decision += 1;
        self.taken.push(idx as u32);
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn elig(ws: &[usize]) -> Vec<(VTime, WorkerId)> {
        ws.iter().map(|&w| (VTime::ns(w as u64 + 1), w)).collect()
    }

    #[test]
    fn controller_replays_and_clamps() {
        let choices = [1, 9];
        let mut h = ControllerHook::new(&choices);
        assert_eq!(h.choose(&elig(&[0, 1, 2])), 1);
        assert_eq!(h.choose(&elig(&[0, 1])), 1, "9 clamps to len-1");
        assert_eq!(h.choose(&elig(&[0, 1])), 0, "missing choice defaults to 0");
        assert_eq!(h.taken, vec![1, 1, 0]);
        assert_eq!(h.eligible, vec![3, 2, 2]);
    }

    #[test]
    fn pct_is_deterministic_per_seed_and_replayable() {
        let run = |seed| {
            let mut h = PctHook::new(3, seed, 3, 100);
            let mut picks = Vec::new();
            for _ in 0..50 {
                picks.push(h.choose(&elig(&[0, 1, 2])));
            }
            (picks, h.taken)
        };
        let (a, taken) = run(7);
        let (b, _) = run(7);
        assert_eq!(a, b, "same seed, same schedule");
        // Replay through a ControllerHook reproduces the decisions.
        let mut r = ControllerHook::new(&taken);
        let replay: Vec<usize> = (0..50).map(|_| r.choose(&elig(&[0, 1, 2]))).collect();
        assert_eq!(replay, a);
    }

    #[test]
    fn pct_seeds_differ() {
        let picks = |seed| {
            let mut h = PctHook::new(4, seed, 4, 200);
            (0..60)
                .map(|_| h.choose(&elig(&[0, 1, 2, 3])))
                .collect::<Vec<_>>()
        };
        assert_ne!(picks(1), picks(2));
    }
}
