//! `dcs-check`: a schedule-exploration concurrency checker for the
//! one-sided protocols.
//!
//! The deterministic engine makes every run a function of its schedule; the
//! [`dcs_sim::ScheduleHook`] seam makes the schedule an input. This crate
//! closes the loop: it enumerates (or samples) schedules, drives the *real*
//! `dcs-core`/`dcs-bot` protocol code under each one, and checks protocol
//! oracles after every run:
//!
//! 1. **Deque linearizability** — every pushed item is popped or stolen
//!    exactly once, the owner sees LIFO order, thieves see FIFO-from-top,
//!    and nobody observes a dead ring slot.
//! 2. **Memory safety** — no double frees and no leaks at end of run (the
//!    invariant watchdog's `DoubleFree`/`Leak` violations).
//! 3. **Join-race outcomes** — programs return the right value under every
//!    explored interleaving of the DIE fast path vs. steals.
//! 4. **Termination** — the BoT token detector only fires when
//!    `created == consumed` and no bag still holds work.
//!
//! Exploration is exhaustive delay-bounded DFS ([`explore::explore_exhaustive`])
//! for small configurations and PCT-style randomized priority sampling
//! ([`hook::PctHook`]) for larger ones. Failing schedules are greedily
//! minimized ([`explore::minimize`]) and serialized as replayable
//! [`schedule::Schedule`] files (`dcs check --schedule <file>`).
//!
//! See `docs/PROTOCOLS.md` ("Schedule exploration") for the full story.

pub mod explore;
pub mod hook;
pub mod scenarios;
pub mod schedule;

pub use explore::{explore_exhaustive, explore_pct, minimize, ExploreOutcome, Finding, RunRecord};
pub use hook::{ControllerHook, PctHook};
pub use scenarios::{by_name, catalog, Scenario};
pub use schedule::Schedule;
