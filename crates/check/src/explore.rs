//! Schedule exploration: exhaustive delay-bounded search, PCT sampling, and
//! greedy reproducer minimization.
//!
//! Exploration treats a scenario as a deterministic function from a choice
//! vector to a [`RunRecord`]. A choice vector is interpreted by
//! [`crate::hook::ControllerHook`]: entry `i` picks which eligible actor
//! steps at decision `i` (0 = the engine's native min-clock order), so the
//! all-zero vector is the unperturbed run and every non-zero entry is one
//! *delay* of the actor the engine would have run.

/// What one explored run did.
#[derive(Clone, Debug, Default)]
pub struct RunRecord {
    /// Eligible-actor count at each decision (branching factor).
    pub eligible: Vec<u32>,
    /// Clamped choice actually made at each decision.
    pub taken: Vec<u32>,
    /// Oracle violations (empty = clean run). Panics inside the scenario
    /// are converted to a `panic: ...` entry by the scenario wrapper.
    pub violations: Vec<String>,
}

impl RunRecord {
    pub fn failed(&self) -> bool {
        !self.violations.is_empty()
    }
}

/// A failing schedule found during exploration.
#[derive(Clone, Debug)]
pub struct Finding {
    /// Choice vector that provoked the failure (not yet minimized).
    pub choices: Vec<u32>,
    pub violations: Vec<String>,
}

/// Exploration summary.
#[derive(Clone, Debug)]
pub struct ExploreOutcome {
    /// Schedules actually run.
    pub schedules: u64,
    /// True when the delay-bounded space was fully enumerated within the
    /// budget (exhaustive mode) or all seeds ran (PCT mode).
    pub complete: bool,
    pub findings: Vec<Finding>,
}

/// Cap on findings kept per exploration: enough to diagnose, and stopping
/// early keeps a badly broken scenario from burning the whole budget.
const MAX_FINDINGS: usize = 8;

/// Exhaustively enumerate all schedules with at most `delays` non-default
/// decisions (delay-bounded systematic testing, à la CHESS). `run` must be
/// deterministic in its choice vector. Stops early after [`MAX_FINDINGS`]
/// failures or `budget` runs (reported via `complete`).
pub fn explore_exhaustive(
    run: &dyn Fn(&[u32]) -> RunRecord,
    delays: usize,
    budget: u64,
) -> ExploreOutcome {
    let mut schedules = 0u64;
    let mut findings = Vec::new();
    let mut complete = true;
    // DFS over deviation prefixes: each stack entry is (choice prefix,
    // delays already spent, first position new deviations may be placed at).
    let mut stack: Vec<(Vec<u32>, usize, usize)> = vec![(Vec::new(), 0, 0)];
    while let Some((prefix, spent, from)) = stack.pop() {
        if schedules >= budget {
            complete = false;
            break;
        }
        schedules += 1;
        let rec = run(&prefix);
        if rec.failed() {
            findings.push(Finding {
                choices: prefix.clone(),
                violations: rec.violations.clone(),
            });
            if findings.len() >= MAX_FINDINGS {
                complete = false;
                break;
            }
        }
        if spent >= delays {
            continue;
        }
        // Branch: at every decision at or past `from`, try each non-default
        // alternative. `rec.taken` extends `prefix` with the defaults this
        // run actually took, so child prefixes replay identically up to the
        // deviation point.
        for i in from..rec.eligible.len() {
            let base: Vec<u32> = if i < prefix.len() {
                prefix[..i].to_vec()
            } else {
                let mut b = prefix.clone();
                b.extend_from_slice(&rec.taken[prefix.len()..i]);
                b
            };
            for alt in 1..rec.eligible[i] {
                if i < prefix.len() && prefix[i] == alt {
                    continue; // that's this very prefix
                }
                let mut child = base.clone();
                child.push(alt);
                stack.push((child, spent + 1, i + 1));
            }
        }
    }
    ExploreOutcome {
        schedules,
        complete,
        findings,
    }
}

/// Sample `seeds` PCT schedules (see [`crate::hook::PctHook`]); `run_seed`
/// maps a seed to the record of that randomized run. Failing seeds are
/// reported with their *recorded* decision vector, so they replay through
/// [`crate::hook::ControllerHook`] without the randomness.
pub fn explore_pct(run_seed: &dyn Fn(u64) -> RunRecord, seeds: u64) -> ExploreOutcome {
    let mut findings = Vec::new();
    let mut schedules = 0u64;
    let mut complete = true;
    for seed in 0..seeds {
        schedules += 1;
        let rec = run_seed(seed);
        if rec.failed() {
            // Trailing 0s are the native order the replay hook defaults to
            // anyway — trimming them keeps long-run reproducers readable.
            let mut choices = rec.taken.clone();
            while choices.last() == Some(&0) {
                choices.pop();
            }
            findings.push(Finding {
                choices,
                violations: rec.violations.clone(),
            });
            if findings.len() >= MAX_FINDINGS {
                complete = false;
                break;
            }
        }
    }
    ExploreOutcome {
        schedules,
        complete,
        findings,
    }
}

/// Greedily shrink a failing choice vector: zero out one deviation at a
/// time (left to right, to fixpoint), re-running after each candidate to
/// confirm the failure survives, then drop the trailing defaults (a missing
/// choice and a 0 choice are the same schedule). The result is the schedule
/// with the fewest deviations this greedy walk can reach — small enough to
/// read, exact enough to replay.
pub fn minimize(run: &dyn Fn(&[u32]) -> RunRecord, failing: &[u32]) -> Vec<u32> {
    debug_assert!(run(failing).failed(), "minimize needs a failing schedule");
    let mut cur = failing.to_vec();
    loop {
        let mut changed = false;
        for i in 0..cur.len() {
            if cur[i] == 0 {
                continue;
            }
            let mut cand = cur.clone();
            cand[i] = 0;
            if run(&cand).failed() {
                cur = cand;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    while cur.last() == Some(&0) {
        cur.pop();
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Synthetic scenario: `decisions` scheduling points, 2 eligible actors
    /// at each; fails iff the choice at `bug_at` deviates (models a
    /// depth-1 interleaving bug).
    fn toy(decisions: usize, bug_at: usize) -> impl Fn(&[u32]) -> RunRecord {
        move |choices: &[u32]| {
            let taken: Vec<u32> = (0..decisions)
                .map(|i| choices.get(i).copied().unwrap_or(0).min(1))
                .collect();
            let violations = if taken[bug_at] == 1 {
                vec!["boom".to_string()]
            } else {
                vec![]
            };
            RunRecord {
                eligible: vec![2; decisions],
                taken,
                violations,
            }
        }
    }

    #[test]
    fn exhaustive_visits_the_whole_delay1_space() {
        let run = toy(6, 4);
        let out = explore_exhaustive(&run, 1, 10_000);
        assert!(out.complete);
        // Delay bound 1 over 6 binary decisions: 1 default + 6 deviations.
        assert_eq!(out.schedules, 7);
        assert_eq!(out.findings.len(), 1);
        assert_eq!(out.findings[0].choices, vec![0, 0, 0, 0, 1]);
    }

    #[test]
    fn exhaustive_finds_depth2_bugs_only_at_delay2() {
        // Fails only when decisions 1 AND 3 both deviate.
        let run = |choices: &[u32]| {
            let taken: Vec<u32> = (0..5)
                .map(|i| choices.get(i).copied().unwrap_or(0).min(1))
                .collect();
            let violations = if taken[1] == 1 && taken[3] == 1 {
                vec!["depth-2".to_string()]
            } else {
                vec![]
            };
            RunRecord {
                eligible: vec![2; 5],
                taken,
                violations,
            }
        };
        assert!(explore_exhaustive(&run, 1, 10_000).findings.is_empty());
        let out = explore_exhaustive(&run, 2, 10_000);
        assert!(out.complete);
        assert_eq!(out.findings.len(), 1);
    }

    #[test]
    fn budget_truncation_is_reported() {
        let run = toy(10, 9);
        let out = explore_exhaustive(&run, 2, 5);
        assert!(!out.complete);
        assert_eq!(out.schedules, 5);
    }

    #[test]
    fn minimize_shrinks_to_the_essential_deviation() {
        let run = toy(8, 3);
        let noisy = vec![1, 0, 1, 1, 0, 1, 1, 0];
        assert!(run(&noisy).failed());
        assert_eq!(minimize(&run, &noisy), vec![0, 0, 0, 1]);
    }

    #[test]
    fn pct_records_are_replayable_findings() {
        // Seed is "the schedule": fail on even seeds.
        let run_seed = |seed: u64| RunRecord {
            eligible: vec![2; 3],
            taken: vec![seed as u32 % 2; 3],
            violations: if (seed & 1) == 0 {
                vec!["even".into()]
            } else {
                vec![]
            },
        };
        let out = explore_pct(&run_seed, 5);
        assert_eq!(out.schedules, 5);
        assert_eq!(out.findings.len(), 3);
        // All-default decisions trim to the empty (native) schedule.
        assert_eq!(out.findings[0].choices, Vec::<u32>::new());
    }
}
