//! Adversarial interleaving tests: the checker explores schedules against
//! the real protocol code and (a) proves the shipped protocols hold under
//! every delay-bounded interleaving of the small configurations, and
//! (b) proves the checker would have caught the historical steal-ordering
//! bug — with a minimized, serialized, replayable reproducer.

use dcs_check::{by_name, explore_exhaustive, explore_pct, minimize, Schedule};

/// The self-test: recompose `thief_take` with the lock released *before*
/// the top advance (the pre-fix ordering) and the checker must catch the
/// owner observing a dead ring slot — then minimize the failing schedule,
/// serialize it, parse it back, and reproduce the failure from the file.
#[test]
fn broken_release_is_caught_minimized_and_replayable() {
    let s = by_name("broken-release", 2, 1).expect("scenario exists");
    assert!(s.expect_violation);
    let run = |choices: &[u32]| s.run_choices(choices);

    let out = explore_exhaustive(&run, 2, 5_000);
    assert!(
        !out.findings.is_empty(),
        "exploration must flush out the wrong release order"
    );
    let finding = &out.findings[0];
    assert!(
        finding.violations.iter().any(|v| v.contains("dead ring slot")),
        "the violation is the dead-slot window: {:?}",
        finding.violations
    );

    // Minimize, serialize, re-parse, replay.
    let min = minimize(&run, &finding.choices);
    assert!(min.len() <= finding.choices.len());
    let sched = Schedule {
        scenario: s.name.clone(),
        workers: s.workers,
        seed: 1,
        choices: min,
    };
    let text = sched.to_string();
    let parsed = Schedule::parse(&text).expect("own output parses");
    assert_eq!(parsed, sched);

    let replayed = by_name(&parsed.scenario, parsed.workers, parsed.seed)
        .expect("serialized scenario resolves");
    let rec = replayed.run_choices(&parsed.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("dead ring slot")),
        "replaying the minimized schedule reproduces the bug: {:?}",
        rec.violations
    );
}

/// The shipped steal composition (top advanced no later than the lock
/// release) survives *every* schedule with up to 3 delays: no dead slots,
/// exact-once delivery, LIFO for the owner, FIFO-from-top for the thief.
#[test]
fn fixed_steal_survives_exhaustive_exploration() {
    let s = by_name("deque-steal", 2, 1).unwrap();
    let out = explore_exhaustive(&|c| s.run_choices(c), 3, 50_000);
    assert!(out.complete, "delay-3 space must fit the budget");
    assert!(
        out.findings.is_empty(),
        "correct protocol has no failing schedule: {:?}",
        out.findings
    );
    assert!(out.schedules > 50, "exploration actually branched");
}

/// Fig. 4 DIE fast path vs. steal on a one-item deque: the root forks a
/// single child and immediately tries to pop it back (owner_pop_parent)
/// while the other worker steals. Exhaustively explored (delay bound 2)
/// under every Policy × FreeStrategy pair — the join must resolve to the
/// right value with no protocol violations or leaks on every schedule.
#[test]
fn single_steal_one_item_race_all_policies_and_strategies() {
    for policy in ["greedy", "stalling", "child-full", "child-rtc"] {
        for strategy in ["lockq", "localc"] {
            let name = format!("single-steal:{policy}:{strategy}");
            let s = by_name(&name, 2, 1).expect("catalog covers all pairs");
            let out = explore_exhaustive(&|c| s.run_choices(c), 2, 20_000);
            assert!(out.complete, "{name}: delay-2 space must fit the budget");
            assert!(
                out.findings.is_empty(),
                "{name} violated under schedule {:?}: {:?}",
                out.findings[0].choices,
                out.findings[0].violations
            );
        }
    }
}

/// Termination-layer sweep: the Mattern-style token detector on a micro UTS
/// tree, under exhaustive delay-2 exploration and a PCT sample. Termination
/// must stay safe (created == consumed, no resident work) and exact
/// (serial node count) on every explored schedule — this pins the analysis
/// that the token protocol's per-step atomicity and forwarded-round dedup
/// close the classic late-steal race.
#[test]
fn bot_termination_survives_exploration() {
    let s = by_name("bot-term", 2, 1).unwrap();
    let out = explore_exhaustive(&|c| s.run_choices(c), 2, 10_000);
    assert!(out.complete);
    assert!(
        out.findings.is_empty(),
        "termination violated: {:?}",
        out.findings
    );

    let s3 = by_name("bot-term", 3, 1).unwrap();
    let out = explore_pct(&|seed| s3.run_pct(seed, 3, 256), 50);
    assert!(
        out.findings.is_empty(),
        "termination violated under PCT: {:?}",
        out.findings
    );
}

/// The pipelined steal composition: the lock-release put and the payload
/// get are posted together and reaped one engine step later, so the owner
/// can interleave between post and completion. Exhaustive delay-3
/// exploration must find no dead slots, no lost or duplicated items, and no
/// unreaped completions (the overlap-race oracle) on ANY schedule.
#[test]
fn pipelined_steal_survives_exhaustive_exploration() {
    let s = by_name("deque-steal-pipelined", 2, 1).unwrap();
    let out = explore_exhaustive(&|c| s.run_choices(c), 3, 50_000);
    assert!(out.complete, "delay-3 space must fit the budget");
    assert!(
        out.findings.is_empty(),
        "pipelined steal has no failing schedule: {:?}",
        out.findings
    );
    assert!(out.schedules > 50, "exploration actually branched");
}

/// The join race under the Pipelined fabric, every policy: retval puts
/// overlap flag AMOs and steals split into post + reap steps, so the
/// explorer interleaves at completion time too. The join must still resolve
/// to the right value with no watchdog findings on every schedule.
#[test]
fn pipelined_single_steal_race_all_policies() {
    for policy in ["greedy", "stalling", "child-full", "child-rtc"] {
        let name = format!("single-steal-pipelined:{policy}");
        let s = by_name(&name, 2, 1).expect("catalog covers all policies");
        let out = explore_exhaustive(&|c| s.run_choices(c), 2, 20_000);
        assert!(out.complete, "{name}: delay-2 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );
    }
}

/// BoT termination with the pipelined steal-half (size put ∥ payload get):
/// the token detector must stay safe and exact on every explored schedule.
#[test]
fn pipelined_bot_termination_survives_exploration() {
    let s = by_name("bot-term-pipelined", 2, 1).unwrap();
    let out = explore_exhaustive(&|c| s.run_choices(c), 2, 10_000);
    assert!(out.complete);
    assert!(
        out.findings.is_empty(),
        "termination violated: {:?}",
        out.findings
    );
}

/// The checked-in pipelined overlap-window schedule: a recorded
/// interleaving where the owner's pop lands inside a thief's post-to-reap
/// window. Replaying it must stay clean — if a regression reopens the
/// window (e.g. the top advance moves after the posts again), this fixture
/// catches it without re-running exploration.
#[test]
fn checked_in_pipelined_overlap_schedule_stays_clean() {
    let text = include_str!("schedules/deque-steal-pipelined.schedule");
    let sched = Schedule::parse(text).expect("fixture parses");
    assert_eq!(sched.scenario, "deque-steal-pipelined");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.is_empty(),
        "overlap-window schedule regressed: {:?}",
        rec.violations
    );
}

/// The checked-in pipelined join-race schedule for the greedy policy (the
/// Fig. 4 race with retval put ∥ flag FAA posted together).
#[test]
fn checked_in_pipelined_join_race_schedule_stays_clean() {
    let text = include_str!("schedules/single-steal-pipelined-greedy.schedule");
    let sched = Schedule::parse(text).expect("fixture parses");
    assert_eq!(sched.scenario, "single-steal-pipelined:greedy");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.is_empty(),
        "join-race schedule regressed: {:?}",
        rec.violations
    );
}

/// The checked-in regression schedule (found and minimized by the checker)
/// still reproduces the wrong-release-order bug from its serialized form —
/// the end-to-end path a CI artifact takes back to a developer's machine.
#[test]
fn checked_in_regression_schedule_reproduces() {
    let text = include_str!("schedules/broken-release.schedule");
    let sched = Schedule::parse(text).expect("regression schedule parses");
    assert_eq!(sched.scenario, "broken-release");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("dead ring slot")),
        "regression schedule no longer reproduces: {:?}",
        rec.violations
    );
}

/// The fence-free multiplicity oracle, exhaustively: the read/write-only
/// steal pipeline (bounds read → entry get → claim-write) races the owner's
/// pops on every delay-3 interleaving at 2 workers and delay-2 at 3 — every
/// pushed task must be executed exactly once and taken at most k times,
/// with no corrupt slots, lost items, or leaked tickets.
#[test]
fn fence_free_steal_survives_exhaustive_exploration() {
    let s = by_name("fence-free-steal", 2, 1).unwrap();
    let out = explore_exhaustive(&|c| s.run_choices(c), 3, 50_000);
    assert!(out.complete, "delay-3 space must fit the budget");
    assert!(
        out.findings.is_empty(),
        "fence-free steal has no failing schedule: {:?}",
        out.findings
    );
    // Without a lock-retry loop the runs are short, so the space is smaller
    // than the CAS-lock scenario's — but it must still branch.
    assert!(out.schedules > 20, "exploration actually branched");

    // Three workers: two concurrent thieves can race the same occupancy,
    // so the Dup path (bounded multiplicity) is reachable here.
    let s3 = by_name("fence-free-steal", 3, 1).unwrap();
    let out = explore_exhaustive(&|c| s3.run_choices(c), 2, 50_000);
    assert!(out.complete, "delay-2 space at 3 workers must fit the budget");
    assert!(
        out.findings.is_empty(),
        "fence-free steal violated at 3 workers: {:?}",
        out.findings
    );
    assert!(out.schedules > 100, "the two-thief space is the larger one");
}

/// The self-test for the multiplicity oracle: recompose the thief with a
/// claim-write that arbitrates against a private set (reaches nobody), and
/// the checker must catch a task executing twice — then minimize the
/// failing schedule, serialize it, and reproduce the failure from the file.
#[test]
fn broken_claim_is_caught_minimized_and_replayable() {
    let s = by_name("broken-claim", 2, 1).expect("scenario exists");
    assert!(s.expect_violation);
    let run = |choices: &[u32]| s.run_choices(choices);

    let out = explore_exhaustive(&run, 2, 5_000);
    assert!(
        !out.findings.is_empty(),
        "exploration must flush out the no-op claim-write"
    );
    let finding = &out.findings[0];
    assert!(
        finding.violations.iter().any(|v| v.contains("multiplicity")),
        "the violation is a multiplicity breach: {:?}",
        finding.violations
    );

    let min = minimize(&run, &finding.choices);
    assert!(min.len() <= finding.choices.len());
    let sched = Schedule {
        scenario: s.name.clone(),
        workers: s.workers,
        seed: 1,
        choices: min,
    };
    let text = sched.to_string();
    let parsed = Schedule::parse(&text).expect("own output parses");
    assert_eq!(parsed, sched);

    let replayed = by_name(&parsed.scenario, parsed.workers, parsed.seed)
        .expect("serialized scenario resolves");
    let rec = replayed.run_choices(&parsed.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("multiplicity")),
        "replaying the minimized schedule reproduces the bug: {:?}",
        rec.violations
    );
}

/// The full runtime stealing fence-free: the one-item Fig. 4 race under
/// every policy, and fork-join termination in both fabric modes (finalize
/// must reclaim thief-claimed slots on every schedule or the leak oracle
/// fires). The lock-free family rides along for contrast.
#[test]
fn fence_free_runtime_survives_exploration() {
    for name in [
        "single-steal-ff:greedy",
        "single-steal-ff:stalling",
        "single-steal-ff:child-full",
        "single-steal-ff:child-rtc",
    ] {
        let s = by_name(name, 2, 1).expect("catalog covers all policies");
        let out = explore_exhaustive(&|c| s.run_choices(c), 2, 20_000);
        assert!(out.complete, "{name}: delay-2 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );
    }
    for name in ["fence-free-term", "fence-free-term-pipelined", "lock-free-term"] {
        let s = by_name(name, 2, 1).expect("scenario exists");
        let out = explore_exhaustive(&|c| s.run_choices(c), 1, 10_000);
        assert!(out.complete, "{name}: delay-1 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );
    }
}

/// PCT sample of the fence-free scenarios at 3 workers (two thieves racing
/// one ring makes the Dup path live) — the fast counterpart of the wide
/// 8-worker sweep below.
#[test]
fn fence_free_survives_pct_sample() {
    for (name, horizon) in [("fence-free-steal", 128), ("fence-free-term", 512)] {
        let s = by_name(name, 3, 1).unwrap();
        let out = explore_pct(&|seed| s.run_pct(seed, 3, horizon), 50);
        assert!(
            out.findings.is_empty(),
            "{name} violated under PCT: {:?}",
            out.findings
        );
    }
}

/// Acceptance-scale sweep for the fence-free family: 500 PCT seeds at 8
/// workers. Slow, so it only runs under `--ignored` — CI's checker job
/// includes it.
#[test]
#[ignore = "acceptance-scale sweep; run with --ignored (CI does)"]
fn fence_free_survives_wide_pct() {
    for (name, horizon) in [("fence-free-steal", 256), ("fence-free-term", 512)] {
        let s = by_name(name, 8, 1).expect("scenario exists");
        let out = explore_pct(&|seed| s.run_pct(seed, 3, horizon), 500);
        assert!(
            out.findings.is_empty(),
            "{name} violated under wide PCT: {:?}",
            out.findings
        );
    }
}

/// The checked-in broken-claim reproducer (found and minimized by
/// `broken_claim_is_caught_minimized_and_replayable`'s machinery) still
/// reproduces the double execution from its serialized form.
#[test]
fn checked_in_broken_claim_schedule_reproduces() {
    let text = include_str!("schedules/broken-claim.schedule");
    let sched = Schedule::parse(text).expect("regression schedule parses");
    assert_eq!(sched.scenario, "broken-claim");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("multiplicity")),
        "broken-claim schedule no longer reproduces: {:?}",
        rec.violations
    );
}

/// The checked-in fence-free dup-window schedule: a recorded 3-worker
/// interleaving where two thieves race the same occupancy and one pays the
/// bounded-multiplicity dup. Replaying it must stay clean — if the claim
/// arbitration regresses (e.g. the dedup moves after the payload copy
/// without revalidation), this fixture catches it without re-exploring.
#[test]
fn checked_in_fence_free_dup_schedule_stays_clean() {
    let text = include_str!("schedules/fence-free-steal.schedule");
    let sched = Schedule::parse(text).expect("fixture parses");
    assert_eq!(sched.scenario, "fence-free-steal");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.is_empty(),
        "fence-free dup-window schedule regressed: {:?}",
        rec.violations
    );
}

/// PCT runs replay exactly: the recorded decision vector of a randomized
/// run, fed back through the deterministic controller, reproduces the same
/// outcome. This is what makes CI's randomized findings actionable.
#[test]
fn pct_runs_replay_deterministically() {
    let s = by_name("deque-steal", 3, 1).unwrap();
    for seed in 0..10 {
        let pct = s.run_pct(seed, 3, 64);
        let replay = s.run_choices(&pct.taken);
        assert_eq!(
            pct.violations, replay.violations,
            "seed {seed}: replay diverged"
        );
    }
}

/// Fail-stop crash oracles under exploration. The `crash-recovery*` family
/// loses a worker mid-run on every schedule and must still produce the
/// exact fault-free answer (continuation-lineage replay + done-flag dedup):
/// ChildRtc replays stolen child descriptors, the continuation policies
/// replay forked continuation frames (the Fig. 4 FAA race and the stalling
/// wait queues must converge through the buddy mirror), and the `-root`
/// variant kills worker 0 so the root holder is re-elected. `crash-abort`
/// loses a ChildFull worker and must end in a typed unrecoverable
/// diagnostic, never a wedge or a wrong answer. Exhaustive at delay bound 1
/// on 2 workers, PCT-sampled at 3; the wider 500-seed PCT sweep at 8
/// workers is `crash_oracles_survive_wide_pct` below, which CI also drives
/// through the `dcs check` binary.
const CRASH_SCENARIOS: [&str; 5] = [
    "crash-recovery",
    "crash-recovery-greedy",
    "crash-recovery-stalling",
    "crash-recovery-root",
    "crash-abort",
];

#[test]
fn crash_oracles_survive_exploration() {
    for name in CRASH_SCENARIOS {
        let s = by_name(name, 2, 1).expect("scenario exists");
        let out = explore_exhaustive(&|c| s.run_choices(c), 1, 6_000);
        assert!(out.complete, "{name}: delay-1 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );

        let s3 = by_name(name, 3, 1).unwrap();
        let out = explore_pct(&|seed| s3.run_pct(seed, 3, 512), 40);
        assert!(
            out.findings.is_empty(),
            "{name} violated under PCT: {:?}",
            out.findings
        );
    }
}

/// The acceptance-scale sweep: 500 PCT seeds at 8 workers for every crash
/// oracle. Slow (minutes), so it only runs when asked for by name or under
/// `--ignored` — CI's checker job includes it.
#[test]
#[ignore = "acceptance-scale sweep; run with --ignored (CI does)"]
fn crash_oracles_survive_wide_pct() {
    for name in CRASH_SCENARIOS {
        let s = by_name(name, 8, 1).expect("scenario exists");
        let out = explore_pct(&|seed| s.run_pct(seed, 3, 512), 500);
        assert!(
            out.findings.is_empty(),
            "{name} violated under wide PCT: {:?}",
            out.findings
        );
    }
}

/// Checked-in crash-recovery schedules: recorded hostile interleavings
/// (kill lands mid-steal / mid-join) for each recoverable policy family.
/// Replaying them must stay clean — a regression in lineage replay, the
/// join-counter repair, or root re-election trips these without re-running
/// exploration.
#[test]
fn checked_in_crash_recovery_schedules_stay_clean() {
    for text in [
        include_str!("schedules/crash-recovery-greedy.schedule"),
        include_str!("schedules/crash-recovery-stalling.schedule"),
        include_str!("schedules/crash-recovery-root.schedule"),
    ] {
        let sched = Schedule::parse(text).expect("fixture parses");
        let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
        let rec = s.run_choices(&sched.choices);
        assert!(
            rec.violations.is_empty(),
            "{} schedule regressed: {:?}",
            sched.scenario,
            rec.violations
        );
    }
}

/// The multi-steal probe ring against the raw deque: two owners drain
/// LIFO while thieves keep a 2-victim probe ring in flight, commit the
/// first ready victim in ring order, and cancel the rest. Exhaustive at
/// delay bound 2 on 3 workers, in both fabric shapes. The oracles that
/// matter here are the cancellation ones: a won-but-unused lock left set
/// trips the abandoned-lock check at end of run, and a double commit
/// trips the shadow-queue mismatch.
#[test]
fn multi_steal_probe_survives_exhaustive_exploration() {
    for name in ["multi-steal-probe", "multi-steal-probe-pipelined"] {
        let s = by_name(name, 3, 1).expect("scenario exists");
        let out = explore_exhaustive(&|c| s.run_choices(c), 2, 50_000);
        assert!(out.complete, "{name}: delay-2 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );
        assert!(out.schedules > 50, "{name}: exploration actually branched");
    }
}

/// The fence-free flavor of the probe ring: nothing is locked during the
/// probe, so there is nothing to cancel — the ring winner alone runs the
/// claim-write arbitration, and the multiplicity ledger plus the ticket
/// leak oracle ("double claim?") stand in for the lock checks.
#[test]
fn multi_steal_ff_survives_exhaustive_exploration() {
    let s = by_name("multi-steal-ff", 3, 1).expect("scenario exists");
    let out = explore_exhaustive(&|c| s.run_choices(c), 2, 50_000);
    assert!(out.complete, "delay-2 space must fit the budget");
    assert!(
        out.findings.is_empty(),
        "multi-steal-ff violated under schedule {:?}: {:?}",
        out.findings[0].choices,
        out.findings[0].violations
    );
}

/// The full runtime with K=2 probe rings on the pipelined fabric, one
/// catalog entry per protocol family: fib(8) must come out exact on every
/// delay-1 interleaving at 2 workers and across a PCT sample at 3, with
/// the leak/stall oracles green — the end-to-end proof that abandoning a
/// ready victim never strands its lock or its items.
const MULTI_STEAL_RUNTIME: [&str; 3] = [
    "multi-steal:cas-lock",
    "multi-steal:lock-free",
    "multi-steal:fence-free",
];

#[test]
fn multi_steal_runtime_survives_exploration() {
    for name in MULTI_STEAL_RUNTIME {
        let s = by_name(name, 2, 1).expect("catalog covers all protocols");
        let out = explore_exhaustive(&|c| s.run_choices(c), 1, 10_000);
        assert!(out.complete, "{name}: delay-1 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );

        let s3 = by_name(name, 3, 1).unwrap();
        let out = explore_pct(&|seed| s3.run_pct(seed, 3, 512), 40);
        assert!(
            out.findings.is_empty(),
            "{name} violated under PCT: {:?}",
            out.findings
        );
    }
}

/// Acceptance-scale sweep for multi-steal: 500 PCT seeds at 8 workers for
/// the probe-ring scenarios and every runtime protocol. Slow, so it only
/// runs under `--ignored` — CI's checker job includes it.
#[test]
#[ignore = "acceptance-scale sweep; run with --ignored (CI does)"]
fn multi_steal_survives_wide_pct() {
    let mut names = vec!["multi-steal-probe", "multi-steal-probe-pipelined", "multi-steal-ff"];
    names.extend(MULTI_STEAL_RUNTIME);
    for name in names {
        let s = by_name(name, 8, 1).expect("scenario exists");
        let out = explore_pct(&|seed| s.run_pct(seed, 3, 512), 500);
        assert!(
            out.findings.is_empty(),
            "{name} violated under wide PCT: {:?}",
            out.findings
        );
    }
}

/// Checked-in multi-steal schedules: a recorded pipelined probe-ring
/// interleaving where both thieves' rings overlap the owners' drains, and
/// a fence-free ring race. Replaying them must stay clean — if the cancel
/// path regresses (a loser's lock kept, a ring winner double-claiming),
/// these fixtures catch it without re-exploring.
#[test]
fn checked_in_multi_steal_schedules_stay_clean() {
    for text in [
        include_str!("schedules/multi-steal-probe-pipelined.schedule"),
        include_str!("schedules/multi-steal-ff.schedule"),
    ] {
        let sched = Schedule::parse(text).expect("fixture parses");
        let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
        let rec = s.run_choices(&sched.choices);
        assert!(
            rec.violations.is_empty(),
            "{} schedule regressed: {:?}",
            sched.scenario,
            rec.violations
        );
    }
}

/// The shipped zombie seam: an eviction (epoch bump + stale-lock break)
/// lands in the window between a live thief's lock and its take, and the
/// thief's self-fence must abandon the steal on EVERY schedule — no task
/// taken by an evicted incarnation, no dead slots, no lost items.
#[test]
fn zombie_steal_survives_exhaustive_exploration() {
    let s = by_name("zombie-steal", 3, 1).expect("scenario exists");
    let out = explore_exhaustive(&|c| s.run_choices(c), 2, 50_000);
    assert!(out.complete, "delay-2 space must fit the budget");
    assert!(
        out.findings.is_empty(),
        "zombie-steal violated under schedule {:?}: {:?}",
        out.findings[0].choices,
        out.findings[0].violations
    );
    assert!(out.schedules > 50, "exploration actually branched");
}

/// The planted fencing bug: remove the epoch check from the take-verb
/// class and the two-epochs oracle must catch the zombie completing its
/// steal after eviction — then minimize the schedule, serialize it, parse
/// it back, and reproduce the failure from the file.
#[test]
fn broken_fence_is_caught_minimized_and_replayable() {
    let s = by_name("broken-fence", 3, 1).expect("scenario exists");
    assert!(s.expect_violation);
    let run = |choices: &[u32]| s.run_choices(choices);

    let out = explore_exhaustive(&run, 2, 50_000);
    assert!(
        !out.findings.is_empty(),
        "exploration must flush out the missing epoch fence"
    );
    let finding = &out.findings[0];
    assert!(
        finding.violations.iter().any(|v| v.contains("evicted incarnation")),
        "the violation is the two-epochs breach: {:?}",
        finding.violations
    );

    let min = minimize(&run, &finding.choices);
    assert!(min.len() <= finding.choices.len());
    let sched = Schedule {
        scenario: s.name.clone(),
        workers: s.workers,
        seed: 1,
        choices: min,
    };
    let text = sched.to_string();
    let parsed = Schedule::parse(&text).expect("own output parses");
    assert_eq!(parsed, sched);

    let replayed = by_name(&parsed.scenario, parsed.workers, parsed.seed)
        .expect("serialized scenario resolves");
    let rec = replayed.run_choices(&parsed.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("evicted incarnation")),
        "replaying the minimized schedule reproduces the bug: {:?}",
        rec.violations
    );
}

/// Full-runtime suspicion oracles under exploration: kill=none plus an
/// aggressive suspect lease and a degraded worker-1 NIC. Whatever the
/// schedule does to the eviction/rejoin timing, the answer must equal the
/// fault-free one with no worker counted as genuinely lost.
const SUSPICION_SCENARIOS: [&str; 2] = ["false-suspect-term", "rejoin-replay"];

#[test]
fn suspicion_oracles_survive_exploration() {
    for name in SUSPICION_SCENARIOS {
        let s = by_name(name, 2, 1).expect("scenario exists");
        let out = explore_exhaustive(&|c| s.run_choices(c), 1, 6_000);
        assert!(out.complete, "{name}: delay-1 space must fit the budget");
        assert!(
            out.findings.is_empty(),
            "{name} violated under schedule {:?}: {:?}",
            out.findings[0].choices,
            out.findings[0].violations
        );

        let s3 = by_name(name, 3, 1).unwrap();
        let out = explore_pct(&|seed| s3.run_pct(seed, 3, 512), 40);
        assert!(
            out.findings.is_empty(),
            "{name} violated under PCT: {:?}",
            out.findings
        );
    }
}

/// Acceptance-scale zombie sweep: 500 PCT seeds at 8 workers for the
/// suspicion runtime oracles plus the raw zombie seam. Slow, so it only
/// runs under `--ignored` — CI's checker job includes it.
#[test]
#[ignore = "acceptance-scale sweep; run with --ignored (CI does)"]
fn zombie_oracles_survive_wide_pct() {
    for name in ["zombie-steal", "false-suspect-term", "rejoin-replay"] {
        let s = by_name(name, 8, 1).expect("scenario exists");
        let out = explore_pct(&|seed| s.run_pct(seed, 3, 512), 500);
        assert!(
            out.findings.is_empty(),
            "{name} violated under wide PCT: {:?}",
            out.findings
        );
    }
}

/// Checked-in zombie schedules: the minimized broken-fence reproducer must
/// keep reproducing from its serialized form, and a recorded hostile
/// interleaving of the shipped seam (eviction mid-steal) must stay clean.
#[test]
fn checked_in_broken_fence_schedule_reproduces() {
    let text = include_str!("schedules/broken-fence.schedule");
    let sched = Schedule::parse(text).expect("regression schedule parses");
    assert_eq!(sched.scenario, "broken-fence");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.iter().any(|v| v.contains("evicted incarnation")),
        "broken-fence schedule no longer reproduces: {:?}",
        rec.violations
    );
}

#[test]
fn checked_in_zombie_steal_schedule_stays_clean() {
    let text = include_str!("schedules/zombie-steal.schedule");
    let sched = Schedule::parse(text).expect("fixture parses");
    assert_eq!(sched.scenario, "zombie-steal");
    let s = by_name(&sched.scenario, sched.workers, sched.seed).unwrap();
    let rec = s.run_choices(&sched.choices);
    assert!(
        rec.violations.is_empty(),
        "zombie-steal schedule regressed: {:?}",
        rec.violations
    );
}
