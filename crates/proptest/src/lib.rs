//! Minimal, dependency-free property-testing shim.
//!
//! This workspace runs in offline environments with no registry access, so
//! the real `proptest` crate cannot be fetched. This crate implements the
//! exact API subset the test files use — `Strategy`, `Just`, integer-range
//! and tuple strategies, weighted `prop_oneof!`, `collection::vec`,
//! `bool::ANY`, the `proptest!` macro with `#![proptest_config(..)]`, and
//! the `prop_assert*` macros — on a deterministic SplitMix64 generator.
//!
//! Differences from upstream, by design:
//!
//! * **No shrinking.** A failing case reports its generated inputs (all
//!   strategies used here produce `Debug` values) and the case index, which
//!   is enough to reproduce: cases are derived deterministically from
//!   `(config seed, case index)`.
//! * **No persistence.** `*.proptest-regressions` files are ignored.
//! * `prop_assert!` / `prop_assert_eq!` panic immediately instead of
//!   returning `Err` — equivalent behaviour for straight-line test bodies.

use std::ops::Range;

// ---------------------------------------------------------------------------
// RNG
// ---------------------------------------------------------------------------

/// Deterministic per-case generator (SplitMix64).
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Independent stream for one test case.
    pub fn for_case(seed: u64, case: u64) -> TestRng {
        TestRng {
            state: seed ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15),
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform-enough integer in `[0, bound)` (modulo; bias is irrelevant at
    /// test-strategy bounds, which are tiny compared to 2^64).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}

// ---------------------------------------------------------------------------
// Strategies
// ---------------------------------------------------------------------------

/// A generator of test values. Object-safe so `prop_oneof!` can erase arm
/// types; combinators require `Sized`.
pub trait Strategy {
    type Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    fn prop_map<T, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> T,
    {
        Map { inner: self, f }
    }
}

/// Always yields a clone of the given value.
#[derive(Clone, Copy, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($ty:ty),*) => {$(
        impl Strategy for Range<$ty> {
            type Value = $ty;
            fn generate(&self, rng: &mut TestRng) -> $ty {
                let lo = self.start as u64;
                let hi = self.end as u64;
                assert!(hi > lo, "empty range strategy");
                (lo + rng.below(hi - lo)) as $ty
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

impl<A: Strategy, B: Strategy> Strategy for (A, B) {
    type Value = (A::Value, B::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy> Strategy for (A, B, C) {
    type Value = (A::Value, B::Value, C::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (self.0.generate(rng), self.1.generate(rng), self.2.generate(rng))
    }
}

impl<A: Strategy, B: Strategy, C: Strategy, D: Strategy> Strategy for (A, B, C, D) {
    type Value = (A::Value, B::Value, C::Value, D::Value);
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (
            self.0.generate(rng),
            self.1.generate(rng),
            self.2.generate(rng),
            self.3.generate(rng),
        )
    }
}

/// Weighted union of type-erased strategies (built by `prop_oneof!`).
pub struct Union<T> {
    arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>,
    total: u64,
}

impl<T> Union<T> {
    pub fn new(arms: Vec<(u32, Box<dyn Strategy<Value = T>>)>) -> Union<T> {
        assert!(!arms.is_empty());
        let total = arms.iter().map(|&(w, _)| w as u64).sum();
        assert!(total > 0, "all prop_oneof! weights are zero");
        Union { arms, total }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let mut pick = rng.below(self.total);
        for (w, s) in &self.arms {
            if pick < *w as u64 {
                return s.generate(rng);
            }
            pick -= *w as u64;
        }
        unreachable!("weights sum covers the draw")
    }
}

pub mod bool {
    use super::{Strategy, TestRng};

    /// Strategy yielding uniformly random booleans.
    #[derive(Clone, Copy, Debug)]
    pub struct AnyBool;

    pub const ANY: AnyBool = AnyBool;

    impl Strategy for AnyBool {
        type Value = bool;
        fn generate(&self, rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }
}

pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::Range;

    /// Strategy for vectors with a length drawn from `len` and elements from
    /// `element`.
    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        assert!(len.end > len.start, "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.len.end - self.len.start) as u64;
            let n = self.len.start + rng.below(span) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

// ---------------------------------------------------------------------------
// Config + macros
// ---------------------------------------------------------------------------

/// Per-block test configuration (`#![proptest_config(..)]`).
#[derive(Clone, Copy, Debug)]
pub struct ProptestConfig {
    pub cases: u32,
    /// Base seed for deriving per-case streams. Fixed so failures are
    /// reproducible by case index alone.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig {
            cases: 64,
            seed: 0x5EED_CAFE_F00D_D00D,
        }
    }
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// `assert!` that reads like upstream proptest.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` that reads like upstream proptest.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Define property tests. Each `fn name(arg in strategy, ...) { body }`
/// becomes a plain `#[test]` running `cases` deterministic iterations; a
/// failing iteration reports its case index and generated inputs before
/// re-raising the panic.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            for case in 0..cfg.cases as u64 {
                let mut rng = $crate::TestRng::for_case(cfg.seed, case);
                $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)+
                let inputs = format!(
                    concat!($(stringify!($arg), " = {:?}; "),+),
                    $(&$arg),+
                );
                let outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(
                    || $body
                ));
                if let Err(e) = outcome {
                    eprintln!(
                        "proptest {} failed at case {case}/{} with inputs: {inputs}",
                        stringify!($name),
                        cfg.cases,
                    );
                    ::std::panic::resume_unwind(e);
                }
            }
        }
    )*};
}

pub mod prelude {
    pub use crate::{
        prop_assert, prop_assert_eq, prop_oneof, proptest, Just, ProptestConfig, Strategy,
    };
}

/// Weighted (`w => strat`) or unweighted choice between strategies yielding
/// one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($w:literal => $s:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$(($w as u32, ::std::boxed::Box::new($s))),+];
        $crate::Union::new(arms)
    }};
    ($($s:expr),+ $(,)?) => {{
        let arms: ::std::vec::Vec<(u32, ::std::boxed::Box<dyn $crate::Strategy<Value = _>>)> =
            vec![$((1u32, ::std::boxed::Box::new($s))),+];
        $crate::Union::new(arms)
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case(1, 0);
        for _ in 0..1000 {
            let v = (3u64..9).generate(&mut rng);
            assert!((3..9).contains(&v));
        }
    }

    #[test]
    fn deterministic_per_case() {
        let s = crate::collection::vec(0u8..255, 1..20);
        let mut a = crate::TestRng::for_case(7, 3);
        let mut b = crate::TestRng::for_case(7, 3);
        assert_eq!(s.generate(&mut a), s.generate(&mut b));
    }

    #[test]
    fn oneof_respects_zero_paths() {
        let s = prop_oneof![1 => Just(1u32), 1 => Just(2u32)];
        let mut rng = crate::TestRng::for_case(11, 0);
        let mut seen = [false; 3];
        for _ in 0..100 {
            seen[s.generate(&mut rng) as usize] = true;
        }
        assert!(seen[1] && seen[2] && !seen[0]);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn macro_generates_and_runs(x in 1u64..100, flip in crate::bool::ANY) {
            prop_assert!((1..100).contains(&x));
            let _ = flip;
        }
    }
}
