//! Argument parsing and run orchestration for the `dcs` command-line tool.
//!
//! Hand-rolled flag parsing (the workspace's dependency policy keeps the
//! simulator core dependency-free); the grammar is small and fully covered
//! by unit tests.
//!
//! ```text
//! dcs run --bench uts --policy cont-greedy --workers 64 --machine itoa
//! dcs sweep --bench recpfor --n 1024 --workers 1,2,4,8,16
//! dcs info
//! ```

use std::fmt::Write as _;

use dcs_apps::{lcs, matmul, msort, nqueens, pfor, uts};
use dcs_core::prelude::*;
use dcs_sim::{FaultPlan, Topology};

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    Run(RunArgs),
    Sweep(SweepArgs),
    Check(CheckArgs),
    Info,
    Help,
}

/// How `dcs check` explores schedules.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CheckMode {
    /// Exhaustive for small worker counts, PCT sampling otherwise.
    Auto,
    Exhaustive,
    /// Randomized PCT sampling with this many seeds.
    Pct(u64),
}

#[derive(Debug, Clone, PartialEq)]
pub struct CheckArgs {
    /// Scenario name, or "all" for the whole catalog.
    pub scenario: String,
    pub workers: usize,
    pub mode: CheckMode,
    /// Delay bound for exhaustive exploration.
    pub delays: usize,
    /// Max schedules per scenario in exhaustive mode.
    pub budget: u64,
    pub seed: u64,
    /// Replay a serialized failing schedule instead of exploring.
    pub schedule: Option<String>,
    /// Directory minimized failing schedules are written to.
    pub out: Option<String>,
}

impl CheckArgs {
    fn defaults() -> CheckArgs {
        CheckArgs {
            scenario: "all".to_string(),
            workers: 2,
            mode: CheckMode::Auto,
            delays: 2,
            budget: 50_000,
            seed: 1,
            schedule: None,
            out: None,
        }
    }
}

/// Which benchmark program to build.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Bench {
    Fib,
    Pfor,
    Recpfor,
    Uts,
    Lcs,
    Nqueens,
    Msort,
    Matmul,
    BotUts,
}

impl Bench {
    fn parse(s: &str) -> Result<Bench, String> {
        Ok(match s {
            "fib" => Bench::Fib,
            "pfor" => Bench::Pfor,
            "recpfor" => Bench::Recpfor,
            "uts" => Bench::Uts,
            "lcs" => Bench::Lcs,
            "nqueens" => Bench::Nqueens,
            "msort" => Bench::Msort,
            "matmul" => Bench::Matmul,
            "bot-uts" => Bench::BotUts,
            other => {
                return Err(format!(
                    "unknown bench '{other}' (fib|pfor|recpfor|uts|lcs|nqueens|msort|matmul|bot-uts)"
                ))
            }
        })
    }
}

#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    pub bench: Bench,
    pub policy: Policy,
    pub workers: usize,
    pub machine: MachineProfile,
    pub n: u64,
    pub seed: u64,
    pub free: FreeStrategy,
    pub scheme: AddressScheme,
    pub victim: VictimPolicy,
    pub node_size: Option<usize>,
    /// Write a Chrome trace of the run to this path.
    pub trace_out: Option<String>,
    /// Deterministic fault-injection plan (see `FaultPlan::parse`).
    pub fault: FaultPlan,
    /// One-sided verb issue model (blocking, or posted with overlap).
    pub fabric: FabricMode,
    /// Steal-protocol family (CAS-lock, lock-free, or fence-free).
    pub protocol: Protocol,
    /// Steal attempts kept in flight at once while idle (`--multi-steal`).
    pub multi_steal: u32,
    /// Injection-cost fraction charged to doorbell-chained verbs
    /// (`--doorbell`); 1.0 disables the discount.
    pub doorbell: f64,
}

#[derive(Debug, Clone, PartialEq)]
pub struct SweepArgs {
    pub base: RunArgs,
    pub worker_list: Vec<usize>,
    /// Host threads the sweep points fan out across (`--jobs`); the output
    /// is identical for any value — see `dcs_bench::sweep`.
    pub jobs: usize,
}

fn parse_policy(s: &str) -> Result<Policy, String> {
    Ok(match s {
        "cont-greedy" | "greedy" => Policy::ContGreedy,
        "cont-stalling" | "stalling" => Policy::ContStalling,
        "child-full" => Policy::ChildFull,
        "child-rtc" => Policy::ChildRtc,
        other => {
            return Err(format!(
                "unknown policy '{other}' (cont-greedy|cont-stalling|child-full|child-rtc)"
            ))
        }
    })
}

fn parse_victim(s: &str) -> Result<VictimPolicy, String> {
    if s == "uniform" {
        return Ok(VictimPolicy::Uniform);
    }
    if let Some(p) = s.strip_prefix("locality:") {
        let p: f64 = p.parse().map_err(|_| format!("bad locality prob '{s}'"))?;
        return Ok(VictimPolicy::Locality { p_local: p });
    }
    if let Some(k) = s.strip_prefix("hier:") {
        let k: u32 = k.parse().map_err(|_| format!("bad hier tries '{s}'"))?;
        return Ok(VictimPolicy::Hierarchical { local_tries: k });
    }
    Err(format!(
        "unknown victim policy '{s}' (uniform|locality:<p>|hier:<tries>)"
    ))
}

impl RunArgs {
    fn defaults() -> RunArgs {
        RunArgs {
            bench: Bench::Uts,
            policy: Policy::ContGreedy,
            workers: 16,
            machine: profiles::itoa(),
            n: 0, // bench-specific default
            seed: 0x5EED,
            free: FreeStrategy::LocalCollection,
            scheme: AddressScheme::Uni,
            victim: VictimPolicy::Uniform,
            node_size: None,
            trace_out: None,
            fault: FaultPlan::none(),
            fabric: FabricMode::Blocking,
            protocol: Protocol::CasLock,
            multi_steal: 1,
            doorbell: 1.0,
        }
    }
}

fn parse_fabric(s: &str) -> Result<FabricMode, String> {
    Ok(match s {
        "blocking" => FabricMode::Blocking,
        "pipelined" => FabricMode::Pipelined,
        other => return Err(format!("unknown fabric mode '{other}' (blocking|pipelined)")),
    })
}

fn parse_protocol(s: &str) -> Result<Protocol, String> {
    Ok(match s {
        "cas-lock" => Protocol::CasLock,
        "lock-free" => Protocol::LockFree,
        "fence-free" => Protocol::FenceFree,
        other => {
            return Err(format!(
                "unknown steal protocol '{other}' (cas-lock|lock-free|fence-free)"
            ))
        }
    })
}

/// Parse a full argument vector (without the program name).
pub fn parse(args: &[String]) -> Result<Command, String> {
    let Some((cmd, rest)) = args.split_first() else {
        return Ok(Command::Help);
    };
    match cmd.as_str() {
        "help" | "--help" | "-h" => Ok(Command::Help),
        "info" => Ok(Command::Info),
        "run" => Ok(Command::Run(parse_run(rest)?)),
        "check" => Ok(Command::Check(parse_check(rest)?)),
        "sweep" => {
            let (base, workers, jobs) = parse_run_with_list(rest)?;
            let jobs = match jobs {
                Some(v) => dcs_bench::sweep::parse_jobs(&v)?,
                None => dcs_bench::sweep::available_jobs(),
            };
            Ok(Command::Sweep(SweepArgs {
                base,
                worker_list: workers,
                jobs,
            }))
        }
        other => Err(format!("unknown command '{other}' (run|sweep|check|info|help)")),
    }
}

fn parse_run(args: &[String]) -> Result<RunArgs, String> {
    let (run, list, jobs) = parse_run_with_list(args)?;
    if list.len() > 1 {
        return Err("multiple --workers values only make sense with `sweep`".into());
    }
    if jobs.is_some() {
        return Err("--jobs only makes sense with `sweep` (a single run is one job)".into());
    }
    Ok(run)
}

fn parse_run_with_list(args: &[String]) -> Result<(RunArgs, Vec<usize>, Option<String>), String> {
    let mut out = RunArgs::defaults();
    let mut worker_list = vec![out.workers];
    let mut fault_seed: Option<u64> = None;
    let mut jobs: Option<String> = None;
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--bench" => out.bench = Bench::parse(val()?)?,
            "--policy" => out.policy = parse_policy(val()?)?,
            "--workers" | "-p" => {
                let v = val()?;
                worker_list = v
                    .split(',')
                    .map(|x| x.parse::<usize>().map_err(|_| format!("bad workers '{v}'")))
                    .collect::<Result<_, _>>()?;
                if worker_list.is_empty() {
                    return Err("empty worker list".into());
                }
                out.workers = worker_list[0];
            }
            "--machine" => {
                let v = val()?;
                out.machine =
                    profiles::by_name(v).ok_or_else(|| format!("unknown machine '{v}' (itoa|wisteria|test)"))?;
            }
            "--n" => out.n = val()?.parse().map_err(|_| "bad --n".to_string())?,
            "--seed" => out.seed = val()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--free" => {
                out.free = match val()?.as_str() {
                    "lock-queue" => FreeStrategy::LockQueue,
                    "local-collection" => FreeStrategy::LocalCollection,
                    other => return Err(format!("unknown free strategy '{other}'")),
                }
            }
            "--scheme" => {
                out.scheme = match val()?.as_str() {
                    "uni" => AddressScheme::Uni,
                    "iso" => AddressScheme::Iso,
                    other => return Err(format!("unknown address scheme '{other}'")),
                }
            }
            "--victim" => out.victim = parse_victim(val()?)?,
            "--fabric" => out.fabric = parse_fabric(val()?)?,
            "--protocol" => out.protocol = parse_protocol(val()?)?,
            "--multi-steal" => {
                let k: u32 = val()?.parse().map_err(|_| "bad --multi-steal".to_string())?;
                if k == 0 {
                    return Err("--multi-steal needs K >= 1 (1 = serial steals)".into());
                }
                out.multi_steal = k;
            }
            "--doorbell" => {
                let f: f64 = val()?.parse().map_err(|_| "bad --doorbell".to_string())?;
                if !(0.0..=1.0).contains(&f) {
                    return Err("--doorbell needs a fraction in 0.0..=1.0".into());
                }
                out.doorbell = f;
            }
            "--node-size" => {
                out.node_size = Some(val()?.parse().map_err(|_| "bad --node-size".to_string())?)
            }
            "--jobs" | "-j" => jobs = Some(val()?.clone()),
            "--trace" => out.trace_out = Some(val()?.clone()),
            "--fault-plan" => out.fault = FaultPlan::parse(val()?)?,
            "--fault-seed" => {
                fault_seed =
                    Some(val()?.parse().map_err(|_| "bad --fault-seed".to_string())?)
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if let Some(s) = fault_seed {
        out.fault = out.fault.clone().with_seed(s);
    }
    Ok((out, worker_list, jobs))
}

/// Default problem size per benchmark when `--n` is absent.
pub fn default_n(bench: Bench) -> u64 {
    match bench {
        Bench::Fib => 20,
        Bench::Pfor => 1 << 12,
        Bench::Recpfor => 1 << 9,
        Bench::Uts | Bench::BotUts => 15, // gen_mx
        Bench::Lcs => 1 << 12,
        Bench::Nqueens => 9,
        Bench::Msort => 1 << 14,
        Bench::Matmul => 128,
    }
}

fn fib_task(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let n = arg.as_u64();
    if n < 2 {
        return Effect::ret(n);
    }
    Effect::fork(
        fib_task,
        n - 1,
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                fib_task,
                n - 2,
                frame(move |b, _| {
                    let b = b.as_u64();
                    Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                }),
            )
        }),
    )
}

/// Execute a `run` command, returning the rendered report.
pub fn execute_run(a: &RunArgs) -> String {
    let n = if a.n == 0 { default_n(a.bench) } else { a.n };
    let mut cfg = RunConfig::new(a.workers, a.policy)
        .with_profile(a.machine.clone())
        .with_free_strategy(a.free)
        .with_address_scheme(a.scheme)
        .with_victim(a.victim)
        .with_seed(a.seed)
        .with_seg_bytes(64 << 20)
        .with_fault_plan(a.fault.clone())
        .with_fabric(a.fabric)
        .with_protocol(a.protocol)
        .with_multi_steal(a.multi_steal)
        .with_doorbell(a.doorbell);
    if a.trace_out.is_some() {
        cfg = cfg.with_trace(TraceLevel::Series);
    }
    if let Some(node_size) = a.node_size {
        cfg = cfg.with_topology(Topology::Hierarchical {
            node_size,
            intra_factor: 0.3,
        });
    }

    if a.bench == Bench::BotUts {
        let spec = uts::UtsSpec::new(4.0, n as u32, uts::Shape::Linear, 19);
        let r = dcs_bot::onesided::run_workload_fabric(
            &dcs_bot::Workload::Uts(spec),
            a.workers,
            a.machine.clone(),
            a.seed,
            dcs_bot::onesided::StealAmount::Half,
            a.fault.clone(),
            a.fabric,
        );
        let mut s = String::new();
        let _ = writeln!(s, "bench:      bot-uts (one-sided steal-half, gen_mx = {n})");
        let _ = writeln!(s, "nodes:      {}", r.nodes);
        let _ = writeln!(s, "elapsed:    {}", r.elapsed);
        let _ = writeln!(s, "throughput: {:.2} Mnodes/s", r.throughput() / 1e6);
        let _ = writeln!(s, "steals:     {} ok, {} failed", r.steals_ok, r.steals_failed);
        let _ = writeln!(s, "token rounds: {}", r.token_rounds);
        let _ = writeln!(
            s,
            "fabric:     {} remote ops, {} KiB moved ({}, {} max in flight)",
            r.fabric.remote_total(),
            (r.fabric.bytes_got + r.fabric.bytes_put) / 1024,
            a.fabric.label(),
            r.fabric.max_inflight
        );
        if a.fault.is_active() {
            let _ = writeln!(
                s,
                "faults:     {} verb retries, {} timeouts",
                r.fabric.retries, r.fabric.timeouts
            );
        }
        if a.fault.recovery_armed() {
            let _ = writeln!(
                s,
                "recovery:   {} dead workers, {} tasks lost, {} re-executed, {} duplicate results absorbed",
                r.dead_workers, r.lost_tasks, r.reexec_tasks, r.dup_results
            );
        }
        return s;
    }

    let program = match a.bench {
        Bench::Fib => Program::new(fib_task, n),
        Bench::Pfor => pfor::pfor_program(pfor::PforParams::paper(n)),
        Bench::Recpfor => pfor::recpfor_program(pfor::PforParams::paper(n)),
        Bench::Uts => uts::program(uts::UtsSpec::new(4.0, n as u32, uts::Shape::Linear, 19)),
        Bench::Lcs => lcs::program(lcs::LcsParams::random(n, 256.min(n), a.seed)),
        Bench::Nqueens => nqueens::program(nqueens::NqParams::new(n as u32)),
        Bench::Msort => msort::program(msort::SortParams::random(n as usize, 64, a.seed)),
        Bench::Matmul => {
            matmul::program(matmul::MatParams::random(n as usize, 16.min(n as usize), a.seed))
        }
        Bench::BotUts => unreachable!("handled above"),
    };
    let report = run(cfg, program);
    let mut rendered = render_report(a, n, &report);
    if let Some(d) = report.stats.delay_report(report.elapsed, a.workers) {
        let _ = writeln!(
            rendered,
            "delay:      {} scheduler-caused of {} idle ({:.1}% of idleness)",
            d.scheduler_delay,
            d.idle,
            100.0 * d.blame_fraction
        );
    }
    if let Some(path) = &a.trace_out {
        let json = dcs_core::chrome_trace(&report.stats, &format!("{:?}", a.bench))
            .expect("series trace was enabled");
        match std::fs::write(path, json) {
            Ok(()) => {
                let _ = writeln!(rendered, "trace:      {path} (chrome://tracing / perfetto)");
            }
            Err(e) => {
                let _ = writeln!(rendered, "trace:      FAILED to write {path}: {e}");
            }
        }
    }
    rendered
}

fn render_report(a: &RunArgs, n: u64, r: &RunReport) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "bench:      {:?} (n = {n}), {} under {}",
        a.bench,
        a.policy.label(),
        a.machine.name
    );
    match &r.outcome {
        dcs_core::RunOutcome::Complete => {
            let _ = writeln!(s, "result:     {}", r.result.summary());
        }
        dcs_core::RunOutcome::Unrecoverable { worker, frames, reason } => {
            // Name the policy, the killed worker and its kill instant, so
            // the abort is reproducible from the rendered line alone.
            let kill_at = a
                .fault
                .kill
                .iter()
                .find(|k| k.worker == *worker)
                .map(|k| format!("{}", k.at))
                .unwrap_or_else(|| "?".into());
            let _ = writeln!(
                s,
                "result:     UNRECOVERABLE — {} lost worker {worker} (killed at {kill_at}) holding {} live frame(s): {reason}",
                a.policy.label(),
                frames.len()
            );
            let hint = match reason {
                dcs_core::UnrecoverableReason::FullStacks => {
                    "nearest recoverable configuration: same kill plan under child-rtc or a continuation policy (cont-greedy, cont-stalling)"
                }
                dcs_core::UnrecoverableReason::AllWorkersDead => {
                    "nearest recoverable configuration: keep at least one worker alive (drop a kill clause, or stagger kills beyond the lease)"
                }
            };
            let _ = writeln!(s, "hint:       {hint}");
        }
    }
    let _ = writeln!(s, "elapsed:    {}", r.elapsed);
    let _ = writeln!(s, "threads:    {}", r.threads);
    let _ = writeln!(
        s,
        "steals:     {} ok ({} B avg, {} avg latency), {} failed ({})",
        r.stats.steals_ok,
        r.stats.avg_stolen_bytes(),
        r.stats.avg_steal_latency(),
        r.stats.steals_failed,
        a.protocol.label()
    );
    if a.protocol == Protocol::FenceFree {
        let _ = writeln!(
            s,
            "multiplicity: {} dup takes absorbed, {} lost claim races",
            r.stats.ff_dups, r.stats.ff_lost_races
        );
    }
    if a.multi_steal >= 2 {
        let _ = writeln!(
            s,
            "multi-steal: K={} probe rings, {} ready victims abandoned",
            a.multi_steal, r.stats.steals_abandoned
        );
    }
    let _ = writeln!(
        s,
        "joins:      {} fast, {} outstanding ({} avg)",
        r.stats.joins_fast,
        r.stats.outstanding_joins,
        r.stats.avg_outstanding_time()
    );
    let _ = writeln!(
        s,
        "fabric:     {} remote ops ({} AMOs), {} KiB moved ({}, {} max in flight)",
        r.fabric.remote_total(),
        r.fabric.remote_amos,
        (r.fabric.bytes_got + r.fabric.bytes_put) / 1024,
        a.fabric.label(),
        r.fabric.max_inflight
    );
    if r.fabric.doorbell_chained > 0 {
        let _ = writeln!(
            s,
            "doorbell:   {} chained verbs at {:.2}x injection",
            r.fabric.doorbell_chained, a.doorbell
        );
    }
    let _ = writeln!(
        s,
        "busy:       {:.1}% of {} workers",
        100.0 * r.busy_total.as_ns() as f64 / (r.elapsed.as_ns() as f64 * a.workers as f64),
        a.workers
    );
    if a.fault.is_active() {
        let _ = writeln!(
            s,
            "faults:     {} verb retries, {} timeouts, {} blacklist skips",
            r.fabric.retries, r.fabric.timeouts, r.stats.blacklist_skips
        );
        if a.fault.recovery_armed() {
            let _ = writeln!(
                s,
                "recovery:   {} workers lost, {} tasks lost, {} replayed, {} split headers mirrored",
                r.stats.workers_lost, r.stats.tasks_lost, r.stats.tasks_replayed, r.stats.ckpt_puts
            );
        }
        if a.fault.suspicion_possible() {
            let _ = writeln!(
                s,
                "detector:   {} false suspects, {} rejoins, {} epoch-fenced verbs",
                r.stats.false_suspects, r.stats.rejoins, r.fabric.fenced_verbs
            );
        }
        if let Some(wd) = &r.watchdog {
            let _ = writeln!(s, "watchdog:   {wd}");
        }
    }
    s
}

/// Execute a `sweep` command. The per-P simulations fan out across
/// `a.jobs` host threads; rows are rendered strictly in `worker_list`
/// order, so the output is independent of `jobs`.
pub fn execute_sweep(a: &SweepArgs) -> String {
    // (elapsed, steals_ok, avg steal latency; None for the BoT runtime).
    let rows: Vec<(VTime, u64, Option<VTime>)> =
        dcs_bench::sweep::run_matrix(&a.worker_list, a.jobs, |_, &p| {
            let args = a.base.clone();
            let n = if args.n == 0 { default_n(args.bench) } else { args.n };
            let cfg = RunConfig::new(p, args.policy)
                .with_profile(args.machine.clone())
                .with_seed(args.seed)
                .with_seg_bytes(64 << 20)
                .with_fault_plan(args.fault.clone())
                .with_fabric(args.fabric);
            let program = match args.bench {
                Bench::Fib => Program::new(fib_task, n),
                Bench::Pfor => pfor::pfor_program(pfor::PforParams::paper(n)),
                Bench::Recpfor => pfor::recpfor_program(pfor::PforParams::paper(n)),
                Bench::Uts => {
                    uts::program(uts::UtsSpec::new(4.0, n as u32, uts::Shape::Linear, 19))
                }
                Bench::Lcs => lcs::program(lcs::LcsParams::random(n, 256.min(n), args.seed)),
                Bench::Nqueens => nqueens::program(nqueens::NqParams::new(n as u32)),
                Bench::Msort => {
                    msort::program(msort::SortParams::random(n as usize, 64, args.seed))
                }
                Bench::Matmul => matmul::program(matmul::MatParams::random(
                    n as usize,
                    16.min(n as usize),
                    args.seed,
                )),
                Bench::BotUts => {
                    let spec = uts::UtsSpec::new(4.0, n as u32, uts::Shape::Linear, 19);
                    let r = dcs_bot::onesided::run_uts_fabric(
                        &spec,
                        p,
                        args.machine.clone(),
                        args.seed,
                        args.fabric,
                    );
                    return (r.elapsed, r.steals_ok, None);
                }
            };
            let r = run(cfg, program);
            (r.elapsed, r.stats.steals_ok, Some(r.stats.avg_steal_latency()))
        });

    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:>8} {:>14} {:>10} {:>12} {:>10}",
        "workers", "elapsed", "steals", "steal lat", "speedup"
    );
    let mut base: Option<f64> = None;
    for (&p, &(elapsed, steals_ok, lat)) in a.worker_list.iter().zip(&rows) {
        let t = elapsed.as_ns() as f64;
        let speedup = *base.get_or_insert(t) / t;
        let _ = writeln!(
            s,
            "{:>8} {:>14} {:>10} {:>12} {:>9.2}x",
            p,
            elapsed.to_string(),
            steals_ok,
            lat.map_or_else(|| "-".to_string(), |l| l.to_string()),
            speedup
        );
    }
    s
}

fn parse_check(args: &[String]) -> Result<CheckArgs, String> {
    let mut out = CheckArgs::defaults();
    let mut it = args.iter();
    while let Some(flag) = it.next() {
        let mut val = || -> Result<&String, String> {
            it.next().ok_or_else(|| format!("flag {flag} needs a value"))
        };
        match flag.as_str() {
            "--scenario" => out.scenario = val()?.clone(),
            "--workers" | "-p" => {
                out.workers = val()?.parse().map_err(|_| "bad --workers".to_string())?;
                if out.workers < 2 {
                    return Err("check needs at least 2 workers (someone has to steal)".into());
                }
            }
            "--exhaustive" => out.mode = CheckMode::Exhaustive,
            "--pct-seeds" => {
                out.mode =
                    CheckMode::Pct(val()?.parse().map_err(|_| "bad --pct-seeds".to_string())?)
            }
            "--delays" => out.delays = val()?.parse().map_err(|_| "bad --delays".to_string())?,
            "--budget" => out.budget = val()?.parse().map_err(|_| "bad --budget".to_string())?,
            "--seed" => out.seed = val()?.parse().map_err(|_| "bad --seed".to_string())?,
            "--schedule" => out.schedule = Some(val()?.clone()),
            "--out" => out.out = Some(val()?.clone()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    Ok(out)
}

/// Expected decision-count scale handed to the PCT hook (change points are
/// drawn from this window; past it the hook reverts to the fair native
/// order so every sampled run terminates).
const PCT_HORIZON: u64 = 1024;

/// Execute a `check` command. Returns the rendered report and whether the
/// check passed: every correct scenario explored clean, and every
/// `expect_violation` self-test scenario actually caught its planted bug
/// (a checker that can't see the bug it was built for is itself broken).
pub fn execute_check(a: &CheckArgs) -> (String, bool) {
    let mut s = String::new();

    // Replay mode: reproduce one serialized schedule, no exploration.
    if let Some(path) = &a.schedule {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => return (format!("error: cannot read {path}: {e}\n"), false),
        };
        let sched = match dcs_check::Schedule::parse(&text) {
            Ok(x) => x,
            Err(e) => return (format!("error: bad schedule file {path}: {e}\n"), false),
        };
        let Some(sc) = dcs_check::by_name(&sched.scenario, sched.workers, a.seed) else {
            return (format!("error: unknown scenario '{}'\n", sched.scenario), false);
        };
        let rec = sc.run_choices(&sched.choices);
        let _ = writeln!(
            s,
            "replay {}: {} decisions, {} violation(s)",
            sched.scenario,
            rec.taken.len(),
            rec.violations.len()
        );
        for v in &rec.violations {
            let _ = writeln!(s, "  violation: {v}");
        }
        return (s, rec.violations.is_empty());
    }

    let scenarios = if a.scenario == "all" {
        dcs_check::catalog(a.workers, a.seed)
    } else {
        match dcs_check::by_name(&a.scenario, a.workers, a.seed) {
            Some(sc) => vec![sc],
            None => {
                let names: Vec<String> = dcs_check::catalog(a.workers, a.seed)
                    .into_iter()
                    .map(|sc| sc.name)
                    .collect();
                return (
                    format!(
                        "error: unknown scenario '{}' (available: {})\n",
                        a.scenario,
                        names.join(", ")
                    ),
                    false,
                );
            }
        }
    };

    let mode = match a.mode {
        CheckMode::Auto if a.workers <= 3 => CheckMode::Exhaustive,
        CheckMode::Auto => CheckMode::Pct(500),
        m => m,
    };
    let mut all_ok = true;
    for sc in &scenarios {
        // Self-test scenarios are tiny by construction: explore them
        // exhaustively even in PCT mode, so "does the checker still catch
        // the planted bug?" never depends on sampling luck.
        let out = match mode {
            _ if sc.expect_violation => {
                dcs_check::explore_exhaustive(&|c| sc.run_choices(c), a.delays.max(2), a.budget)
            }
            CheckMode::Exhaustive => {
                dcs_check::explore_exhaustive(&|c| sc.run_choices(c), a.delays, a.budget)
            }
            CheckMode::Pct(seeds) => {
                dcs_check::explore_pct(&|seed| sc.run_pct(seed, 3, PCT_HORIZON), seeds)
            }
            CheckMode::Auto => unreachable!("resolved above"),
        };
        let caught = !out.findings.is_empty();
        let ok = caught == sc.expect_violation;
        all_ok &= ok;
        let verdict = match (ok, sc.expect_violation) {
            (true, false) => "ok",
            (true, true) => "ok (self-test: planted bug caught)",
            (false, false) => "FAIL",
            (false, true) => "FAIL (self-test: planted bug NOT caught)",
        };
        let _ = writeln!(
            s,
            "{:<28} {:>7} schedules{} — {}",
            sc.name,
            out.schedules,
            if out.complete { "" } else { " (budget hit)" },
            verdict
        );
        if caught {
            // Minimize the first finding and serialize it for replay.
            let f = &out.findings[0];
            let min = if sc.expect_violation {
                f.choices.clone() // self-test: no need to shrink
            } else {
                dcs_check::minimize(&|c| sc.run_choices(c), &f.choices)
            };
            for v in &f.violations {
                let _ = writeln!(s, "  violation: {v}");
            }
            let sched = dcs_check::Schedule {
                scenario: sc.name.clone(),
                workers: sc.workers,
                seed: a.seed,
                choices: min,
            };
            if !sc.expect_violation {
                if let Some(dir) = &a.out {
                    let file = format!("{dir}/{}.schedule", sc.name.replace(':', "-"));
                    match std::fs::create_dir_all(dir)
                        .and_then(|()| std::fs::write(&file, sched.to_string()))
                    {
                        Ok(()) => {
                            let _ = writeln!(s, "  minimized schedule written to {file}");
                        }
                        Err(e) => {
                            let _ = writeln!(s, "  error writing {file}: {e}");
                        }
                    }
                } else {
                    let _ = write!(s, "  minimized reproducer:\n{sched}");
                }
            }
        }
    }
    let _ = writeln!(
        s,
        "{}: {} scenario(s) checked",
        if all_ok { "PASS" } else { "FAIL" },
        scenarios.len()
    );
    (s, all_ok)
}

/// The machine/configuration summary for `dcs info`.
pub fn info() -> String {
    let mut s = String::new();
    let _ = writeln!(s, "dcs — distributed continuation stealing (CLUSTER 2022 reproduction)\n");
    let _ = writeln!(s, "machine profiles:");
    for p in [profiles::itoa(), profiles::wisteria()] {
        let l = &p.latency;
        let _ = writeln!(
            s,
            "  {:<12} get {:>7}  amo {:>7}  compute x{:.2}",
            p.name,
            l.get_small().to_string(),
            l.amo().to_string(),
            p.compute_scale
        );
    }
    let _ = writeln!(s, "\npolicies: cont-greedy cont-stalling child-full child-rtc");
    let _ = writeln!(s, "benches:  fib pfor recpfor uts lcs bot-uts");
    let _ = writeln!(s, "see `dcs help` for flags");
    s
}

pub const HELP: &str = "dcs — distributed continuation stealing simulator

USAGE:
    dcs run   [flags]      run one benchmark configuration
    dcs sweep [flags]      sweep --workers a,b,c,...
    dcs check [flags]      explore schedules against the protocol oracles
    dcs info               show machine profiles and options
    dcs help               this text

FLAGS (run & sweep):
    --bench <fib|pfor|recpfor|uts|lcs|nqueens|msort|matmul|bot-uts> [uts]
    --policy <cont-greedy|cont-stalling|child-full|child-rtc>       [cont-greedy]
    --workers, -p <n[,n...]>                      worker count(s)    [16]
    --jobs, -j <n>     host threads for sweep points (sweep only;
                       output is identical for any value)             [host cores]
    --machine <itoa|wisteria|test>                latency profile    [itoa]
    --n <num>          problem size (bench-specific; uts: gen_mx)
    --seed <num>       run seed                                      [0x5EED]
    --free <lock-queue|local-collection>          remote freeing     [local-collection]
    --scheme <uni|iso>                            stack addressing   [uni]
    --victim <uniform|locality:<p>|hier:<k>>      victim selection   [uniform]
    --fabric <blocking|pipelined>                 verb issue model   [blocking]
                       blocking waits out every one-sided verb; pipelined
                       posts independent verbs back-to-back and reaps
                       completions (same memory semantics, shorter critical
                       paths)
    --protocol <cas-lock|lock-free|fence-free>    steal protocol     [cas-lock]
                       cas-lock serializes steals with a per-deque lock;
                       lock-free claims entries with a single remote CAS;
                       fence-free uses plain reads/writes only (zero AMO
                       verbs) with bounded multiplicity closed by the
                       done-flag dedup — a doubly-taken task executes once
    --multi-steal <K>  steal attempts kept in flight at once while idle [1]
                       K >= 2 probes K distinct victims per idle step,
                       commits the first hit in ring order and abandons
                       the rest (won locks released, no blind retries)
    --doorbell <frac>  injection-cost fraction charged to verbs chained
                       behind one doorbell ring (probe rings, waiter
                       sweeps); 1.0 disables the discount            [1.0]
    --node-size <n>    hierarchical topology with n workers per node
    --trace <file>     write a Chrome trace (chrome://tracing, perfetto) [off]
    --fault-plan <spec>  deterministic fault injection                   [off]
                       comma-separated clauses:
                         verb=P             transient verb-failure probability
                         drop=P             control-message drop probability
                         dup=P              message duplication probability
                         degrade=W@A..B*F   worker W's NIC F x slower in [A, B)
                         crash=W@A..B       worker W unresponsive in [A, B)
                         kill=W@T           worker W fail-stops permanently at T
                         recover=on         arm recovery without scheduling a kill
                         hb=T               heartbeat period of the lease registry
                         lease=T            silence beyond T confirms death
                       times take ns/us/ms/s suffixes, e.g.
                       --fault-plan verb=0.01,drop=0.02,crash=1@1ms..3ms
                       or --fault-plan kill=2@4ms,lease=100us
    --fault-seed <n>   seed of the fault RNG streams                     [0]

FLAGS (check):
    --scenario <name|all>  scenario to explore (see dcs-check catalog)   [all]
    --workers, -p <n>      worker count (>= 2)                           [2]
    --exhaustive           exhaustive delay-bounded exploration
    --pct-seeds <n>        randomized PCT sampling with n seeds
                           (default: exhaustive when workers <= 3, else 500 seeds)
    --delays <n>           delay bound for exhaustive mode               [2]
    --budget <n>           max schedules per scenario (exhaustive)       [50000]
    --seed <n>             scenario seed                                 [1]
    --schedule <file>      replay a serialized failing schedule
    --out <dir>            write minimized failing schedules here
                           (exit code is non-zero on any violation)
";

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(|x| x.to_string()).collect()
    }

    #[test]
    fn parses_run_defaults() {
        let cmd = parse(&argv("run")).unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.bench, Bench::Uts);
        assert_eq!(a.policy, Policy::ContGreedy);
        assert_eq!(a.workers, 16);
        assert_eq!(a.fabric, FabricMode::Blocking, "goldens depend on this default");
        assert_eq!(a.protocol, Protocol::CasLock, "goldens depend on this default");
    }

    #[test]
    fn parses_full_flag_set() {
        let cmd = parse(&argv(
            "run --bench lcs --policy child-full --workers 8 --machine wisteria \
             --n 1024 --seed 7 --free lock-queue --scheme iso --victim locality:0.8 --node-size 4 \
             --fabric pipelined --protocol fence-free --multi-steal 4 --doorbell 0.25",
        ))
        .unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.bench, Bench::Lcs);
        assert_eq!(a.policy, Policy::ChildFull);
        assert_eq!(a.workers, 8);
        assert_eq!(a.machine.name, "Wisteria-O");
        assert_eq!(a.n, 1024);
        assert_eq!(a.seed, 7);
        assert_eq!(a.free, FreeStrategy::LockQueue);
        assert_eq!(a.scheme, AddressScheme::Iso);
        assert_eq!(a.victim, VictimPolicy::Locality { p_local: 0.8 });
        assert_eq!(a.node_size, Some(4));
        assert_eq!(a.fabric, FabricMode::Pipelined);
        assert_eq!(a.protocol, Protocol::FenceFree);
        assert_eq!(a.multi_steal, 4);
        assert_eq!(a.doorbell, 0.25);
    }

    #[test]
    fn multi_steal_and_doorbell_defaults_keep_the_serial_path() {
        let cmd = parse(&argv("run")).unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.multi_steal, 1, "goldens depend on this default");
        assert_eq!(a.doorbell, 1.0, "goldens depend on this default");
    }

    #[test]
    fn parses_sweep_worker_list() {
        let cmd = parse(&argv("sweep --bench fib --workers 1,2,4")).unwrap();
        let Command::Sweep(a) = cmd else { panic!() };
        assert_eq!(a.worker_list, vec![1, 2, 4]);
        assert_eq!(a.base.bench, Bench::Fib);
    }

    #[test]
    fn parses_jobs_flag() {
        let cmd = parse(&argv("sweep --bench fib --workers 1,2 --jobs 3")).unwrap();
        let Command::Sweep(a) = cmd else { panic!() };
        assert_eq!(a.jobs, 3);
        // Short form.
        let cmd = parse(&argv("sweep --bench fib -j 2")).unwrap();
        let Command::Sweep(a) = cmd else { panic!() };
        assert_eq!(a.jobs, 2);
        // Absent: defaults to the host's available cores (>= 1 always).
        let cmd = parse(&argv("sweep --bench fib --workers 1,2")).unwrap();
        let Command::Sweep(a) = cmd else { panic!() };
        assert_eq!(a.jobs, dcs_bench::sweep::available_jobs());
        assert!(a.jobs >= 1);
    }

    #[test]
    fn rejects_bad_jobs() {
        // Zero jobs cannot make progress — rejected with a specific message.
        let err = parse(&argv("sweep --bench fib --jobs 0")).unwrap_err();
        assert!(err.contains(">= 1"), "{err}");
        assert!(parse(&argv("sweep --jobs x")).is_err());
        assert!(parse(&argv("sweep --jobs")).is_err(), "missing value");
        // `run` is a single simulation; --jobs belongs to sweep.
        let err = parse(&argv("run --bench fib --jobs 2")).unwrap_err();
        assert!(err.contains("sweep"), "{err}");
    }

    #[test]
    fn rejects_bad_input() {
        assert!(parse(&argv("run --bench nope")).is_err());
        assert!(parse(&argv("run --policy nope")).is_err());
        assert!(parse(&argv("run --workers x")).is_err());
        assert!(parse(&argv("frobnicate")).is_err());
        assert!(parse(&argv("run --workers 1,2")).is_err(), "list needs sweep");
        assert!(parse(&argv("run --victim locality:x")).is_err());
        assert!(parse(&argv("run --n")).is_err(), "missing value");
        assert!(parse(&argv("run --fabric nope")).is_err());
        assert!(parse(&argv("run --fabric")).is_err(), "missing value");
        assert!(parse(&argv("run --protocol nope")).is_err());
        assert!(parse(&argv("run --protocol")).is_err(), "missing value");
        assert!(parse(&argv("run --multi-steal 0")).is_err(), "K=0 cannot steal");
        assert!(parse(&argv("run --multi-steal x")).is_err());
        assert!(parse(&argv("run --doorbell 1.5")).is_err(), "fraction > 1");
        assert!(parse(&argv("run --doorbell -0.1")).is_err(), "negative fraction");
    }

    #[test]
    fn help_and_info_paths() {
        assert_eq!(parse(&[]).unwrap(), Command::Help);
        assert_eq!(parse(&argv("help")).unwrap(), Command::Help);
        assert_eq!(parse(&argv("info")).unwrap(), Command::Info);
        assert!(info().contains("ITO-A"));
        assert!(HELP.contains("--bench"));
        assert!(HELP.contains("--fabric"));
        assert!(HELP.contains("--protocol"));
        assert!(HELP.contains("--multi-steal"));
        assert!(HELP.contains("--doorbell"));
    }

    #[test]
    fn parses_check_flags() {
        let cmd = parse(&argv(
            "check --scenario deque-steal --workers 3 --exhaustive --delays 3 --budget 999 --seed 4 --out /tmp/x",
        ))
        .unwrap();
        let Command::Check(a) = cmd else { panic!() };
        assert_eq!(a.scenario, "deque-steal");
        assert_eq!(a.workers, 3);
        assert_eq!(a.mode, CheckMode::Exhaustive);
        assert_eq!(a.delays, 3);
        assert_eq!(a.budget, 999);
        assert_eq!(a.seed, 4);
        assert_eq!(a.out.as_deref(), Some("/tmp/x"));

        let cmd = parse(&argv("check --workers 8 --pct-seeds 100")).unwrap();
        let Command::Check(a) = cmd else { panic!() };
        assert_eq!(a.mode, CheckMode::Pct(100));
        assert_eq!(a.scenario, "all");

        assert!(parse(&argv("check --workers 1")).is_err(), "needs a thief");
        assert!(parse(&argv("check --budget x")).is_err());
        assert!(HELP.contains("--pct-seeds"));
    }

    #[test]
    fn execute_check_single_scenario_passes() {
        let a = CheckArgs {
            scenario: "deque-steal".into(),
            mode: CheckMode::Exhaustive,
            delays: 2,
            ..CheckArgs::defaults()
        };
        let (report, ok) = execute_check(&a);
        assert!(ok, "{report}");
        assert!(report.contains("deque-steal"));
        assert!(report.contains("PASS"));
    }

    #[test]
    fn execute_check_self_test_catches_planted_bug() {
        let a = CheckArgs {
            scenario: "broken-release".into(),
            mode: CheckMode::Exhaustive,
            ..CheckArgs::defaults()
        };
        let (report, ok) = execute_check(&a);
        assert!(ok, "{report}");
        assert!(report.contains("planted bug caught"), "{report}");
    }

    #[test]
    fn execute_check_replays_schedule_file() {
        let dir = std::env::temp_dir().join("dcs-check-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("native.schedule");
        let sched = dcs_check::Schedule {
            scenario: "deque-steal".into(),
            workers: 2,
            seed: 1,
            choices: vec![0, 1],
        };
        std::fs::write(&path, sched.to_string()).unwrap();
        let a = CheckArgs {
            schedule: Some(path.to_string_lossy().into_owned()),
            ..CheckArgs::defaults()
        };
        let (report, ok) = execute_check(&a);
        assert!(ok, "{report}");
        assert!(report.contains("replay deque-steal"), "{report}");
        assert!(parse(&argv("check --schedule")).is_err(), "missing value");
    }

    #[test]
    fn parses_fault_plan_and_seed() {
        let cmd = parse(&argv(
            "run --bench fib --fault-plan verb=0.01,drop=0.02,crash=1@1ms..3ms --fault-seed 99",
        ))
        .unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert!(a.fault.is_active());
        assert_eq!(a.fault.verb_fail_p, 0.01);
        assert_eq!(a.fault.msg_drop_p, 0.02);
        assert_eq!(a.fault.crash.len(), 1);
        assert_eq!(a.fault.seed, 99);
        // Seed before plan must survive too.
        let cmd = parse(&argv("run --fault-seed 7 --fault-plan verb=0.5")).unwrap();
        let Command::Run(a) = cmd else { panic!() };
        assert_eq!(a.fault.seed, 7);
        assert!(parse(&argv("run --fault-plan nonsense")).is_err());
    }

    #[test]
    fn execute_run_with_faults_reports_fault_lines() {
        let mut a = RunArgs::defaults();
        a.bench = Bench::Fib;
        a.n = 10;
        a.workers = 2;
        a.machine = profiles::test_profile();
        a.fault = FaultPlan::transient(0.02, 3);
        let out = execute_run(&a);
        assert!(out.contains("U64(55)"), "{out}");
        assert!(out.contains("faults:"), "{out}");
        assert!(out.contains("watchdog:"), "{out}");
    }

    #[test]
    fn execute_run_small_fib() {
        let mut a = RunArgs::defaults();
        a.bench = Bench::Fib;
        a.n = 10;
        a.workers = 2;
        a.machine = profiles::test_profile();
        let out = execute_run(&a);
        assert!(out.contains("U64(55)"), "{out}");
    }

    #[test]
    fn execute_bot_uts() {
        let mut a = RunArgs::defaults();
        a.bench = Bench::BotUts;
        a.n = 8; // gen_mx
        a.workers = 2;
        a.machine = profiles::test_profile();
        let out = execute_run(&a);
        assert!(out.contains("nodes:"), "{out}");
        // Same tree through the posted-verb fabric: identical result, and
        // the report names the mode so runs are attributable from the log.
        a.fabric = FabricMode::Pipelined;
        let out = execute_run(&a);
        assert!(out.contains("nodes:"), "{out}");
        assert!(out.contains("pipelined"), "{out}");
    }

    #[test]
    fn execute_sweep_speedup_column() {
        let mut base = RunArgs::defaults();
        base.bench = Bench::Fib;
        base.n = 12;
        base.machine = profiles::test_profile();
        let out = execute_sweep(&SweepArgs {
            base,
            worker_list: vec![1, 2],
            jobs: 1,
        });
        assert!(out.contains("1.00x"), "{out}");
    }

    #[test]
    fn sweep_output_is_independent_of_jobs() {
        let mut base = RunArgs::defaults();
        base.bench = Bench::Fib;
        base.n = 12;
        base.machine = profiles::test_profile();
        let mk = |jobs| SweepArgs {
            base: base.clone(),
            worker_list: vec![1, 2, 4],
            jobs,
        };
        assert_eq!(execute_sweep(&mk(1)), execute_sweep(&mk(4)));
    }
}
