//! `dcs` — run any benchmark of the reproduction from the command line.

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match dcs_cli::parse(&args) {
        Ok(dcs_cli::Command::Help) => {
            print!("{}", dcs_cli::HELP);
            ExitCode::SUCCESS
        }
        Ok(dcs_cli::Command::Info) => {
            print!("{}", dcs_cli::info());
            ExitCode::SUCCESS
        }
        Ok(dcs_cli::Command::Run(a)) => {
            print!("{}", dcs_cli::execute_run(&a));
            ExitCode::SUCCESS
        }
        Ok(dcs_cli::Command::Sweep(a)) => {
            print!("{}", dcs_cli::execute_sweep(&a));
            ExitCode::SUCCESS
        }
        Ok(dcs_cli::Command::Check(a)) => {
            let (report, ok) = dcs_cli::execute_check(&a);
            print!("{report}");
            if ok {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("error: {e}\n");
            eprint!("{}", dcs_cli::HELP);
            ExitCode::FAILURE
        }
    }
}
