//! Randomized interleaving fuzz of the deque steal protocol.
//!
//! Drives the owner (push/pop) and multiple thieves (lock → take, with the
//! lock held across an arbitrary number of interleaved owner operations)
//! through proptest-generated schedules, checking the linearizability
//! invariants the scheduler relies on:
//!
//! * no task is lost or duplicated,
//! * owner pops see LIFO order relative to un-stolen pushes,
//! * thieves always receive the oldest resident task,
//! * a blocked owner (`Busy`) happens only while a thief holds the lock.

use proptest::prelude::*;

use dcs_core::deque::{owner_pop, owner_push, thief_lock, thief_take, DequeError};
use dcs_core::frame::Effect;
use dcs_core::layout::SegLayout;
use dcs_core::policy::{Policy, RunConfig};
use dcs_core::util::Slab;
use dcs_core::value::{ThreadHandle, Value};
use dcs_core::world::QueueItem;
use dcs_sim::{profiles, GlobalAddr, Machine, MachineConfig};

#[derive(Debug, Clone, Copy)]
enum Op {
    Push,
    Pop,
    /// Thief `t` tries to lock.
    Lock(u8),
    /// Thief `t` completes a held steal.
    Take(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        3 => Just(Op::Push),
        3 => Just(Op::Pop),
        2 => (0u8..3).prop_map(Op::Lock),
        2 => (0u8..3).prop_map(Op::Take),
    ]
}

fn item(tag: u64) -> QueueItem {
    QueueItem::Child {
        f: |_, _| Effect::ret(0u64),
        arg: Value::U64(tag),
        handle: ThreadHandle::single(GlobalAddr::new(0, 8)),
    }
}

fn tag_of(i: &QueueItem) -> u64 {
    match i {
        QueueItem::Child { arg, .. } => arg.as_u64(),
        QueueItem::Cont { th, .. } => th.tid,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn deque_never_loses_or_duplicates(ops in proptest::collection::vec(op_strategy(), 1..120)) {
        let cfg = RunConfig::new(4, Policy::ChildFull);
        let lay = SegLayout::new(&cfg);
        let mut m = Machine::new(
            MachineConfig::new(4, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        let mut items: Slab<QueueItem> = Slab::new();

        let mut next_tag = 0u64;
        let mut resident: Vec<u64> = Vec::new(); // oldest..newest
        let mut seen = [false; 200];
        let mut lock_holder: Option<u8> = None;

        for op in ops {
            match op {
                Op::Push => {
                    let r = owner_push(&mut m, &mut items, &lay, 0, item(next_tag));
                    match r {
                        Ok(_) => {
                            prop_assert!(lock_holder.is_none(), "push succeeded under thief lock");
                            resident.push(next_tag);
                            next_tag += 1;
                        }
                        Err(DequeError::Busy) => {
                            prop_assert!(lock_holder.is_some(), "spurious Busy")
                        }
                        Err(e) => prop_assert!(false, "unexpected deque error: {e:?}"),
                    }
                }
                Op::Pop => {
                    match owner_pop(&mut m, &mut items, &lay, 0) {
                        Ok((got, _)) => {
                            prop_assert!(lock_holder.is_none());
                            match got {
                                Some(it) => {
                                    let expect = resident.pop().expect("pop from known-empty");
                                    prop_assert_eq!(tag_of(&it), expect, "LIFO violated");
                                    let t = tag_of(&it) as usize;
                                    prop_assert!(!seen[t], "duplicate task {t}");
                                    seen[t] = true;
                                }
                                None => prop_assert!(resident.is_empty(), "pop missed a task"),
                            }
                        }
                        Err(DequeError::Busy) => prop_assert!(lock_holder.is_some()),
                        Err(e) => prop_assert!(false, "unexpected deque error: {e:?}"),
                    }
                }
                Op::Lock(t) => {
                    let (ok, _) = thief_lock(&mut m, &lay, 1 + t as usize, 0);
                    if ok {
                        prop_assert!(lock_holder.is_none(), "two lock holders");
                        lock_holder = Some(t);
                    } else {
                        prop_assert!(lock_holder.is_some(), "lock failed while free");
                    }
                }
                Op::Take(t) => {
                    if lock_holder != Some(t) {
                        continue; // this thief does not hold the lock
                    }
                    let take = thief_take(&mut m, &mut items, &lay, 1 + t as usize, 0);
                    lock_holder = None;
                    prop_assert!(take.is_ok(), "dead slot under a healthy schedule");
                    let (got, _) = take.unwrap();
                    match got {
                        Some((it, size)) => {
                            prop_assert!(!resident.is_empty());
                            let expect = resident.remove(0);
                            prop_assert_eq!(tag_of(&it), expect, "steal must take the oldest");
                            prop_assert_eq!(size, it.wire_size());
                            let tag = tag_of(&it) as usize;
                            prop_assert!(!seen[tag], "duplicate steal {tag}");
                            seen[tag] = true;
                        }
                        None => prop_assert!(resident.is_empty(), "steal missed a task"),
                    }
                }
            }
        }

        // Drain: everything still resident must come back out exactly once.
        if lock_holder.is_some() {
            let _ = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap();
            if let Some(expect) = (!resident.is_empty()).then(|| resident.remove(0)) {
                seen[expect as usize] = true;
            }
        }
        while let Ok((Some(it), _)) = owner_pop(&mut m, &mut items, &lay, 0) {
            let expect = resident.pop().expect("unexpected resident task");
            prop_assert_eq!(tag_of(&it), expect);
            seen[tag_of(&it) as usize] = true;
        }
        prop_assert!(resident.is_empty(), "tasks lost: {resident:?}");
        prop_assert!(items.is_empty(), "slab leaked {} items", items.len());
        for t in 0..next_tag {
            prop_assert!(seen[t as usize], "task {t} vanished");
        }
    }
}
