//! Scheduler protocol-path tests: drive the Fig. 3/4 DIE/JOIN machinery
//! through each of its branches with purpose-built task graphs and timing.
//!
//! The simulator is deterministic, so a workload shaped to hit a race
//! outcome hits it on every run — these tests pin the protocol behaviour,
//! not just end results.

use dcs_core::frame::frame;
use dcs_core::prelude::*;

/// Child that computes for `arg` microseconds, then returns 7.
fn slow_child(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    Effect::compute(VTime::us(arg.as_u64()), frame(|_, _| Effect::ret(7u64)))
}

/// Root: fork a child of `child_us`, compute `parent_us` in the
/// continuation, then join. On two workers the continuation is stolen, so
/// the relative durations select the Fig. 4 race outcome.
fn race_root(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let (child_us, parent_us) = arg.into_pair();
    let parent_us = parent_us.as_u64();
    Effect::fork(
        slow_child,
        child_us,
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::compute(
                VTime::us(parent_us),
                frame(move |_, _| {
                    Effect::join(h, frame(|v, _| Effect::ret(v.as_u64() + 1)))
                }),
            )
        }),
    )
}

fn run_race(child_us: u64, parent_us: u64) -> RunReport {
    let cfg = RunConfig::new(2, Policy::ContGreedy)
        .with_profile(profiles::itoa())
        .with_seg_bytes(64 << 20);
    run(
        cfg,
        Program::new(race_root, Value::pair(child_us.into(), parent_us.into())),
    )
}

/// Long child, short continuation: the stolen continuation reaches the join
/// first, suspends, and the dying child loses the race — it must migrate
/// and resume the joiner (`die_lost`, the §III-A2 capability).
#[test]
fn greedy_die_lost_migrates_joiner() {
    let r = run_race(2_000, 10);
    assert_eq!(r.result.as_u64(), 8);
    assert!(r.stats.steals_ok >= 1, "continuation must be stolen");
    assert_eq!(r.stats.die_lost, 1, "child must lose the race");
    assert_eq!(r.stats.outstanding_joins, 1);
    // The outstanding join is resumed promptly (greedy): far below the
    // stalling wait-queue round-trip scale.
    assert!(r.stats.avg_outstanding_time() < VTime::us(100));
}

/// Short child, long continuation: the child dies while the continuation
/// is still computing elsewhere — the producer wins the race (`die_won`)
/// and the joiner completes on the fast path.
#[test]
fn greedy_die_won_lets_joiner_self_serve() {
    let r = run_race(10, 2_000);
    assert_eq!(r.result.as_u64(), 8);
    assert!(r.stats.steals_ok >= 1);
    assert_eq!(r.stats.die_won, 1);
    assert_eq!(r.stats.die_lost, 0);
    assert_eq!(r.stats.outstanding_joins, 0, "join never suspends");
    assert_eq!(r.stats.joins_fast, 1);
}

/// Single worker: nothing is ever stolen, every join resolves through the
/// work-first fast path without one atomic operation.
#[test]
fn greedy_fast_path_without_steals() {
    let cfg = RunConfig::new(1, Policy::ContGreedy)
        .with_profile(profiles::itoa())
        .with_seg_bytes(64 << 20);
    let r = run(
        cfg,
        Program::new(race_root, Value::pair(50u64.into(), 50u64.into())),
    );
    assert_eq!(r.result.as_u64(), 8);
    assert_eq!(r.stats.die_fast, 1);
    assert_eq!(r.stats.die_won + r.stats.die_lost, 0);
    assert_eq!(r.fabric.remote_amos, 0, "fast path avoids atomics entirely");
}

/// Sweep the child/parent durations across the race window: every outcome
/// class must appear somewhere, and every run must be correct.
#[test]
fn race_window_sweep_reaches_all_paths() {
    let (mut fast, mut won, mut lost) = (0u64, 0u64, 0u64);
    for child_us in [1u64, 5, 20, 35, 50, 100, 500] {
        let r = run_race(child_us, 30);
        assert_eq!(r.result.as_u64(), 8, "child_us={child_us}");
        fast += r.stats.die_fast;
        won += r.stats.die_won;
        lost += r.stats.die_lost;
    }
    assert!(won > 0, "some child must win the race");
    assert!(lost > 0, "some child must lose the race");
    let _ = fast; // fast path needs an un-stolen parent; may or may not occur
}

/// A future with three consumers, all of which block before the producer
/// finishes: the producer must resume one immediately and enqueue the rest
/// as ready continuations (§V-D).
#[test]
fn multi_consumer_future_resumes_all_waiters() {
    fn consumer(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let h = arg.as_handle();
        Effect::join(h, frame(|v, _| Effect::ret(v.as_u64() * 2)))
    }

    fn root(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
        // Producer runs 500 µs; consumers join it immediately.
        Effect::fork_future(
            slow_child,
            500u64,
            3,
            frame(|h, _| {
                let fut = h.as_handle();
                Effect::fork(
                    consumer,
                    fut,
                    frame(move |c1, _| {
                        let c1 = c1.as_handle();
                        Effect::fork(
                            consumer,
                            fut,
                            frame(move |c2, _| {
                                let c2 = c2.as_handle();
                                Effect::call(
                                    consumer,
                                    fut,
                                    frame(move |v3, _| {
                                        let v3 = v3.as_u64();
                                        Effect::join(
                                            c1,
                                            frame(move |v1, _| {
                                                let v1 = v1.as_u64();
                                                Effect::join(
                                                    c2,
                                                    frame(move |v2, _| {
                                                        Effect::ret(v1 + v2.as_u64() + v3)
                                                    }),
                                                )
                                            }),
                                        )
                                    }),
                                )
                            }),
                        )
                    }),
                )
            }),
        )
    }

    for workers in [1usize, 2, 4] {
        let cfg = RunConfig::new(workers, Policy::ContGreedy)
            .with_profile(profiles::itoa())
            .with_seg_bytes(64 << 20);
        let r = run(cfg, Program::new(root, Value::Unit));
        assert_eq!(r.result.as_u64(), 42, "P={workers}"); // 3 × (7×2)
    }
}

/// Same future program under the stalling policy: waiters sit in wait
/// queues instead of migrating, but the result is identical and the
/// outstanding-join time is visibly worse than greedy's.
#[test]
fn multi_consumer_future_under_stalling() {
    fn consumer(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let h = arg.as_handle();
        Effect::join(h, frame(|v, _| Effect::ret(v.as_u64() * 2)))
    }
    fn root(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
        Effect::fork_future(
            slow_child,
            500u64,
            2,
            frame(|h, _| {
                let fut = h.as_handle();
                Effect::fork(
                    consumer,
                    fut,
                    frame(move |c1, _| {
                        let c1 = c1.as_handle();
                        Effect::call(
                            consumer,
                            fut,
                            frame(move |v2, _| {
                                let v2 = v2.as_u64();
                                Effect::join(
                                    c1,
                                    frame(move |v1, _| Effect::ret(v1.as_u64() + v2)),
                                )
                            }),
                        )
                    }),
                )
            }),
        )
    }
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        for workers in [1usize, 3] {
            let cfg = RunConfig::new(workers, policy)
                .with_profile(profiles::itoa())
                .with_seg_bytes(64 << 20);
            let r = run(cfg, Program::new(root, Value::Unit));
            assert_eq!(r.result.as_u64(), 28, "{policy:?} P={workers}");
        }
    }
}

/// ChildFull accounts full-thread stacks; ChildRtc never allocates any.
#[test]
fn full_stack_accounting_by_policy() {
    let spec_run = |policy| {
        run(
            RunConfig::new(2, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20),
            Program::new(race_root, Value::pair(20u64.into(), 20u64.into())),
        )
    };
    assert!(spec_run(Policy::ChildFull).full_stack_peak >= 1);
    assert_eq!(spec_run(Policy::ChildRtc).full_stack_peak, 0);
    assert_eq!(spec_run(Policy::ContGreedy).full_stack_peak, 0);
}

/// Evacuation-region accounting balances (peak observed, nothing leaked),
/// and only policies that evacuate use it.
#[test]
fn evacuation_accounting() {
    // Greedy with a guaranteed suspension evacuates exactly once.
    let r = run_race(2_000, 10);
    assert!(r.evac_peak > 0, "suspension must evacuate the stack");
    // ChildFull never evacuates (full threads keep their stacks).
    let r = run(
        RunConfig::new(2, Policy::ChildFull)
            .with_profile(profiles::itoa())
            .with_seg_bytes(64 << 20),
        Program::new(race_root, Value::pair(2_000u64.into(), 10u64.into())),
    );
    assert_eq!(r.evac_peak, 0);
}

/// Deep nesting: a 400-deep spawn chain exercises uni-address stacking far
/// beyond typical depth and must not leak slots.
#[test]
fn deep_spawn_chain() {
    fn chain(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n == 0 {
            return Effect::ret(0u64);
        }
        Effect::fork(
            chain,
            n - 1,
            frame(|h, _| {
                Effect::join(h.as_handle(), frame(|v, _| Effect::ret(v.as_u64() + 1)))
            }),
        )
    }
    let mut cfg = RunConfig::new(3, Policy::ContGreedy)
        .with_profile(profiles::test_profile())
        .with_seg_bytes(64 << 20);
    cfg.stack_slot = 4 << 10; // deep chain; smaller slots keep the region sane
    let r = run(cfg, Program::new(chain, 400u64));
    assert_eq!(r.result.as_u64(), 400);
    assert!(r.uni_peak >= 4 * 1024 * 10, "nesting must stack up");
}

/// Cooperative yield: two interleaving loops must both complete; under
/// continuation stealing a yielded continuation is stealable.
#[test]
fn yield_interleaves_and_completes() {
    fn yielder(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n == 0 {
            return Effect::ret(0u64);
        }
        Effect::yield_now(frame(move |_, _| {
            Effect::call(yielder, n - 1, frame(|v, _| Effect::ret(v.as_u64() + 1)))
        }))
    }
    fn root(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
        Effect::fork(
            yielder,
            10u64,
            frame(|h, _| {
                let h = h.as_handle();
                Effect::call(
                    yielder,
                    10u64,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }
    for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildFull] {
        for workers in [1usize, 2, 4] {
            let cfg = RunConfig::new(workers, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20);
            let r = run(cfg, Program::new(root, Value::Unit));
            assert_eq!(r.result.as_u64(), 20, "{policy:?} P={workers}");
        }
    }
}

/// Yielded continuations are stealable under continuation stealing: with a
/// long yield chain on worker 0 and an idle worker 1, steals must occur.
#[test]
fn yielded_continuations_are_stealable() {
    fn spin(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n == 0 {
            return Effect::ret(0u64);
        }
        Effect::compute(
            VTime::us(20),
            frame(move |_, _| {
                Effect::yield_now(frame(move |_, _| {
                    Effect::call(spin, n - 1, frame(|v, _| Effect::ret(v.as_u64())))
                }))
            }),
        )
    }
    fn root(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
        // Two independent yield-loops; only yielding makes the second one
        // stealable while the first runs.
        Effect::fork(
            spin,
            50u64,
            frame(|h, _| {
                let h = h.as_handle();
                Effect::call(
                    spin,
                    50u64,
                    frame(move |_, _| Effect::join(h, frame(|_, _| Effect::ret(0u64)))),
                )
            }),
        )
    }
    let cfg = RunConfig::new(2, Policy::ContGreedy)
        .with_profile(profiles::itoa())
        .with_seg_bytes(64 << 20);
    let r = run(cfg, Program::new(root, Value::Unit));
    assert_eq!(r.result.as_u64(), 0);
    assert!(r.stats.steals_ok > 0, "yielded work must be stolen");
}

/// RtC threads cannot yield — the runtime rejects it loudly.
#[test]
#[should_panic(expected = "run-to-completion threads cannot yield")]
fn rtc_yield_panics() {
    fn bad(_arg: Value, _ctx: &mut TaskCtx) -> Effect {
        Effect::yield_now(frame(|_, _| Effect::ret(0u64)))
    }
    let cfg = RunConfig::new(1, Policy::ChildRtc)
        .with_profile(profiles::test_profile())
        .with_seg_bytes(64 << 20);
    let _ = run(cfg, Program::new(bad, Value::Unit));
}

/// The iso-address scheme runs every policy correctly; its pinned peak
/// grows with concurrency while uni-address stays depth-bounded, and it
/// never records migration conflicts or evacuations.
#[test]
fn iso_address_mode_works_and_costs_address_space() {
    fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n < 2 {
            return Effect::ret(n);
        }
        Effect::fork(
            fib,
            n - 1,
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    fib,
                    n - 2,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }
    let mk = |scheme| {
        run(
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::itoa())
                .with_address_scheme(scheme)
                .with_seg_bytes(64 << 20),
            Program::new(fib, 13u64),
        )
    };
    let uni = mk(AddressScheme::Uni);
    let iso = mk(AddressScheme::Iso);
    assert_eq!(uni.result.as_u64(), 233);
    assert_eq!(iso.result.as_u64(), 233);
    assert_eq!(uni.iso_peak, 0);
    assert_eq!(iso.uni_peak, 0);
    assert!(iso.iso_peak > 0);
    assert_eq!(iso.uni_conflicts, 0, "iso-address never conflicts");
    assert_eq!(iso.evac_peak, 0, "iso-address never evacuates");
    // Iso pins at least as much as uni's per-worker peak (globally unique
    // ranges for every live thread vs. per-worker depth).
    assert!(iso.iso_peak >= uni.uni_peak);
}

/// Iso-address under the stalling policy and with futures (LCS-like shape)
/// stays leak-free through suspension-heavy schedules.
#[test]
fn iso_address_with_suspensions() {
    let r = run(
        RunConfig::new(3, Policy::ContStalling)
            .with_profile(profiles::itoa())
            .with_address_scheme(AddressScheme::Iso)
            .with_seg_bytes(64 << 20),
        Program::new(race_root, Value::pair(800u64.into(), 10u64.into())),
    );
    assert_eq!(r.result.as_u64(), 8);
}

/// Straggler injection: with one worker computing 8× slower, work stealing
/// must rebalance — the makespan stays far below what the straggler would
/// need for an equal share, and the healthy policies stay close to the
/// homogeneous run.
#[test]
fn work_stealing_absorbs_a_straggler() {
    fn leafy(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let (lo, hi) = arg.into_pair();
        let (lo, hi) = (lo.as_u64(), hi.as_u64());
        if hi - lo == 1 {
            return Effect::compute(VTime::us(20), frame(|_, _| Effect::ret(1u64)));
        }
        let mid = lo + (hi - lo) / 2;
        Effect::fork(
            leafy,
            Value::pair(lo.into(), mid.into()),
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    leafy,
                    Value::pair(mid.into(), hi.into()),
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }
    let n: u64 = 512;
    let run_with = |straggle: bool| {
        let mut cfg = RunConfig::new(8, Policy::ContGreedy)
            .with_profile(profiles::itoa())
            .with_seg_bytes(64 << 20);
        if straggle {
            cfg = cfg.with_straggler(3, 8.0);
        }
        run(cfg, Program::new(leafy, Value::pair(0u64.into(), n.into())))
    };
    let healthy = run_with(false);
    let straggled = run_with(true);
    assert_eq!(healthy.result.as_u64(), n);
    assert_eq!(straggled.result.as_u64(), n);
    let ratio = straggled.elapsed.as_ns() as f64 / healthy.elapsed.as_ns() as f64;
    // Without rebalancing, the straggler's 1/8 share at 8× slowness would
    // dominate: elapsed ≈ homogeneous × 8. Work stealing keeps it near 1.
    assert!(
        ratio < 2.0,
        "stealing failed to absorb the straggler (ratio {ratio:.2})"
    );
    // And the straggler does measurably less work: others stole from it.
    assert!(straggled.stats.steals_ok > 0);
}
