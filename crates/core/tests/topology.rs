//! Topology-aware stealing: correctness under every victim policy, and the
//! locality effect on steal latency (the §VI future-work study).

use dcs_core::frame::frame;
use dcs_core::prelude::*;

fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
    let n = arg.as_u64();
    if n < 2 {
        return Effect::ret(n);
    }
    Effect::fork(
        fib,
        n - 1,
        frame(move |h, _| {
            let h = h.as_handle();
            Effect::call(
                fib,
                n - 2,
                frame(move |b, _| {
                    let b = b.as_u64();
                    Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                }),
            )
        }),
    )
}

fn run_with(topology: Topology, victim: VictimPolicy, workers: usize) -> RunReport {
    let cfg = RunConfig::new(workers, Policy::ContGreedy)
        .with_topology(topology)
        .with_victim(victim)
        .with_seg_bytes(64 << 20);
    run(cfg, Program::new(fib, 15u64))
}

#[test]
fn all_victim_policies_are_correct() {
    let policies = [
        VictimPolicy::Uniform,
        VictimPolicy::Locality { p_local: 0.9 },
        VictimPolicy::Hierarchical { local_tries: 2 },
    ];
    let topo = || Topology::Hierarchical {
        node_size: 4,
        intra_factor: 0.3,
    };
    for v in policies {
        let r = run_with(topo(), v, 12);
        assert_eq!(r.result.as_u64(), 610, "{v:?}");
        assert!(r.stats.steals_ok > 0);
    }
}

#[test]
fn locality_policies_cut_steal_latency_on_hierarchical_machines() {
    let topo = || Topology::Hierarchical {
        node_size: 8,
        intra_factor: 0.25,
    };
    let uniform = run_with(topo(), VictimPolicy::Uniform, 16);
    let local = run_with(topo(), VictimPolicy::Locality { p_local: 0.9 }, 16);
    assert_eq!(uniform.result, local.result);
    assert!(
        local.stats.avg_steal_latency() < uniform.stats.avg_steal_latency(),
        "locality {} should beat uniform {}",
        local.stats.avg_steal_latency(),
        uniform.stats.avg_steal_latency()
    );
}

#[test]
fn mesh_topology_scales_latency_with_distance() {
    // On a flat machine, steal latency is distance-independent; on a mesh
    // the uniform policy pays for far-away victims.
    let flat = run_with(Topology::Flat, VictimPolicy::Uniform, 16);
    let mesh = run_with(
        Topology::Mesh3d {
            node_size: 2,
            dims: (2, 2, 2),
            intra_factor: 0.3,
            hop_factor: 0.5,
            torus: false,
        },
        VictimPolicy::Uniform,
        16,
    );
    assert_eq!(flat.result, mesh.result);
    // Same seed, same schedule shape — but the mesh's mixture of cheap
    // intra-node and expensive multi-hop steals shifts the average.
    assert_ne!(
        flat.stats.avg_steal_latency(),
        mesh.stats.avg_steal_latency()
    );
}

#[test]
fn hierarchical_policy_escalates_when_node_is_dry() {
    // One node holds all the work (node_size 2: workers 0,1); workers in
    // the other node must escalate globally to make progress.
    let topo = Topology::Hierarchical {
        node_size: 2,
        intra_factor: 0.3,
    };
    let r = run_with(topo, VictimPolicy::Hierarchical { local_tries: 3 }, 6);
    assert_eq!(r.result.as_u64(), 610);
    assert!(r.stats.steals_ok > 0, "cross-node steals must happen");
}
