//! Run statistics: the measurements behind Table II and Fig. 7.
//!
//! The scheduler reports fine-grained events here; aggregation happens at
//! the end of a run. Two levels exist (see
//! [`crate::policy::TraceLevel`]): aggregate counters are always on, the
//! per-event series needed for the Fig. 7 time-series plot is opt-in.
//!
//! Metric definitions (matching §V-B):
//!
//! * **outstanding join** — a join that suspended its thread because the
//!   joined thread had not completed (a consequence of a steal);
//! * **outstanding join time** — from the moment the join's continuation
//!   became resumable (both the joining and the joined thread reached the
//!   synchronization point) until it was actually resumed;
//! * **steal latency** — from the first lock attempt of a successful steal
//!   until the stolen task is ready to run at the thief;
//! * **task copy time** — the payload-transfer portion of a steal (stack or
//!   descriptor bytes over the wire).

use dcs_sim::VTime;

use crate::util::U64Map;

/// Aggregate counters for one run.
#[derive(Debug, Default, Clone)]
pub struct RunStats {
    // -- steals ----------------------------------------------------------
    pub steals_ok: u64,
    pub steals_failed: u64,
    /// Multi-steal probe attempts abandoned because another victim's
    /// attempt committed first (won-but-unused locks released, un-acted-on
    /// span reads dropped). Never enters the steal-latency averages: only
    /// [`RunStats::steal_ok`] feeds those, and abandoned probes never reach
    /// it. Always 0 at `--multi-steal 1`.
    pub steals_abandoned: u64,
    /// Victim draws redrawn because the first choice was blacklisted
    /// (fault-injection resilience; always 0 in healthy runs).
    pub blacklist_skips: u64,
    steal_latency_sum: VTime,
    copy_time_sum: VTime,
    stolen_bytes_sum: u64,
    // -- joins -----------------------------------------------------------
    pub outstanding_joins: u64,
    outstanding_time_sum: VTime,
    /// Joins resolved on the fast path (no suspension).
    pub joins_fast: u64,
    /// Fig.-4 work-first fast path hits in DIE (parent popped, no atomic).
    pub die_fast: u64,
    /// DIE slow paths that won the race (went to the scheduler).
    pub die_won: u64,
    /// DIE slow paths that lost the race (migrated + resumed the joiner).
    pub die_lost: u64,
    // -- threads ---------------------------------------------------------
    pub threads_spawned: u64,
    pub threads_died: u64,
    // -- fail-stop recovery (always 0 without a kill plan) -----------------
    /// Workers lost to fail-stop kills.
    pub workers_lost: u64,
    /// Live frames that died with killed workers.
    pub tasks_lost: u64,
    /// Lineage records re-adopted by survivors.
    pub tasks_replayed: u64,
    /// Checkpoint puts of stolen-continuation headers to the thief's buddy
    /// (peer mirroring at steal splits; continuation policies only).
    pub ckpt_puts: u64,
    // -- imperfect failure detection (always 0 under the oracle) -----------
    /// Evictions whose victim turned out to be alive: the message detector
    /// suspected a live worker long enough for its lease to expire, a
    /// survivor evicted it, and the "corpse" later observed its own
    /// eviction and self-fenced (rejoining if permitted).
    pub false_suspects: u64,
    /// Evicted workers that rejoined as a fresh incarnation (empty deque,
    /// bumped epoch) instead of halting.
    pub rejoins: u64,
    // -- fence-free multiplicity (always 0 under other protocols) ----------
    /// Steals that took an already-claimed occupancy: the thief paid the
    /// payload transfer and discarded (the bounded-multiplicity case).
    pub ff_dups: u64,
    /// Steals that validated against an empty/stale/reused slot — benign
    /// lost races, cheaper than a dup (no payload transferred).
    pub ff_lost_races: u64,
    // -- busy time -------------------------------------------------------
    pub busy_total: VTime,
    // -- series (TraceLevel::Series) --------------------------------------
    pub series: bool,
    /// (time, +1/-1) transitions of the number of busy workers.
    pub busy_events: Vec<(VTime, i32)>,
    /// (ready_time, resumed_time) per outstanding join.
    pub join_intervals: Vec<(VTime, VTime)>,
    /// Per-worker busy intervals `(worker, start, end)` (trace export).
    pub busy_intervals: Vec<(u32, VTime, VTime)>,
    /// Successful steals `(thief, victim, start, end)` (trace export).
    pub steal_events: Vec<(u32, u32, VTime, VTime)>,
    // -- internal --------------------------------------------------------
    /// Die time per live entry (when its flag became set), for computing
    /// outstanding-join readiness. Removed when the entry is freed.
    die_times: U64Map<VTime>,
}

impl RunStats {
    pub fn new(series: bool) -> RunStats {
        RunStats {
            series,
            ..RunStats::default()
        }
    }

    // -- steal events ------------------------------------------------------

    pub fn steal_failed(&mut self) {
        self.steals_failed += 1;
    }

    /// A multi-steal probe was abandoned after another attempt committed.
    pub fn steal_abandoned(&mut self) {
        self.steals_abandoned += 1;
    }

    pub fn steal_ok(&mut self, latency: VTime, copy_time: VTime, bytes: usize) {
        self.steals_ok += 1;
        self.steal_latency_sum += latency;
        self.copy_time_sum += copy_time;
        self.stolen_bytes_sum += bytes as u64;
    }

    /// Record a successful steal's endpoints for trace export.
    pub fn note_steal_event(&mut self, thief: usize, victim: usize, start: VTime, end: VTime) {
        if self.series {
            self.steal_events
                .push((thief as u32, victim as u32, start, end));
        }
    }

    pub fn avg_steal_latency(&self) -> VTime {
        match self.steals_ok {
            0 => VTime::ZERO,
            n => self.steal_latency_sum / n,
        }
    }

    pub fn avg_copy_time(&self) -> VTime {
        if self.steals_ok == 0 {
            VTime::ZERO
        } else {
            self.copy_time_sum / self.steals_ok
        }
    }

    pub fn avg_stolen_bytes(&self) -> u64 {
        self.stolen_bytes_sum.checked_div(self.steals_ok).unwrap_or(0)
    }

    // -- join events -------------------------------------------------------

    /// The joined thread completed: record when entry `e`'s flag was set.
    pub fn note_die(&mut self, e: u64, now: VTime) {
        self.threads_died += 1;
        self.die_times.insert(e, now);
    }

    /// Entry freed: drop the die-time record.
    pub fn note_entry_freed(&mut self, e: u64) {
        self.die_times.remove(&e);
    }

    /// A join resolved without suspending.
    pub fn note_join_fast(&mut self) {
        self.joins_fast += 1;
    }

    /// A suspended join's continuation was resumed at `now`; it suspended at
    /// `suspended_at` waiting on entry `e`. Computes the outstanding join
    /// time as `now - max(die(e), suspended_at)`.
    pub fn note_join_resumed(&mut self, e: u64, suspended_at: VTime, now: VTime) {
        self.outstanding_joins += 1;
        let die = self
            .die_times
            .get(&e)
            .copied()
            // The joined thread must have died for the joiner to resume; a
            // missing record can only mean the entry address was never
            // die-noted, which strict runs assert against.
            .unwrap_or(suspended_at);
        let ready = die.max(suspended_at);
        self.outstanding_time_sum += now.saturating_sub(ready);
        if self.series {
            self.join_intervals.push((ready, now));
        }
    }

    pub fn avg_outstanding_time(&self) -> VTime {
        if self.outstanding_joins == 0 {
            VTime::ZERO
        } else {
            self.outstanding_time_sum / self.outstanding_joins
        }
    }

    // -- busy tracking -------------------------------------------------------

    pub fn note_busy(&mut self, now: VTime) {
        if self.series {
            self.busy_events.push((now, 1));
        }
    }

    pub fn note_idle(&mut self, now: VTime) {
        if self.series {
            self.busy_events.push((now, -1));
        }
    }

    pub fn add_busy(&mut self, dur: VTime) {
        self.busy_total += dur;
    }

    /// Record one worker's busy interval for trace export.
    pub fn note_busy_interval(&mut self, worker: usize, start: VTime, end: VTime) {
        if self.series {
            self.busy_intervals.push((worker as u32, start, end));
        }
    }

    // -- series post-processing ----------------------------------------------

    /// Sample the number of busy workers at `buckets` evenly spaced points in
    /// `[0, end]` (Fig. 7's filled area).
    pub fn busy_series(&self, end: VTime, buckets: usize) -> Vec<(VTime, i64)> {
        sample_counter(&self.busy_events, end, buckets)
    }

    /// Sample the number of ready-but-not-resumed outstanding joins
    /// (Fig. 7's line plot).
    pub fn ready_join_series(&self, end: VTime, buckets: usize) -> Vec<(VTime, i64)> {
        let mut events: Vec<(VTime, i32)> = Vec::with_capacity(self.join_intervals.len() * 2);
        for &(ready, resumed) in &self.join_intervals {
            events.push((ready, 1));
            events.push((resumed, -1));
        }
        events.sort();
        sample_counter(&events, end, buckets)
    }
}

/// DelaySpotter-style breakdown (Huynh & Taura, CLUSTER'17 — the paper's
/// \[50\]): how much idle time is *scheduler-caused*, i.e. spent while ready
/// work existed that no idle worker executed. A long outstanding-join time
/// is harmless while every worker is busy; it is precisely the overlap of
/// idleness with ready outstanding joins that indicts the scheduler (§V-B).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayReport {
    /// Σ over workers of busy time.
    pub busy: VTime,
    /// Σ over workers of idle time (P·elapsed − busy).
    pub idle: VTime,
    /// ∫ min(idle workers, ready outstanding joins) dt — idle capacity that
    /// ready-but-unexecuted joins could have filled.
    pub scheduler_delay: VTime,
    /// `scheduler_delay / idle` (0 when never idle).
    pub blame_fraction: f64,
}

impl RunStats {
    /// Compute the delay breakdown from series-level traces.
    ///
    /// Returns `None` unless the run was traced at
    /// [`crate::policy::TraceLevel::Series`].
    pub fn delay_report(&self, elapsed: VTime, workers: usize) -> Option<DelayReport> {
        if !self.series {
            return None;
        }
        // Merge busy transitions and join-interval endpoints into one
        // timeline, integrating min(idle, ready) over each segment.
        #[derive(Clone, Copy)]
        enum Ev {
            Busy(i64),
            Ready(i64),
        }
        let mut evs: Vec<(VTime, Ev)> =
            Vec::with_capacity(self.busy_events.len() + 2 * self.join_intervals.len());
        for &(t, d) in &self.busy_events {
            evs.push((t, Ev::Busy(d as i64)));
        }
        for &(ready, resumed) in &self.join_intervals {
            evs.push((ready, Ev::Ready(1)));
            evs.push((resumed, Ev::Ready(-1)));
        }
        evs.sort_by_key(|&(t, _)| t);

        let mut busy = 0i64;
        let mut ready = 0i64;
        let mut last = VTime::ZERO;
        let mut sched_delay_ns = 0u128;
        let mut busy_ns = 0u128;
        for (t, ev) in evs {
            let dt = t.saturating_sub(last).as_ns() as u128;
            let idle = (workers as i64 - busy).max(0);
            sched_delay_ns += dt * idle.min(ready.max(0)) as u128;
            busy_ns += dt * busy.max(0) as u128;
            last = t;
            match ev {
                Ev::Busy(d) => busy += d,
                Ev::Ready(d) => ready += d,
            }
        }
        // Tail to the end of the run.
        let dt = elapsed.saturating_sub(last).as_ns() as u128;
        busy_ns += dt * busy.max(0) as u128;

        let total = elapsed.as_ns() as u128 * workers as u128;
        let idle_ns = total.saturating_sub(busy_ns);
        let blame = if idle_ns == 0 {
            0.0
        } else {
            sched_delay_ns as f64 / idle_ns as f64
        };
        Some(DelayReport {
            busy: VTime::ns(busy_ns as u64),
            idle: VTime::ns(idle_ns as u64),
            scheduler_delay: VTime::ns(sched_delay_ns as u64),
            blame_fraction: blame,
        })
    }
}

/// Integrate +1/-1 events into bucketed counter samples.
fn sample_counter(events: &[(VTime, i32)], end: VTime, buckets: usize) -> Vec<(VTime, i64)> {
    assert!(buckets > 0);
    let mut sorted: Vec<(VTime, i32)> = events.to_vec();
    sorted.sort();
    let mut out = Vec::with_capacity(buckets + 1);
    let mut level = 0i64;
    let mut idx = 0;
    for b in 0..=buckets {
        let t = VTime::ns((end.as_ns() as u128 * b as u128 / buckets as u128) as u64);
        while idx < sorted.len() && sorted[idx].0 <= t {
            level += sorted[idx].1 as i64;
            idx += 1;
        }
        out.push((t, level));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steal_averages() {
        let mut s = RunStats::new(false);
        assert_eq!(s.avg_steal_latency(), VTime::ZERO);
        s.steal_ok(VTime::us(30), VTime::us(6), 1800);
        s.steal_ok(VTime::us(20), VTime::us(4), 200);
        s.steal_failed();
        assert_eq!(s.avg_steal_latency(), VTime::us(25));
        assert_eq!(s.avg_copy_time(), VTime::us(5));
        assert_eq!(s.avg_stolen_bytes(), 1000);
        assert_eq!(s.steals_failed, 1);
    }

    #[test]
    fn abandoned_and_failed_attempts_never_skew_steal_latency() {
        // Only `steal_ok` feeds the latency/copy/bytes averages and only
        // `note_steal_event` (called for successes alone) feeds the trace
        // series — abandoned multi-steal probes and dead-guarded fail-fast
        // attempts must leave both untouched however many there are.
        let mut s = RunStats::new(true);
        s.steal_ok(VTime::us(30), VTime::us(6), 1800);
        s.note_steal_event(1, 0, VTime::ZERO, VTime::us(30));
        for _ in 0..100 {
            s.steal_abandoned();
            s.steal_failed();
        }
        assert_eq!(s.steals_ok, 1);
        assert_eq!(s.steals_abandoned, 100);
        assert_eq!(s.steals_failed, 100);
        assert_eq!(s.avg_steal_latency(), VTime::us(30), "abandons don't enter the mean");
        assert_eq!(s.avg_copy_time(), VTime::us(6));
        assert_eq!(s.avg_stolen_bytes(), 1800);
        assert_eq!(s.steal_events.len(), 1, "one success, one trace event");
    }

    #[test]
    fn outstanding_join_time_uses_later_of_die_and_suspend() {
        let mut s = RunStats::new(false);
        // Suspend at 10, die at 50, resume at 80 → outstanding 30.
        s.note_die(0xA0, VTime::ns(50));
        s.note_join_resumed(0xA0, VTime::ns(10), VTime::ns(80));
        assert_eq!(s.avg_outstanding_time(), VTime::ns(30));
        // Die at 5 (before suspend at 10)... resume at 12 → outstanding 2.
        s.note_die(0xB0, VTime::ns(5));
        s.note_join_resumed(0xB0, VTime::ns(10), VTime::ns(12));
        assert_eq!(s.outstanding_joins, 2);
        assert_eq!(s.avg_outstanding_time(), VTime::ns(16)); // (30+2)/2
    }

    #[test]
    fn series_collection_and_sampling() {
        let mut s = RunStats::new(true);
        s.note_busy(VTime::ns(0));
        s.note_busy(VTime::ns(10));
        s.note_idle(VTime::ns(50));
        let series = s.busy_series(VTime::ns(100), 10);
        assert_eq!(series.len(), 11);
        assert_eq!(series[0].1, 1); // one busy at t=0
        assert_eq!(series[2].1, 2); // two busy at t=20
        assert_eq!(series[6].1, 1); // one went idle at 50
        assert_eq!(series[10].1, 1);
    }

    #[test]
    fn ready_join_series_counts_open_intervals() {
        let mut s = RunStats::new(true);
        s.note_die(1, VTime::ns(10));
        s.note_join_resumed(1, VTime::ns(5), VTime::ns(30)); // ready 10..30
        s.note_die(2, VTime::ns(15));
        s.note_join_resumed(2, VTime::ns(20), VTime::ns(40)); // ready 20..40
        let series = s.ready_join_series(VTime::ns(50), 50);
        let at = |t: u64| series[t as usize].1; // bucket width 1 ns
        assert_eq!(at(5), 0);
        assert_eq!(at(12), 1);
        assert_eq!(at(25), 2);
        assert_eq!(at(35), 1);
        assert_eq!(at(45), 0);
    }

    #[test]
    fn series_disabled_skips_events() {
        let mut s = RunStats::new(false);
        s.note_busy(VTime::ns(1));
        s.note_die(9, VTime::ns(2));
        s.note_join_resumed(9, VTime::ns(1), VTime::ns(5));
        assert!(s.busy_events.is_empty());
        assert!(s.join_intervals.is_empty());
        // But the aggregates still updated.
        assert_eq!(s.outstanding_joins, 1);
    }

    #[test]
    fn delay_report_integrates_idle_overlap() {
        let mut s = RunStats::new(true);
        // 2 workers, 100 ns run. Worker 0 busy the whole time; worker 1
        // busy [0,40). A join is ready-but-unexecuted during [50, 90):
        // worker 1 idles through all of it → 40 ns scheduler delay.
        s.note_busy(VTime::ns(0)); // worker 0
        s.note_busy(VTime::ns(0)); // worker 1
        s.note_idle(VTime::ns(40)); // worker 1 goes idle
        s.note_die(1, VTime::ns(50));
        s.note_join_resumed(1, VTime::ns(10), VTime::ns(90));
        let r = s.delay_report(VTime::ns(100), 2).unwrap();
        assert_eq!(r.busy, VTime::ns(140)); // 100 + 40
        assert_eq!(r.idle, VTime::ns(60)); // worker 1: 60 ns
        assert_eq!(r.scheduler_delay, VTime::ns(40));
        assert!((r.blame_fraction - 40.0 / 60.0).abs() < 1e-9);
    }

    #[test]
    fn delay_report_zero_when_never_idle_with_ready_work() {
        let mut s = RunStats::new(true);
        s.note_busy(VTime::ns(0));
        // Join ready while the only worker is busy: harmless (§V-B).
        s.note_die(1, VTime::ns(10));
        s.note_join_resumed(1, VTime::ns(5), VTime::ns(80));
        s.note_idle(VTime::ns(90));
        let r = s.delay_report(VTime::ns(100), 1).unwrap();
        assert_eq!(r.scheduler_delay, VTime::ZERO);
        assert_eq!(r.idle, VTime::ns(10));
    }

    #[test]
    fn delay_report_requires_series() {
        let s = RunStats::new(false);
        assert!(s.delay_report(VTime::ns(1), 1).is_none());
    }

    #[test]
    fn entry_free_clears_die_record() {
        let mut s = RunStats::new(false);
        s.note_die(7, VTime::ns(10));
        s.note_entry_freed(7);
        // A later suspension on a reused address must not see the stale die.
        s.note_join_resumed(7, VTime::ns(100), VTime::ns(120));
        assert_eq!(s.avg_outstanding_time(), VTime::ns(20));
    }
}
