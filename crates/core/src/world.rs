//! Shared simulation state: the machine plus the runtime's side tables.
//!
//! Pinned memory (in `dcs-sim` segments) holds the *protocol words* — flags,
//! counters, deque bounds, context locations — exactly as in the paper.
//! The Rust objects those words refer to (boxed continuation stacks, task
//! argument values) live in per-worker side tables here and are *moved*
//! between workers when the corresponding bulk transfer is charged on the
//! fabric. This keeps every protocol decision observable in pinned memory
//! while avoiding byte-serialization of closures.

use dcs_sim::{GlobalAddr, Machine, VTime};
use dcs_uniaddr::{EvacRegion, IsoAlloc, UniRegion};

use crate::dedup::{ClaimSet, DoneFlag};
use crate::frame::{TaskFn, VThread};
use crate::policy::RunConfig;
use crate::remote_free::RemoteRegistry;
use crate::stats::RunStats;
use crate::util::{Slab, U64Map};
use crate::value::{ThreadHandle, Value};
use crate::watchdog::{Watchdog, WatchdogReport};

/// Base wire size of a child-stealing task descriptor: function pointer,
/// thread-entry handle and queue-record header. With a typical 9-byte scalar
/// argument this gives the paper's ~55-byte stolen tasks.
pub const DESC_BASE: usize = 46;

/// Key of one worker *incarnation* in the eviction [`ClaimSet`]: evicting
/// `(w, epoch)` is a distinct, exactly-once event per epoch, so a worker
/// that rejoined as epoch `e+1` can later be evicted again without
/// colliding with its epoch-`e` eviction claim.
pub fn evict_key(worker: usize, epoch: u64) -> u64 {
    debug_assert!(epoch < (1 << 32), "epoch counter overflowed the key split");
    ((worker as u64) << 32) | epoch
}

/// An item in a worker's stealable deque.
pub enum QueueItem {
    /// A continuation (whole suspended stack). `spawned_child` is the entry
    /// of the child whose spawn pushed this continuation, or NULL for a
    /// ready continuation re-enqueued by a future producer — the Fig.-4
    /// work-first fast path must only fire when the popped item really is
    /// the dying child's parent.
    Cont {
        th: VThread,
        spawned_child: GlobalAddr,
        /// When this continuation became stealable (profiling).
        since: VTime,
    },
    /// A not-yet-started child task (child stealing).
    Child {
        f: TaskFn,
        arg: Value,
        handle: ThreadHandle,
    },
}

impl std::fmt::Debug for QueueItem {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            QueueItem::Cont {
                th, spawned_child, ..
            } => write!(f, "Cont({th:?}, child={spawned_child:?})"),
            QueueItem::Child { arg, handle, .. } => {
                write!(f, "Child(arg={arg:?}, entry={:?})", handle.entry)
            }
        }
    }
}

impl QueueItem {
    /// Bytes moved if this item is stolen.
    pub fn wire_size(&self) -> usize {
        match self {
            QueueItem::Cont { th, .. } => th.stack_bytes(),
            QueueItem::Child { arg, .. } => DESC_BASE + arg.wire_size(),
        }
    }
}

/// Continuation-lineage record: the origin of one replayable thread under
/// a fail-stop fault plan. A thread's origin — function pointer, argument,
/// own entry handle — is pure data, so the record is everything a survivor
/// needs to re-execute the thread from scratch if its host dies before the
/// entry flag is published. Three kinds of thread carry one:
///
/// * **child descriptors** (ChildRtc): recorded at steal time, keyed by
///   the thief/executor — PR 4's original machinery;
/// * **continuation threads** (ContGreedy/ContStalling): recorded at the
///   fork that creates them, and *re-keyed* at every migration (steal
///   split take, greedy joiner migration) so `lineage[w]` always indexes
///   the threads worker `w` physically holds;
/// * **the root thread**: recorded on worker 0 at startup with a NULL
///   handle, so a worker-0 kill re-elects a root holder via replay
///   instead of aborting.
///
/// `done` flips when the thread dies (its completion is globally visible)
/// or when the record is superseded by a re-key or a replay; racing
/// claimers (replay vs. re-key under cascading kills) are arbitrated by the
/// flag's first-claimer-wins [`DoneFlag::claim`].
pub struct LineageRec {
    pub f: TaskFn,
    pub arg: Value,
    pub handle: ThreadHandle,
    /// Thread id of the live incarnation this record describes. Replay
    /// assigns a fresh id, so at end of run any still-undone record names a
    /// thread that never completed anywhere (lost with its worker, or an
    /// orphaned duplicate abandoned at termination) — the watchdog retires
    /// it instead of reporting lost work.
    pub tid: u64,
    pub done: DoneFlag,
}

/// Why a fail-stop loss could not be recovered (typed abort reason).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum UnrecoverableReason {
    /// ChildFull ties every task to a private full stack that is neither
    /// replayable pure data nor mirrored: any kill aborts the run.
    FullStacks,
    /// Every worker is dead — no survivor is left to replay the lineage
    /// (all mirrors died with their owners).
    AllWorkersDead,
}

impl std::fmt::Display for UnrecoverableReason {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            UnrecoverableReason::FullStacks => {
                write!(f, "full private stacks cannot be replayed or mirrored")
            }
            UnrecoverableReason::AllWorkersDead => {
                write!(f, "every worker died; no survivor holds a mirror")
            }
        }
    }
}

/// The fail-stop lineage log: `log(w)` holds the origin record of every
/// replayable thread worker `w` physically holds (see [`LineageRec`]).
///
/// Sparse: only workers that ever recorded a thread own a per-worker log,
/// so an armed 10⁵-worker run where a handful of workers do all the
/// spawning stays O(records), not O(workers). Backed by a `BTreeMap` so
/// whole-log iteration (end-of-run settlement) visits workers in id order —
/// the exact order the former `Vec<Vec<_>>` gave — keeping retirement
/// bookkeeping deterministic.
#[derive(Default)]
pub struct Lineage {
    logs: std::collections::BTreeMap<usize, Vec<LineageRec>>,
}

impl Lineage {
    /// Worker `w`'s records (empty slice if it never recorded any).
    pub fn log(&self, w: usize) -> &[LineageRec] {
        self.logs.get(&w).map_or(&[], |v| v)
    }

    /// Append a record under worker `w`, returning its index.
    pub fn push(&mut self, w: usize, rec: LineageRec) -> usize {
        let log = self.logs.entry(w).or_default();
        log.push(rec);
        log.len() - 1
    }

    /// Record `(w, i)`; the pair must have come from [`Self::push`].
    pub fn rec(&self, w: usize, i: usize) -> &LineageRec {
        &self.logs[&w][i]
    }

    /// Mutable access to record `(w, i)`.
    pub fn rec_mut(&mut self, w: usize, i: usize) -> &mut LineageRec {
        &mut self.logs.get_mut(&w).expect("lineage log exists")[i]
    }

    /// Every record, in (worker id, index) order.
    pub fn iter(&self) -> impl Iterator<Item = &LineageRec> {
        self.logs.values().flatten()
    }
}

/// A thread's return value parked in its entry, plus its wire size (charged
/// when a remote joiner fetches it).
pub struct StoredVal {
    pub v: Value,
    pub size: u32,
}

/// Runtime metadata of a live thread entry (kept owner-side; freed with it).
#[derive(Clone, Copy, Debug)]
pub struct EntryMeta {
    pub consumers: u32,
    /// Pinned bytes occupied by the entry record.
    pub bytes: u32,
}

/// Rust-side state of one worker that *other* workers may touch (through
/// charged fabric operations): deque payloads and evacuated threads.
pub struct WorkerShared {
    /// Payload objects referenced by this worker's deque ring.
    pub items: Slab<QueueItem>,
    /// Threads suspended at greedy joins, parked in the evacuation region;
    /// referenced from pinned saved-context records.
    pub saved: Slab<VThread>,
    /// Uni-address region occupancy.
    pub uni: UniRegion,
    /// Evacuation region accounting.
    pub evac: EvacRegion,
    /// Remote-object registry (local-collection strategy state).
    pub robj: RemoteRegistry,
    /// Live/peak count of full-thread stacks (ChildFull memory footprint).
    pub full_stacks_live: u64,
    pub full_stacks_peak: u64,
    /// Fence-free protocol: ticket currently occupying each live slab key
    /// of this worker's deque (`slab key → ticket`). Thieves validate a
    /// ring-slot read against this map so a stale read of a reused slot
    /// becomes a benign lost race, never a wrong-payload execution.
    pub ff_tickets: U64Map<u64>,
    /// Fence-free protocol: per-worker monotonic ticket counter (combined
    /// with the worker id into globally unique claim tickets).
    pub ff_next_ticket: u64,
}

impl WorkerShared {
    pub fn new(cfg: &RunConfig) -> WorkerShared {
        WorkerShared {
            items: Slab::new(),
            saved: Slab::new(),
            // Size the region for deep nesting: slots * generous depth.
            uni: UniRegion::with_default_base(cfg.stack_slot * 4096),
            evac: EvacRegion::new(),
            robj: RemoteRegistry::new(cfg.collect_limit),
            full_stacks_live: 0,
            full_stacks_peak: 0,
            ff_tickets: U64Map::default(),
            ff_next_ticket: 0,
        }
    }

    /// Mint a globally unique fence-free claim ticket for a new deque
    /// occupancy on worker `me`. Tickets are nonzero (a zero ring word
    /// means "empty slot") and never reused within a run.
    pub fn ff_fresh_ticket(&mut self, me: usize) -> u64 {
        self.ff_next_ticket += 1;
        ((me as u64) << 48) | self.ff_next_ticket
    }

    pub fn note_full_stack_alloc(&mut self) {
        self.full_stacks_live += 1;
        self.full_stacks_peak = self.full_stacks_peak.max(self.full_stacks_live);
    }

    pub fn note_full_stack_free(&mut self) {
        debug_assert!(self.full_stacks_live > 0);
        self.full_stacks_live -= 1;
    }
}

/// All runtime state shared across workers (next to the [`Machine`]).
pub struct RtShared {
    pub cfg: RunConfig,
    /// Return values parked in thread entries, keyed by entry address.
    pub retvals: U64Map<StoredVal>,
    /// Live entry metadata, keyed by entry address.
    pub meta: U64Map<EntryMeta>,
    pub per: Vec<WorkerShared>,
    pub stats: RunStats,
    /// Global iso-address allocator (used instead of the per-worker
    /// uni-address regions when the run selects [`crate::policy::AddressScheme::Iso`]).
    pub iso: IsoAlloc,
    /// Monotonic thread-id source.
    pub next_tid: u64,
    /// The root task's return value, set when it dies.
    pub result: Option<Value>,
    /// Invariant watchdog; allocated only when the run asks for it (or runs
    /// with active fault injection), so healthy runs pay nothing.
    pub watch: Option<Box<Watchdog>>,
    /// Fail-stop lineage log (armed fault plans only): survivors can
    /// re-execute the subset a dead worker never completed. Records are
    /// marked `done` rather than removed; empty in healthy runs.
    pub lineage: Lineage,
    /// Eviction arbiter: one claim per `(worker, epoch)` incarnation end
    /// (see [`evict_key`]). The first survivor to confirm an incarnation's
    /// death — by oracle confirmation or by suspicion-lease expiry — wins
    /// the claim, bumps the victim's epoch in the machine registry and
    /// drains `lineage[w]`'s undone records into the replay pool
    /// (exactly-once hand-off); every later confirmer of the *same*
    /// incarnation observes the claim and stands down.
    pub evictions: ClaimSet,
    /// Replay pool: `(worker, index)` references into `lineage` enqueued by
    /// death confirmers and drained by any idle survivor.
    pub replay_pool: std::collections::VecDeque<(usize, usize)>,
    /// Set when a fail-stop loss cannot be recovered: `(worker, lost frame
    /// tids, reason)`. Aborts the run with a typed outcome instead of a
    /// hang.
    pub unrecoverable: Option<(usize, Vec<u64>, UnrecoverableReason)>,
    /// Fence-free protocol: the shared claim set arbitrating multiplicity —
    /// the first taker to claim an occupancy's ticket executes it; later
    /// takers observe the claim and discard their copy. Models the
    /// `taken[]` array of the fence-free algorithm (the one word a taker
    /// *writes* before executing).
    pub ff_claims: ClaimSet,
    /// Whether owner-side lock spins may park on the engine's wake
    /// mechanism instead of re-stepping every poll. On for plain runs;
    /// forced off under schedule exploration, whose reordered steps break
    /// the wake-instant computation (see `Machine::park_on_own_word`).
    pub allow_park: bool,
}

impl RtShared {
    pub fn new(cfg: RunConfig) -> RtShared {
        let per = (0..cfg.workers).map(|_| WorkerShared::new(&cfg)).collect();
        let series = cfg.trace == crate::policy::TraceLevel::Series;
        let watch = cfg
            .watchdog_enabled()
            .then(|| Box::new(Watchdog::new(cfg.stall_limit)));
        RtShared {
            cfg,
            retvals: U64Map::default(),
            meta: U64Map::default(),
            per,
            stats: RunStats::new(series),
            iso: IsoAlloc::new(),
            next_tid: 0,
            result: None,
            watch,
            lineage: Lineage::default(),
            evictions: ClaimSet::new(),
            replay_pool: std::collections::VecDeque::new(),
            unrecoverable: None,
            ff_claims: ClaimSet::new(),
            allow_park: true,
        }
    }

    pub fn fresh_tid(&mut self) -> u64 {
        self.next_tid += 1;
        self.stats.threads_spawned += 1;
        if let Some(w) = &mut self.watch {
            w.spawn(self.next_tid);
        }
        self.next_tid
    }

    // -- watchdog hooks (all no-ops when the watchdog is off) --------------

    /// A thread completed at `now`.
    pub fn watch_death(&mut self, tid: u64, now: VTime) {
        if let Some(w) = &mut self.watch {
            w.death(tid, now);
        }
    }

    /// A non-death progress event (e.g. a successful steal).
    pub fn watch_progress(&mut self, now: VTime) {
        if let Some(w) = &mut self.watch {
            w.progress(now);
        }
    }

    /// A worker sleeps through a crash-stop window ending at `until`.
    pub fn watch_crash_sleep(&mut self, until: VTime) {
        if let Some(w) = &mut self.watch {
            w.crash_sleep(until);
        }
    }

    /// Idle-loop stall poll.
    pub fn watch_stall(&mut self, now: VTime) {
        if let Some(w) = &mut self.watch {
            w.check_stall(now);
        }
    }

    /// A deque operation surfaced a typed protocol error (dead ring slot on
    /// worker `owner`'s deque). Returns true when a watchdog recorded it —
    /// the scheduler then degrades gracefully; false means no watchdog is
    /// attached and the caller should fail loudly.
    pub fn watch_deque_protocol(&mut self, op: &'static str, owner: usize, index: u64) -> bool {
        match &mut self.watch {
            Some(w) => {
                w.deque_protocol(op, owner, index);
                true
            }
            None => false,
        }
    }

    /// Gate an entry free: records a double free (and vetoes the free) when
    /// the entry's metadata is already gone. Without a watchdog the free
    /// proceeds unconditionally (strict runs catch corruption via asserts).
    pub fn watch_check_free(&mut self, entry: u64) -> bool {
        let present = self.meta.contains_key(&entry);
        match &mut self.watch {
            Some(w) => w.check_free(entry, present),
            None => true,
        }
    }

    /// A thread is known to never complete (lost with its worker and
    /// re-executed under a fresh id, or an orphaned duplicate abandoned at
    /// termination).
    pub fn watch_retire(&mut self, tid: u64) {
        if let Some(w) = &mut self.watch {
            w.retire(tid);
        }
    }

    /// End-of-run lineage settlement (armed fault plans only): any record
    /// still undone names a thread that never completed anywhere — its
    /// worker died with it and a fresh-id replay covered the work, or the
    /// duplicate subtree it belonged to was abandoned at termination. Both
    /// are expected under kills; retire them so the lost-task oracle keeps
    /// meaning for everything else.
    pub fn watch_settle_lineage(&mut self) {
        if self.watch.is_none() {
            return;
        }
        let tids: Vec<u64> = self
            .lineage
            .iter()
            .filter(|r| !r.done.is_done())
            .map(|r| r.tid)
            .collect();
        for t in tids {
            self.watch_retire(t);
        }
    }

    /// Detach and close the watchdog (end of run).
    pub fn watch_finish(&mut self) -> Option<WatchdogReport> {
        self.watch.take().map(|w| w.finish())
    }

    /// A fail-stop kill took `worker` down while it held `tids` live
    /// frames. Recoverable losses (`fail == None`) only retire the frames
    /// (replay re-creates the work under fresh tids); an unrecoverable
    /// loss latches the typed abort for the runner.
    pub fn note_worker_lost(
        &mut self,
        worker: usize,
        tids: Vec<u64>,
        fail: Option<UnrecoverableReason>,
    ) {
        self.stats.workers_lost += 1;
        self.stats.tasks_lost += tids.len() as u64;
        if let Some(w) = &mut self.watch {
            w.worker_lost(worker, &tids, fail.is_none());
        }
        if let Some(reason) = fail {
            if self.unrecoverable.is_none() {
                self.unrecoverable = Some((worker, tids, reason));
            }
        }
    }

    /// A *live* worker observed its own eviction and self-fenced, shedding
    /// `tids` in-flight frames (false suspicion by the message detector).
    /// The frames are discounted like a recoverable kill's — the lineage
    /// drain replays them under fresh ids — but the worker is not counted
    /// lost: it rejoins as a fresh incarnation (or halts, if the plan
    /// disallows rejoin).
    pub fn note_worker_evicted(&mut self, worker: usize, tids: Vec<u64>) {
        self.stats.false_suspects += 1;
        self.stats.tasks_lost += tids.len() as u64;
        if let Some(w) = &mut self.watch {
            w.worker_evicted(worker, &tids);
        }
    }

    /// The message detector started suspecting `worker` (stall-report
    /// bookkeeping only; the eviction decision is the scheduler's).
    pub fn watch_suspect(&mut self, worker: usize) {
        if let Some(w) = &mut self.watch {
            w.suspect(worker);
        }
    }

    /// A delayed heartbeat cleared the suspicion of `worker`.
    pub fn watch_unsuspect(&mut self, worker: usize) {
        if let Some(w) = &mut self.watch {
            w.unsuspect(worker);
        }
    }

    /// Split-borrow two distinct workers' shared state.
    pub fn two(&mut self, a: usize, b: usize) -> (&mut WorkerShared, &mut WorkerShared) {
        assert_ne!(a, b);
        if a < b {
            let (lo, hi) = self.per.split_at_mut(b);
            (&mut lo[a], &mut hi[0])
        } else {
            let (lo, hi) = self.per.split_at_mut(a);
            (&mut hi[0], &mut lo[b])
        }
    }
}

/// The engine world: machine + runtime shared state.
pub struct World {
    pub m: Machine,
    pub rt: RtShared,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::ret_frame;
    use crate::policy::Policy;

    fn mk_rt() -> RtShared {
        RtShared::new(RunConfig::new(4, Policy::ContGreedy))
    }

    #[test]
    fn two_splits_correctly() {
        let mut rt = mk_rt();
        rt.per[1].full_stacks_live = 11;
        rt.per[3].full_stacks_live = 33;
        let (a, b) = rt.two(1, 3);
        assert_eq!(a.full_stacks_live, 11);
        assert_eq!(b.full_stacks_live, 33);
        let (a, b) = rt.two(3, 1);
        assert_eq!(a.full_stacks_live, 33);
        assert_eq!(b.full_stacks_live, 11);
    }

    #[test]
    #[should_panic]
    fn two_same_index_panics() {
        let mut rt = mk_rt();
        let _ = rt.two(2, 2);
    }

    #[test]
    fn fresh_tids_are_unique_and_counted() {
        let mut rt = mk_rt();
        let a = rt.fresh_tid();
        let b = rt.fresh_tid();
        assert_ne!(a, b);
        assert_eq!(rt.stats.threads_spawned, 2);
    }

    #[test]
    fn queue_item_sizes() {
        let mut th = VThread::new(1, |_, _| crate::frame::Effect::ret(0u64), Value::Unit, ThreadHandle::single(GlobalAddr::NULL));
        th.frames.push(ret_frame(0u64));
        let stack = th.stack_bytes();
        let cont = QueueItem::Cont {
            th,
            spawned_child: GlobalAddr::NULL,
            since: VTime::ZERO,
        };
        assert_eq!(cont.wire_size(), stack);
        let child = QueueItem::Child {
            f: |_, _| crate::frame::Effect::ret(0u64),
            arg: Value::U64(5),
            handle: ThreadHandle::single(GlobalAddr::new(0, 8)),
        };
        // 46 + 9 = 55 bytes: the paper's descriptor size.
        assert_eq!(child.wire_size(), 55);
    }

    #[test]
    fn full_stack_accounting() {
        let mut ws = WorkerShared::new(&RunConfig::new(1, Policy::ChildFull));
        ws.note_full_stack_alloc();
        ws.note_full_stack_alloc();
        ws.note_full_stack_free();
        ws.note_full_stack_alloc();
        assert_eq!(ws.full_stacks_live, 2);
        assert_eq!(ws.full_stacks_peak, 2);
    }
}
