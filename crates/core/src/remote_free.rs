//! Freeing remote objects (§III-B).
//!
//! Thread entries and saved-context records are *remote objects*: allocated
//! in their owner's pinned segment but freed, possibly, by whichever worker
//! finishes the join protocol. Two strategies are implemented:
//!
//! * **Lock queue** (baseline, original MassiveThreads/DM): each worker has a
//!   lock-protected incoming buffer in pinned memory. A remote free acquires
//!   the lock, bumps the counter, inserts the object location and releases —
//!   four communication round trips charged to the *remote* worker. The
//!   owner drains the buffer locally when it next allocates.
//! * **Local collection** (the paper's optimization): the owner keeps every
//!   live remote object in a local registry; each object carries a *free
//!   bit* word in pinned memory. A remote free is one **non-blocking** put
//!   of the free bit; the owner sweeps the registry and reclaims marked
//!   objects when live bytes exceed a limit. This moves almost the entire
//!   cost from remote workers to cheap local operations.
//!
//! Both free protocols complete within a single simulator step, so the
//! lock-queue lock is never observed held across steps — contention
//! serializes through virtual time itself. (The deque lock, by contrast, is
//! deliberately held across steps; see `deque.rs`.)

use dcs_sim::{FabricMode, GlobalAddr, Machine, VTime, WorkerId, WORD};

use crate::layout::{SegLayout, FQ_COUNT, FQ_LOCK};
use crate::policy::FreeStrategy;
use crate::util::U64Map;
use crate::world::WorkerShared;

/// Extra pinned word appended to every local-collection object for its free
/// bit.
const FREE_BIT_BYTES: u32 = WORD;

#[inline]
fn round_up(bytes: u32) -> u32 {
    bytes.div_ceil(WORD) * WORD
}

/// Byte offset of an object's free bit relative to the object base.
#[inline]
pub fn free_bit_off(bytes: u32) -> u32 {
    round_up(bytes)
}

/// Owner-side registry of live remote objects (local-collection state) and
/// counters for both strategies.
#[derive(Debug)]
pub struct RemoteRegistry {
    /// Live objects: (offset, bytes). Order is irrelevant; removal is
    /// swap-remove through `index`.
    list: Vec<(u32, u32)>,
    index: U64Map<usize>,
    live_bytes: u64,
    /// Hard sweep threshold from the run configuration.
    limit: u64,
    /// Soft threshold; doubled after an unproductive sweep so a long-lived
    /// working set cannot trigger quadratic rescanning, reset when a sweep
    /// reclaims meaningfully.
    soft_limit: u64,
    // Counters (ablation material).
    pub sweeps: u64,
    pub swept_items: u64,
    pub reclaimed: u64,
    pub remote_frees_sent: u64,
    pub local_frees: u64,
    pub lq_drains: u64,
    pub lq_drained_items: u64,
}

impl RemoteRegistry {
    pub fn new(limit: u64) -> RemoteRegistry {
        RemoteRegistry {
            list: Vec::new(),
            index: U64Map::default(),
            live_bytes: 0,
            limit,
            soft_limit: limit,
            sweeps: 0,
            swept_items: 0,
            reclaimed: 0,
            remote_frees_sent: 0,
            local_frees: 0,
            lq_drains: 0,
            lq_drained_items: 0,
        }
    }

    pub fn live(&self) -> usize {
        self.list.len()
    }

    pub fn live_bytes(&self) -> u64 {
        self.live_bytes
    }

    fn register(&mut self, off: u32, bytes: u32) {
        self.index.insert(off as u64, self.list.len());
        self.list.push((off, bytes));
        self.live_bytes += bytes as u64;
    }

    fn unregister(&mut self, off: u32) -> u32 {
        let idx = self
            .index
            .remove(&(off as u64))
            .expect("freeing unregistered remote object");
        let (_, bytes) = self.list.swap_remove(idx);
        if idx < self.list.len() {
            let moved = self.list[idx].0;
            self.index.insert(moved as u64, idx);
        }
        self.live_bytes -= bytes as u64;
        bytes
    }
}

/// Allocate a remote object of `bytes` in `me`'s segment. Returns the
/// object's address and the virtual cost (allocation is always owner-local;
/// the cost covers allocator work plus any owner-side maintenance — a
/// lock-queue drain or a local-collection sweep — that piggybacks on the
/// allocation, exactly where the paper's implementation performs it).
pub fn alloc_robj(
    m: &mut Machine,
    ws: &mut WorkerShared,
    lay: &SegLayout,
    strategy: FreeStrategy,
    me: WorkerId,
    bytes: u32,
) -> (GlobalAddr, VTime) {
    let mut cost = m.local_op(me);
    match strategy {
        FreeStrategy::LocalCollection => {
            cost += maybe_sweep(m, ws, me);
            let addr = m.alloc(me, bytes + FREE_BIT_BYTES);
            ws.robj.register(addr.off, bytes);
            (addr, cost)
        }
        FreeStrategy::LockQueue => {
            cost += drain_lock_queue(m, ws, lay, me);
            let addr = m.alloc(me, bytes);
            (addr, cost)
        }
    }
}

/// Free a remote object from worker `me`. Dispatches on ownership and
/// strategy; returns the virtual cost charged to `me`.
pub fn free_robj(
    m: &mut Machine,
    owner_ws: &mut WorkerShared,
    lay: &SegLayout,
    strategy: FreeStrategy,
    me: WorkerId,
    addr: GlobalAddr,
    bytes: u32,
) -> VTime {
    let owner = addr.rank as usize;
    match strategy {
        FreeStrategy::LocalCollection => {
            if owner == me {
                // Owner frees immediately: unlink from the registry, free.
                let reg_bytes = owner_ws.robj.unregister(addr.off);
                debug_assert_eq!(reg_bytes, bytes);
                owner_ws.robj.local_frees += 1;
                m.free(addr, bytes + FREE_BIT_BYTES);
                m.local_op(me)
            } else {
                // One non-blocking put of the free bit. The owner reclaims at
                // its next sweep.
                owner_ws.robj.remote_frees_sent += 1;
                m.post_put_u64_unsignaled(me, addr.field(free_bit_off(bytes) / WORD), 1)
            }
        }
        FreeStrategy::LockQueue => {
            if owner == me {
                m.free(addr, bytes);
                m.local_op(me)
            } else {
                free_via_lock_queue(m, owner_ws, lay, me, addr, bytes)
            }
        }
    }
}

/// The baseline's four-round-trip remote free (§III-B: "this operation
/// involves four round trips"): lock, bump counter, insert, unlock.
fn free_via_lock_queue(
    m: &mut Machine,
    owner_ws: &mut WorkerShared,
    lay: &SegLayout,
    me: WorkerId,
    addr: GlobalAddr,
    bytes: u32,
) -> VTime {
    owner_ws.robj.remote_frees_sent += 1;
    let owner = addr.rank as usize;
    let lock = GlobalAddr::new(owner, lay.fq_word(FQ_LOCK));
    let count = GlobalAddr::new(owner, lay.fq_word(FQ_COUNT));
    // 1. Acquire the lock. Protocol steps are atomic within this simulator
    //    step and no lock-queue holder spans steps, so the CAS succeeds; the
    //    round trip is still charged.
    let (old, c1) = m.cas_u64(me, lock, 0, me as u64 + 1);
    debug_assert_eq!(old, 0, "lock-queue lock held across a step");
    // 2. Bump the counter (fetch-and-add round trip).
    let (n, c2) = m.fetch_add_u64(me, count, 1);
    let idx = n as u32;
    assert!(
        idx < lay.freeq_cap,
        "lock-queue free buffer overflow (cap {})",
        lay.freeq_cap
    );
    // 3. Insert the object location + size (one put; two words adjacent).
    // 4. Release the lock.
    let slot = GlobalAddr::new(owner, lay.fq_slot(idx));
    if m.fabric() == FabricMode::Pipelined {
        // The insert and the unlock both target the owner's rank, so the
        // same-QP in-order clamp guarantees the slot is visible before the
        // next lock holder can acquire: post the whole tail and retire it
        // under one wait — the baseline's four round trips become three.
        // Posting at ZERO is sound because the tail is reaped before
        // returning; only the relative finish times matter.
        let h3 = m.post_put_u64(me, slot, addr.to_u64(), VTime::ZERO);
        let c3b = m.post_put_u64_unsignaled(me, slot.field(1), bytes as u64);
        let h4 = m.post_put_u64(me, lock, 0, VTime::ZERO);
        let (_, f3) = m.wait(me, h3);
        let (_, f4) = m.wait(me, h4);
        c1 + c2 + c3b + f3.max(f4)
    } else {
        let c3a = m.put_u64(me, slot, addr.to_u64());
        let c3b = m.post_put_u64_unsignaled(me, slot.field(1), bytes as u64);
        let c4 = m.put_u64(me, lock, 0);
        c1 + c2 + c3a + c3b + c4
    }
}

/// Owner-side drain of the lock-queue buffer (runs at allocation time; all
/// operations are local).
fn drain_lock_queue(m: &mut Machine, ws: &mut WorkerShared, lay: &SegLayout, me: WorkerId) -> VTime {
    let count_addr = GlobalAddr::new(me, lay.fq_word(FQ_COUNT));
    let (n, mut cost) = m.get_u64(me, count_addr);
    if n == 0 {
        return cost;
    }
    let lock = GlobalAddr::new(me, lay.fq_word(FQ_LOCK));
    let (old, c) = m.cas_u64(me, lock, 0, me as u64 + 1);
    cost += c;
    debug_assert_eq!(old, 0);
    for i in 0..n as u32 {
        let slot = GlobalAddr::new(me, lay.fq_slot(i));
        let (a, c1) = m.get_u64(me, slot);
        let (b, c2) = m.get_u64(me, slot.field(1));
        cost += c1 + c2;
        m.free(GlobalAddr::from_u64(a), b as u32);
        cost += m.local_op(me);
        ws.robj.lq_drained_items += 1;
    }
    cost += m.put_u64(me, count_addr, 0);
    cost += m.put_u64(me, lock, 0);
    ws.robj.lq_drains += 1;
    cost
}

/// Local-collection sweep: when live remote-object bytes exceed the
/// (soft) limit, scan the registry, reclaim objects whose free bit is set.
fn maybe_sweep(m: &mut Machine, ws: &mut WorkerShared, me: WorkerId) -> VTime {
    if ws.robj.live_bytes <= ws.robj.soft_limit {
        return VTime::ZERO;
    }
    let mut cost = VTime::ZERO;
    let mut reclaimed_bytes = 0u64;
    if m.fabric() == FabricMode::Pipelined {
        // Batch the whole free-bit scan: post every bit read up front and
        // reap them together — a software-pipelined sweep instead of one
        // dependent read per registry slot. Values are reaped per handle
        // (not fenced) because the reclaim decision needs each bit.
        let snapshot: Vec<(u32, u32)> = ws.robj.list.clone();
        let mut handles = Vec::with_capacity(snapshot.len());
        // The whole scan rides one doorbell chain: the first bit read pays
        // full injection, the rest the chained fraction.
        m.chain_begin(me);
        for &(off, bytes) in &snapshot {
            ws.robj.swept_items += 1;
            cost += m.local_op(me);
            let bit_addr = GlobalAddr::new(me, off + free_bit_off(bytes));
            handles.push(m.post_get_u64(me, bit_addr, VTime::ZERO));
        }
        m.chain_end(me);
        let mut tail = VTime::ZERO;
        for (&(off, bytes), h) in snapshot.iter().zip(handles) {
            let (bit, fin) = m.wait(me, h);
            tail = tail.max(fin);
            if bit != 0 {
                ws.robj.unregister(off);
                m.free(GlobalAddr::new(me, off), bytes + FREE_BIT_BYTES);
                ws.robj.reclaimed += 1;
                reclaimed_bytes += bytes as u64;
            }
        }
        cost += tail;
    } else {
        let mut i = 0;
        while i < ws.robj.list.len() {
            let (off, bytes) = ws.robj.list[i];
            ws.robj.swept_items += 1;
            cost += m.local_op(me);
            let bit_addr = GlobalAddr::new(me, off + free_bit_off(bytes));
            let (bit, c) = m.get_u64(me, bit_addr);
            cost += c;
            if bit != 0 {
                ws.robj.unregister(off);
                m.free(GlobalAddr::new(me, off), bytes + FREE_BIT_BYTES);
                ws.robj.reclaimed += 1;
                reclaimed_bytes += bytes as u64;
                // swap_remove: recheck index i.
            } else {
                i += 1;
            }
        }
    }
    ws.robj.sweeps += 1;
    if reclaimed_bytes * 2 >= ws.robj.limit {
        ws.robj.soft_limit = ws.robj.limit;
    } else {
        // Unproductive sweep: double the threshold (geometric back-off) so
        // scan work stays amortized O(1) per allocation even when the live
        // working set is large and long-lived.
        ws.robj.soft_limit = (ws.robj.live_bytes * 2).max(ws.robj.limit);
    }
    cost
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, RunConfig};
    use dcs_sim::{profiles, MachineConfig};

    fn setup(strategy: FreeStrategy) -> (Machine, Vec<WorkerShared>, SegLayout, RunConfig) {
        let mut cfg = RunConfig::new(2, Policy::ContGreedy).with_free_strategy(strategy);
        cfg.collect_limit = 256; // tiny limit to force sweeps in tests
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        let ws = (0..2).map(|_| WorkerShared::new(&cfg)).collect();
        (m, ws, lay, cfg)
    }

    #[test]
    fn local_collection_owner_free_is_immediate() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LocalCollection);
        let (a, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 24);
        assert_eq!(ws[0].robj.live(), 1);
        free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, a, 24);
        assert_eq!(ws[0].robj.live(), 0);
        assert_eq!(ws[0].robj.local_frees, 1);
        // The block is reusable right away.
        let (b, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 24);
        assert_eq!(b, a);
    }

    #[test]
    fn local_collection_remote_free_sets_bit_and_sweep_reclaims() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LocalCollection);
        // Owner 0 allocates a batch of objects.
        let addrs: Vec<_> = (0..8)
            .map(|_| {
                alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 64).0
            })
            .collect();
        // Worker 1 frees them remotely: each is one non-blocking put.
        let puts_before = m.stats(1).remote_puts;
        for &a in &addrs {
            free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 1, a, 64);
        }
        assert_eq!(m.stats(1).remote_puts - puts_before, 8);
        assert_eq!(ws[0].robj.live(), 8, "owner has not swept yet");
        // Keep allocating: once live bytes pass the (possibly backed-off)
        // sweep threshold, the owner reclaims all eight marked objects.
        let mut fresh = 0;
        while ws[0].robj.reclaimed == 0 && fresh < 16 {
            let _ = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 64);
            fresh += 1;
        }
        assert_eq!(ws[0].robj.reclaimed, 8);
        assert_eq!(ws[0].robj.live(), fresh); // only the fresh allocations remain
    }

    #[test]
    fn lock_queue_remote_free_costs_four_round_trips() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LockQueue);
        let (a, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LockQueue, 0, 48);
        let s0 = *m.stats(1);
        free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LockQueue, 1, a, 48);
        let s1 = *m.stats(1);
        // 2 atomics (lock CAS + counter FAA) and 3 puts (two slot words, one
        // of them non-blocking, + unlock) — 4 blocking round trips total.
        assert_eq!(s1.remote_amos - s0.remote_amos, 2);
        assert_eq!(s1.remote_puts - s0.remote_puts, 3);
        // The owner drains on its next allocation.
        let (_, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LockQueue, 0, 48);
        assert_eq!(ws[0].robj.lq_drained_items, 1);
        assert_eq!(ws[0].robj.lq_drains, 1);
    }

    #[test]
    fn lock_queue_owner_free_is_local() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LockQueue);
        let (a, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LockQueue, 0, 48);
        let s0 = *m.stats(0);
        free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LockQueue, 0, a, 48);
        let s1 = *m.stats(0);
        assert_eq!(s1.remote_total(), s0.remote_total());
    }

    #[test]
    fn unproductive_sweep_backs_off() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LocalCollection);
        // Fill past the limit with objects that are never freed.
        for _ in 0..16 {
            let _ = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 64);
        }
        let sweeps_after_fill = ws[0].robj.sweeps;
        // More allocations must not sweep on every call.
        for _ in 0..16 {
            let _ = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 64);
        }
        assert!(
            ws[0].robj.sweeps <= sweeps_after_fill + 2,
            "soft limit failed to back off: {} sweeps",
            ws[0].robj.sweeps
        );
    }

    #[test]
    #[should_panic(expected = "unregistered remote object")]
    fn double_local_free_panics() {
        let (mut m, mut ws, lay, _) = setup(FreeStrategy::LocalCollection);
        let (a, _) = alloc_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, 24);
        free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, a, 24);
        free_robj(&mut m, &mut ws[0], &lay, FreeStrategy::LocalCollection, 0, a, 24);
    }
}
