//! Static pinned-memory layout of each worker's segment.
//!
//! ```text
//! +-----------------------------+ 0
//! | deque: LOCK TOP BOTTOM      |
//! | deque ring [cap × 3 words]  |
//! +-----------------------------+ freeq_off
//! | free queue: LOCK COUNT      |
//! | free ring  [cap × 2 words]  |
//! +-----------------------------+ reserved  (= heap start)
//! | dynamically allocated       |
//! | remote objects (entries,    |
//! | saved contexts, free bits)  |
//! +-----------------------------+ seg_bytes
//! ```

use dcs_sim::WORD;

use crate::policy::RunConfig;

/// Word indices of the deque control block (relative to `deque_off`).
pub const DQ_LOCK: u32 = 0;
pub const DQ_TOP: u32 = 1;
pub const DQ_BOTTOM: u32 = 2;
/// Words per deque ring entry: `[item_key + 1, wire_size, ticket]`.
/// `ticket` is only used by the fence-free protocol (zero elsewhere); it
/// is the occupancy-unique claim key thieves validate and claim against.
pub const DQ_ENTRY_WORDS: u32 = 3;

/// Word indices of the lock-queue free buffer (relative to `freeq_off`).
pub const FQ_LOCK: u32 = 0;
pub const FQ_COUNT: u32 = 1;
/// Words per free-queue entry: `[object address, object bytes]`.
pub const FQ_ENTRY_WORDS: u32 = 2;

/// Computed segment layout for a run configuration.
#[derive(Clone, Copy, Debug)]
pub struct SegLayout {
    pub deque_off: u32,
    pub deque_cap: u32,
    pub freeq_off: u32,
    pub freeq_cap: u32,
    /// First byte of the dynamic heap.
    pub reserved: u32,
}

impl SegLayout {
    pub fn new(cfg: &RunConfig) -> SegLayout {
        let deque_off = 0;
        let deque_bytes = (3 + cfg.deque_cap * DQ_ENTRY_WORDS) * WORD;
        let freeq_off = deque_off + deque_bytes;
        let freeq_bytes = (2 + cfg.freeq_cap * FQ_ENTRY_WORDS) * WORD;
        let reserved = freeq_off + freeq_bytes;
        assert!(
            reserved < cfg.seg_bytes,
            "segment too small for static layout: reserved={} seg={}",
            reserved,
            cfg.seg_bytes
        );
        SegLayout {
            deque_off,
            deque_cap: cfg.deque_cap,
            freeq_off,
            freeq_cap: cfg.freeq_cap,
            reserved,
        }
    }

    /// Byte offset of deque control word `w`.
    #[inline]
    pub fn dq_word(&self, w: u32) -> u32 {
        self.deque_off + w * WORD
    }

    /// Byte offset of ring slot for logical index `idx` (monotonic; wraps).
    #[inline]
    pub fn dq_slot(&self, idx: u64) -> u32 {
        let slot = (idx % self.deque_cap as u64) as u32;
        self.deque_off + (3 + slot * DQ_ENTRY_WORDS) * WORD
    }

    #[inline]
    pub fn fq_word(&self, w: u32) -> u32 {
        self.freeq_off + w * WORD
    }

    #[inline]
    pub fn fq_slot(&self, idx: u32) -> u32 {
        debug_assert!(idx < self.freeq_cap);
        self.freeq_off + (2 + idx * FQ_ENTRY_WORDS) * WORD
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::Policy;

    #[test]
    fn layout_is_disjoint_and_within_segment() {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let l = SegLayout::new(&cfg);
        assert_eq!(l.deque_off, 0);
        assert!(l.freeq_off >= (3 + cfg.deque_cap * DQ_ENTRY_WORDS) * WORD);
        assert!(l.reserved > l.freeq_off);
        assert!(l.reserved < cfg.seg_bytes);
    }

    #[test]
    fn ring_slots_wrap() {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let l = SegLayout::new(&cfg);
        assert_eq!(l.dq_slot(0), l.dq_slot(cfg.deque_cap as u64));
        assert_ne!(l.dq_slot(0), l.dq_slot(1));
        // Consecutive slots are DQ_ENTRY_WORDS apart.
        assert_eq!(l.dq_slot(1) - l.dq_slot(0), 3 * WORD);
    }

    #[test]
    #[should_panic(expected = "segment too small")]
    fn oversized_layout_panics() {
        let mut cfg = RunConfig::new(2, Policy::ContGreedy);
        cfg.seg_bytes = 1 << 10;
        let _ = SegLayout::new(&cfg);
    }
}
