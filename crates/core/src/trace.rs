//! Chrome-trace export of a run's scheduler activity.
//!
//! [`chrome_trace`] renders a [`RunStats`] collected at
//! [`crate::policy::TraceLevel::Series`] into the Chrome trace-event JSON
//! format (load `chrome://tracing` or <https://ui.perfetto.dev> and drop the
//! file in): one row per worker with its busy intervals, plus flow arrows
//! for successful steals from victim to thief. Virtual nanoseconds map to
//! trace microseconds with three decimals preserved.
//!
//! The JSON is hand-rolled — the schema is five fixed keys per event and
//! the workspace keeps the runtime dependency-free.

use std::fmt::Write as _;

use crate::stats::RunStats;

fn us(ns_time: dcs_sim::VTime) -> f64 {
    ns_time.as_ns() as f64 / 1_000.0
}

/// Render series-level statistics as a Chrome trace-event JSON document.
///
/// Returns `None` when the run was not traced at series level (no interval
/// data to export).
pub fn chrome_trace(stats: &RunStats, run_name: &str) -> Option<String> {
    if !stats.series {
        return None;
    }
    let mut out = String::with_capacity(
        64 * (stats.busy_intervals.len() + stats.steal_events.len()) + 256,
    );
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    let mut first = true;
    let mut emit = |line: &str, out: &mut String| {
        if !first {
            out.push_str(",\n");
        }
        first = false;
        out.push_str(line);
    };

    // Process metadata: one "process" for the whole run.
    emit(
        &format!(
            "{{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
             \"args\":{{\"name\":{}}}}}",
            json_string(run_name)
        ),
        &mut out,
    );

    // Busy intervals: complete events ("X") on the worker's row.
    for &(w, start, end) in &stats.busy_intervals {
        let line = format!(
            "{{\"name\":\"busy\",\"ph\":\"X\",\"pid\":1,\"tid\":{},\
             \"ts\":{:.3},\"dur\":{:.3}}}",
            w,
            us(start),
            us(end.saturating_sub(start)),
        );
        emit(&line, &mut out);
    }

    // Steals: flow events from the victim's row to the thief's row.
    for (i, &(thief, victim, start, end)) in stats.steal_events.iter().enumerate() {
        let s = format!(
            "{{\"name\":\"steal\",\"ph\":\"s\",\"id\":{i},\"pid\":1,\
             \"tid\":{victim},\"ts\":{:.3}}}",
            us(start)
        );
        emit(&s, &mut out);
        let f = format!(
            "{{\"name\":\"steal\",\"ph\":\"f\",\"bp\":\"e\",\"id\":{i},\
             \"pid\":1,\"tid\":{thief},\"ts\":{:.3}}}",
            us(end)
        );
        emit(&f, &mut out);
    }

    out.push_str("\n]}\n");
    Some(out)
}

/// Minimal JSON string escaping (quotes, backslashes, control characters).
fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::VTime;

    fn traced_stats() -> RunStats {
        let mut s = RunStats::new(true);
        s.note_busy_interval(0, VTime::us(0), VTime::us(10));
        s.note_busy_interval(1, VTime::us(5), VTime::us(12));
        s.note_steal_event(1, 0, VTime::us(2), VTime::us(5));
        s
    }

    #[test]
    fn untraced_runs_export_nothing() {
        let s = RunStats::new(false);
        assert!(chrome_trace(&s, "x").is_none());
    }

    #[test]
    fn events_appear_with_correct_rows() {
        let json = chrome_trace(&traced_stats(), "demo").unwrap();
        // Two busy events, one steal (s + f), one metadata record.
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert_eq!(json.matches("\"ph\":\"s\"").count(), 1);
        assert_eq!(json.matches("\"ph\":\"f\"").count(), 1);
        assert!(json.contains("\"tid\":0"));
        assert!(json.contains("\"tid\":1"));
        assert!(json.contains("\"name\":\"demo\""));
        // Durations are microseconds with the virtual times preserved.
        assert!(json.contains("\"ts\":0.000,\"dur\":10.000"), "{json}");
    }

    #[test]
    fn json_is_structurally_balanced() {
        let json = chrome_trace(&traced_stats(), "demo").unwrap();
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
        // No trailing comma before the closing bracket.
        assert!(!json.contains(",\n]"));
    }

    #[test]
    fn string_escaping() {
        assert_eq!(json_string("a\"b"), "\"a\\\"b\"");
        assert_eq!(json_string("a\\b"), "\"a\\\\b\"");
        assert_eq!(json_string("a\nb"), "\"a\\u000ab\"");
    }

    #[test]
    fn end_to_end_trace_from_real_run() {
        use crate::prelude::*;
        fn leaf(arg: Value, _ctx: &mut TaskCtx) -> Effect {
            let n = arg.as_u64();
            if n == 0 {
                return Effect::ret(0u64);
            }
            Effect::fork(
                leaf,
                n - 1,
                frame(|h, _| {
                    Effect::compute(
                        VTime::us(5),
                        frame(move |_, _| {
                            Effect::join(h.as_handle(), frame(|v, _| Effect::ret(v.as_u64() + 1)))
                        }),
                    )
                }),
            )
        }
        let cfg = RunConfig::new(3, Policy::ContGreedy)
            .with_profile(dcs_sim::profiles::itoa())
            .with_trace(TraceLevel::Series)
            .with_seg_bytes(64 << 20);
        let r = run(cfg, Program::new(leaf, 20u64));
        let json = chrome_trace(&r.stats, "chain").expect("series trace");
        assert!(json.matches("\"ph\":\"X\"").count() >= 3, "busy rows");
        if r.stats.steals_ok > 0 {
            assert!(json.contains("\"ph\":\"s\""));
        }
    }
}
