//! Scheduling-policy and run configuration.

use dcs_sim::{profiles, FabricMode, FaultPlan, MachineProfile, Topology, VTime};

/// A time-varying compute slowdown: worker `worker` computes `factor`×
/// slower during `[from, until)` (a straggler, thermal throttling, an OS
/// noise burst). Overlapping windows compound multiplicatively.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SlowdownWindow {
    pub worker: usize,
    pub from: VTime,
    pub until: VTime,
    pub factor: f64,
}

/// Which stealing/threading strategy a run uses — the four configurations
/// compared throughout the paper's evaluation (§IV, Table II).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Continuation stealing with the greedy RDMA join of Fig. 4 (the
    /// paper's contribution: work-first fast path + fetch-and-add race,
    /// suspended threads migrate to whoever loses the race).
    ContGreedy,
    /// Continuation stealing with the stalling join of Fig. 3 (original
    /// MassiveThreads/DM: suspended threads wait in a local FIFO wait queue
    /// and never migrate).
    ContStalling,
    /// Child stealing with fully-fledged threads: every task gets its own
    /// (32 KB) stack and can suspend at joins into the wait queue, but tasks
    /// are *tied* — they never migrate once started.
    ChildFull,
    /// Child stealing with run-to-completion threads: blocked joins nest the
    /// scheduler on the worker's single stack ("buried joins", §IV-B).
    ChildRtc,
}

impl Policy {
    /// Continuation stealing (stolen items are whole stacks)?
    pub fn is_cont(self) -> bool {
        matches!(self, Policy::ContGreedy | Policy::ContStalling)
    }

    /// Display name matching the paper's tables.
    pub fn label(self) -> &'static str {
        match self {
            Policy::ContGreedy => "Cont. Steal (greedy)",
            Policy::ContStalling => "Cont. Steal (stalling)",
            Policy::ChildFull => "Child Steal (Full)",
            Policy::ChildRtc => "Child Steal (RtC)",
        }
    }

    pub const ALL: [Policy; 4] = [
        Policy::ContGreedy,
        Policy::ContStalling,
        Policy::ChildFull,
        Policy::ChildRtc,
    ];
}

/// Steal-protocol family: how thieves and owners synchronize on the
/// shared deque words (docs/PROTOCOLS.md, "Steal protocols").
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Protocol {
    /// The paper's baseline: a CAS lock word serializes thieves and gates
    /// owner operations; every steal pays an AMO round trip to acquire it.
    CasLock,
    /// ABP/Chase-Lev-style lock-free: no lock word; the thief claims a
    /// task with a single CAS on `top`, the owner resolves the last-item
    /// race with an owner-local CAS. One AMO per steal, none per push.
    LockFree,
    /// Fully read/write fence-free stealing with multiplicity: both owner
    /// and thief use only plain gets/puts — no AMO verbs at all. A task
    /// may rarely be *taken* more than once (bounded multiplicity ≤ the
    /// number of concurrent thieves); a shared claim set closes the window
    /// so every task *executes* at most once observably.
    FenceFree,
}

impl Protocol {
    /// Display name used by the CLI and bench CSVs.
    pub fn label(self) -> &'static str {
        match self {
            Protocol::CasLock => "cas-lock",
            Protocol::LockFree => "lock-free",
            Protocol::FenceFree => "fence-free",
        }
    }

    /// Does the steal path issue any AMO verbs?
    pub fn uses_amo(self) -> bool {
        !matches!(self, Protocol::FenceFree)
    }

    pub const ALL: [Protocol; 3] = [Protocol::CasLock, Protocol::LockFree, Protocol::FenceFree];
}

/// Remote-object memory management strategy (§III-B).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FreeStrategy {
    /// Baseline (original MassiveThreads/DM): per-worker lock-protected
    /// incoming queue; a remote free costs four round trips.
    LockQueue,
    /// The paper's *local collection*: owner-side doubly-linked registry +
    /// remote free-bit set with one non-blocking put; the owner sweeps when
    /// live remote-object bytes exceed a limit.
    LocalCollection,
}

impl FreeStrategy {
    pub fn label(self) -> &'static str {
        match self {
            FreeStrategy::LockQueue => "lock-queue",
            FreeStrategy::LocalCollection => "local-collection",
        }
    }
}

/// Thread-stack address-space scheme (§II-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AddressScheme {
    /// Uni-address (Akiyama & Taura): stacks of running threads share one
    /// region address across workers; suspended stacks are evacuated.
    /// Pinned space is bounded by live nesting depth per worker.
    Uni,
    /// Iso-address (PM2 / Charm++ / Adaptive MPI): every stack gets a
    /// globally unique pinned range for its lifetime — no evacuation or
    /// placement conflicts, but pinned space grows with the job's total
    /// live thread count.
    Iso,
}

impl AddressScheme {
    pub fn label(self) -> &'static str {
        match self {
            AddressScheme::Uni => "uni-address",
            AddressScheme::Iso => "iso-address",
        }
    }
}

/// Victim-selection policy for steal attempts.
///
/// The paper uses uniform random selection and flags topology-aware
/// stealing over RDMA as future work (§VI); the non-uniform policies below
/// implement the two standard families from that literature.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum VictimPolicy {
    /// Uniformly random among all other workers (the paper's setting).
    Uniform,
    /// With probability `p_local`, pick a victim within the caller's node;
    /// otherwise pick globally (Paudel et al.-style selective locality).
    Locality { p_local: f64 },
    /// Try node-local victims first; escalate to global selection after
    /// `local_tries` consecutive failed attempts (hierarchical stealing,
    /// Min/Quintin-style).
    Hierarchical { local_tries: u32 },
}

impl VictimPolicy {
    pub fn label(self) -> &'static str {
        match self {
            VictimPolicy::Uniform => "uniform",
            VictimPolicy::Locality { .. } => "locality",
            VictimPolicy::Hierarchical { .. } => "hierarchical",
        }
    }
}

/// How much profiling a run records.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum TraceLevel {
    /// Aggregate counters only (Table II columns).
    Counters,
    /// Counters + per-event series for busy workers and ready outstanding
    /// joins (Fig. 7).
    Series,
}

/// Full configuration of one simulated run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    pub workers: usize,
    pub profile: MachineProfile,
    pub policy: Policy,
    /// Steal-protocol family ([`Protocol::CasLock`] is the default every
    /// golden is pinned to).
    pub protocol: Protocol,
    pub free_strategy: FreeStrategy,
    pub address_scheme: AddressScheme,
    /// Network topology of the simulated machine.
    pub topology: Topology,
    /// Victim-selection policy for steals.
    pub victim: VictimPolicy,
    /// Whole-run per-worker compute-speed multipliers: worker `w` runs
    /// compute `perturb[w]`× slower for the entire run. Empty =
    /// homogeneous. For *time-varying* degradation use [`RunConfig::slowdowns`]
    /// (which [`RunConfig::with_straggler`] now builds on); both compose
    /// multiplicatively with the profile's base compute scale.
    pub perturb: Vec<f64>,
    /// Time-windowed compute slowdowns (see [`SlowdownWindow`]); built by
    /// [`RunConfig::with_slowdown`] / [`RunConfig::with_straggler`].
    pub slowdowns: Vec<SlowdownWindow>,
    /// Fabric fault-injection plan (verb failures, message drop/dup,
    /// degraded-NIC and crash windows). [`FaultPlan::none()`] keeps the
    /// fault layer completely out of the run.
    pub fault: FaultPlan,
    /// Run the invariant watchdog (lost/duplicated tasks, double frees,
    /// no-progress stalls). Forced on whenever `fault` is active.
    pub watchdog: bool,
    /// Watchdog: longest tolerated gap between global progress events
    /// (spawn/death/successful steal) before a stall is reported.
    pub stall_limit: VTime,
    pub seed: u64,
    pub trace: TraceLevel,
    /// Ring capacity of each worker's deque (entries).
    pub deque_cap: u32,
    /// Capacity of the lock-queue incoming free buffer (entries).
    pub freeq_cap: u32,
    /// Uni-address stack slot reserved per thread (bytes).
    pub stack_slot: u64,
    /// Full-thread stack size for `ChildFull` (bytes; paper: 32 KB).
    pub full_stack: u64,
    /// Local-collection sweep threshold (bytes of live remote objects).
    pub collect_limit: u64,
    /// Pinned segment size per worker.
    pub seg_bytes: u32,
    /// Run end-of-run consistency assertions (no leaked entries, empty
    /// queues). Enabled by default; benchmarks may disable to shave memory.
    pub strict: bool,
    /// Engine runaway guard.
    pub max_steps: u64,
    /// How protocol hot paths drive the fabric: [`FabricMode::Blocking`]
    /// (default; one verb at a time, the pre-posted-API semantics every
    /// golden is pinned to) or [`FabricMode::Pipelined`] (independent verbs
    /// in a protocol step are posted concurrently and fenced).
    pub fabric: FabricMode,
    /// Number of victims an idle worker probes *concurrently* per steal
    /// round. `1` (the default every golden is pinned to) keeps the classic
    /// serial probe; `K ≥ 2` posts the protocol's opening verbs to K
    /// distinct victims at once, commits the first attempt that lands with
    /// work and abandons the rest (docs/PROTOCOLS.md, "Multi-steal &
    /// abandonment").
    pub multi_steal: u32,
    /// Doorbell-batching fraction forwarded to the fabric
    /// ([`dcs_sim::MachineConfig::with_doorbell`]): chained verbs pay this
    /// fraction of `injection`. `1.0` (default) is charge-identical to
    /// unchained posting.
    pub doorbell: f64,
}

impl RunConfig {
    pub fn new(workers: usize, policy: Policy) -> RunConfig {
        RunConfig {
            workers,
            profile: profiles::itoa(),
            policy,
            protocol: Protocol::CasLock,
            free_strategy: FreeStrategy::LocalCollection,
            address_scheme: AddressScheme::Uni,
            topology: Topology::Flat,
            victim: VictimPolicy::Uniform,
            perturb: Vec::new(),
            slowdowns: Vec::new(),
            fault: FaultPlan::none(),
            watchdog: false,
            stall_limit: VTime::secs(2),
            seed: 0x5EED,
            trace: TraceLevel::Counters,
            deque_cap: 1 << 13,
            freeq_cap: 1 << 12,
            stack_slot: 16 << 10,
            full_stack: 32 << 10,
            collect_limit: 256 << 10,
            seg_bytes: 32 << 20,
            strict: true,
            max_steps: 20_000_000_000,
            fabric: FabricMode::Blocking,
            multi_steal: 1,
            doorbell: 1.0,
        }
    }

    pub fn with_fabric(mut self, mode: FabricMode) -> Self {
        self.fabric = mode;
        self
    }

    /// Probe `k` victims concurrently per steal round (`k ≥ 1`).
    pub fn with_multi_steal(mut self, k: u32) -> Self {
        assert!(k >= 1, "multi-steal width must be at least 1");
        self.multi_steal = k;
        self
    }

    /// Doorbell-batching fraction for chained verbs (`0.0 ..= 1.0`).
    pub fn with_doorbell(mut self, frac: f64) -> Self {
        assert!((0.0..=1.0).contains(&frac), "doorbell fraction must be in [0, 1]");
        self.doorbell = frac;
        self
    }

    pub fn with_protocol(mut self, p: Protocol) -> Self {
        self.protocol = p;
        self
    }

    pub fn with_profile(mut self, p: MachineProfile) -> Self {
        self.profile = p;
        self
    }

    pub fn with_free_strategy(mut self, s: FreeStrategy) -> Self {
        self.free_strategy = s;
        self
    }

    pub fn with_address_scheme(mut self, s: AddressScheme) -> Self {
        self.address_scheme = s;
        self
    }

    pub fn with_topology(mut self, t: Topology) -> Self {
        self.topology = t;
        self
    }

    pub fn with_victim(mut self, v: VictimPolicy) -> Self {
        self.victim = v;
        self
    }

    /// Inject a straggler: worker `w` computes `factor`× slower for the
    /// whole run. Thin wrapper over [`RunConfig::with_slowdown`] with the
    /// window `[0, ∞)`.
    pub fn with_straggler(self, w: usize, factor: f64) -> Self {
        self.with_slowdown(w, factor, VTime::ZERO, VTime::MAX)
    }

    /// Inject a time-varying slowdown: worker `w` computes `factor`× slower
    /// during `[from, until)`.
    pub fn with_slowdown(mut self, w: usize, factor: f64, from: VTime, until: VTime) -> Self {
        assert!(factor >= 1.0 && w < self.workers && from < until);
        self.slowdowns.push(SlowdownWindow {
            worker: w,
            from,
            until,
            factor,
        });
        self
    }

    /// Load a fabric fault-injection plan (implies the watchdog).
    pub fn with_fault_plan(mut self, plan: FaultPlan) -> Self {
        self.fault = plan;
        self
    }

    /// Enable or disable the invariant watchdog explicitly.
    pub fn with_watchdog(mut self, on: bool) -> Self {
        self.watchdog = on;
        self
    }

    /// True when the run should carry a live watchdog.
    pub fn watchdog_enabled(&self) -> bool {
        self.watchdog || self.fault.is_active()
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    pub fn with_trace(mut self, t: TraceLevel) -> Self {
        self.trace = t;
        self
    }

    pub fn with_seg_bytes(mut self, b: u32) -> Self {
        self.seg_bytes = b;
        self
    }

    pub fn with_strict(mut self, strict: bool) -> Self {
        self.strict = strict;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_classification() {
        assert!(Policy::ContGreedy.is_cont());
        assert!(Policy::ContStalling.is_cont());
        assert!(!Policy::ChildFull.is_cont());
        assert!(!Policy::ChildRtc.is_cont());
        assert_eq!(Policy::ALL.len(), 4);
    }

    #[test]
    fn labels_match_paper() {
        assert_eq!(Policy::ContGreedy.label(), "Cont. Steal (greedy)");
        assert_eq!(FreeStrategy::LocalCollection.label(), "local-collection");
    }

    #[test]
    fn protocol_families() {
        assert_eq!(Protocol::ALL.len(), 3);
        assert_eq!(Protocol::CasLock.label(), "cas-lock");
        assert_eq!(Protocol::LockFree.label(), "lock-free");
        assert_eq!(Protocol::FenceFree.label(), "fence-free");
        assert!(Protocol::CasLock.uses_amo());
        assert!(Protocol::LockFree.uses_amo());
        assert!(!Protocol::FenceFree.uses_amo());
        assert_eq!(
            RunConfig::new(1, Policy::ContGreedy).protocol,
            Protocol::CasLock,
            "cas-lock stays the default so goldens remain valid"
        );
    }

    #[test]
    fn builder_chains() {
        let cfg = RunConfig::new(8, Policy::ContGreedy)
            .with_profile(profiles::wisteria())
            .with_free_strategy(FreeStrategy::LockQueue)
            .with_seed(99)
            .with_trace(TraceLevel::Series)
            .with_fabric(FabricMode::Pipelined);
        assert_eq!(cfg.workers, 8);
        assert_eq!(cfg.profile.name, "Wisteria-O");
        assert_eq!(cfg.free_strategy, FreeStrategy::LockQueue);
        assert_eq!(cfg.seed, 99);
        assert_eq!(cfg.trace, TraceLevel::Series);
        assert_eq!(cfg.fabric, FabricMode::Pipelined);
        assert_eq!(
            RunConfig::new(1, Policy::ContGreedy).fabric,
            FabricMode::Blocking,
            "blocking stays the default so goldens remain valid"
        );
    }

    #[test]
    fn multi_steal_and_doorbell_defaults() {
        let cfg = RunConfig::new(4, Policy::ChildRtc);
        assert_eq!(cfg.multi_steal, 1, "serial probing stays the default so goldens remain valid");
        assert_eq!(cfg.doorbell, 1.0, "full injection stays the default so goldens remain valid");
        let cfg = cfg.with_multi_steal(4).with_doorbell(0.25);
        assert_eq!(cfg.multi_steal, 4);
        assert_eq!(cfg.doorbell, 0.25);
    }

    #[test]
    #[should_panic(expected = "multi-steal width")]
    fn multi_steal_zero_rejected() {
        let _ = RunConfig::new(2, Policy::ChildRtc).with_multi_steal(0);
    }
}
