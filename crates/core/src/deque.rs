//! The per-worker task deque with a one-sided steal protocol.
//!
//! Control words and the entry ring live in the owner's pinned segment
//! (offsets from [`SegLayout`]); the Rust payload objects live in the
//! owner's [`crate::world::WorkerShared::items`] slab and are referenced by
//! slab key from the ring. Owner operations (push/pop/peek) work on the
//! *bottom* end at local cost; thieves operate on the *top* (oldest) end so
//! the task with the most expected work is stolen (§II).
//!
//! Three steal-protocol families share this ring (selected by
//! [`crate::policy::Protocol`]):
//!
//! * **CAS-lock** (`owner_*` / `thief_*`, the paper's baseline) — a lock
//!   word serializes thieves and gates owner operations;
//! * **lock-free** (`lf_*`, ABP/Chase-Lev style) — no lock word; a thief
//!   claims the oldest task with one CAS on `top`, the owner resolves the
//!   last-item race with an owner-local CAS;
//! * **fence-free** (`ff_*`) — plain reads/writes only, with *bounded
//!   multiplicity*: a task may be taken more than once, and the shared
//!   [`ClaimSet`] guarantees it executes at most once (see the module doc
//!   on [`crate::dedup`] and docs/PROTOCOLS.md).
//!
//! The CAS-lock steal protocol mirrors MassiveThreads/DM's lock-based RDMA
//! deque:
//!
//! 1. `CAS` the lock word (one atomic round trip). Failure — somebody else
//!    holds it — is a failed steal attempt.
//! 2. `GET` the `[top, bottom]` words (adjacent; one round trip). Empty →
//!    release and report a failed steal.
//! 3. `GET` the ring entry, then `PUT` `[top := top+1, lock := 0]` (the two
//!    words are adjacent, one round trip advances and releases atomically
//!    from the victim's point of view — and the *order* puts the bound
//!    advance no later than the lock release, so no lock acquirer can ever
//!    observe stale bounds; see `docs/PROTOCOLS.md`).
//! 4. Transfer the payload (stack or descriptor bytes) — charged by the
//!    scheduler, which also records steal statistics.
//!
//! The thief holds the lock **across simulator steps** (between
//! [`thief_lock`] and [`thief_take`]), so a victim touching its own deque in
//! that window observes the lock and must retry — the owner-side functions
//! return [`DequeError::Busy`] and the caller yields a local-op's worth of
//! time, exactly the brief victim stall a real lock-based RDMA deque causes.
//!
//! ## Typed protocol violations
//!
//! Every slot decode (`key + 1` read from the ring) is guarded in release
//! builds: a zero word — or a stale key whose payload is gone — under a
//! reordered or fault-duplicated put surfaces as a [`DeadSlot`] error that
//! the scheduler reports as a deque-protocol violation, instead of
//! underflowing `keyp1 - 1` to `u64::MAX` and panicking deep inside
//! [`Slab::take`]. `dcs-check` relies on these typed errors as its deque
//! oracle.

use dcs_sim::{GlobalAddr, Machine, VTime, WorkerId};

use crate::dedup::ClaimSet;
use crate::layout::{SegLayout, DQ_BOTTOM, DQ_LOCK, DQ_TOP};
use crate::util::Slab;
use crate::world::{QueueItem, WorkerShared};

/// The deque is momentarily locked by a thief; retry next step. Kept as a
/// standalone token: the scheduler uses it as its cross-module
/// "side-effect-free retry" signal beyond deque operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

/// A ring slot referenced by the deque bounds decoded to a dead payload
/// key — a deque-protocol violation (the invariant "every index in
/// `[top, bottom)` holds a live `key + 1`" broke). State is left untouched:
/// the bounds still reference the corpse, so the caller must report the
/// violation and degrade (or abort), not retry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeadSlot {
    /// The operation that observed the dead slot.
    pub op: &'static str,
    /// Logical ring index whose slot was dead.
    pub index: u64,
    /// Fabric cost incurred before the violation was detected (the caller
    /// still owes this virtual time).
    pub cost: VTime,
}

/// Why a deque operation did not complete.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DequeError {
    /// Locked by a thief; retry next step (no side effects happened).
    Busy,
    /// Protocol violation: a bounds-referenced slot is dead.
    Dead(DeadSlot),
}

#[inline]
fn word(lay: &SegLayout, me: WorkerId, w: u32) -> GlobalAddr {
    GlobalAddr::new(me, lay.dq_word(w))
}

/// Owner-side lock check shared by all local operations.
fn owner_check_lock(m: &mut Machine, lay: &SegLayout, me: WorkerId) -> Result<(), DequeError> {
    let (lock, _) = m.get_u64(me, word(lay, me, DQ_LOCK));
    if lock != 0 {
        Err(DequeError::Busy)
    } else {
        Ok(())
    }
}

/// Push an item at the bottom (local end). Returns the charged cost.
pub fn owner_push(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    item: QueueItem,
) -> Result<VTime, DequeError> {
    owner_check_lock(m, lay, me)?;
    // One O(1) local operation covers the lock check, bounds, ring write
    // and bottom update (all cache-resident for the owner).
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    assert!(
        bottom - top < lay.deque_cap as u64,
        "deque overflow (cap {}): nesting deeper than configured",
        lay.deque_cap
    );
    let size = item.wire_size();
    let key = items.insert(item);
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom));
    m.write_own(me, slot, key as u64 + 1);
    m.write_own(me, slot.field(1), size as u64);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom + 1);
    Ok(cost)
}

/// Pop the bottom item, if any.
pub fn owner_pop(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    owner_check_lock(m, lay, me)?;
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom - 1));
    let keyp1 = m.read_own(me, slot);
    let dead = |cost| {
        Err(DequeError::Dead(DeadSlot {
            op: "owner_pop",
            index: bottom - 1,
            cost,
        }))
    };
    if keyp1 == 0 {
        return dead(cost);
    }
    let Some(item) = items.try_take((keyp1 - 1) as u32) else {
        return dead(cost);
    };
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom - 1);
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Fig.-4 DIE fast-path test: is the bottom item this dying thread's parent
/// continuation (a `Cont` whose `spawned_child` equals `e`)? If so, pop it.
/// The check-and-pop is one owner-local step, mirroring the work-first pop.
pub fn owner_pop_parent(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    e: GlobalAddr,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    owner_check_lock(m, lay, me)?;
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom - 1));
    let keyp1 = m.read_own(me, slot);
    if keyp1 == 0 {
        return Err(DequeError::Dead(DeadSlot {
            op: "owner_pop_parent",
            index: bottom - 1,
            cost,
        }));
    }
    let key = (keyp1 - 1) as u32;
    // A stale non-zero key (payload already gone) cannot be this thread's
    // parent; treat it as a non-match here and let the eventual `owner_pop`
    // of the same slot surface the violation.
    let is_parent = matches!(
        items.get(key),
        Some(QueueItem::Cont { spawned_child, .. }) if *spawned_child == e
    );
    if !is_parent {
        return Ok((None, cost));
    }
    let item = items.take(key);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom - 1);
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Number of queued items, from the owner's perspective (test/debug aid;
/// does not charge time).
pub fn owner_len(m: &mut Machine, lay: &SegLayout, me: WorkerId) -> u64 {
    let (top, _) = m.get_u64(me, word(lay, me, DQ_TOP));
    let (bottom, _) = m.get_u64(me, word(lay, me, DQ_BOTTOM));
    bottom - top
}

/// Encode the deque lock word: the holder's rank (biased by 1 so 0 stays
/// "unlocked") in the low 16 bits, its incarnation epoch above. Epoch-0
/// holders — every holder until a worker is evicted — encode to exactly the
/// pre-epoch `rank + 1` word, so healthy runs are byte-identical.
#[inline]
pub fn lock_word(epoch: u64, rank: WorkerId) -> u64 {
    debug_assert!(rank < (1 << 16) - 1, "lock word holds ranks below 65535");
    (epoch << 16) | (rank as u64 + 1)
}

/// Decode a non-zero deque lock word into `(holder_epoch, holder_rank)`.
#[inline]
pub fn lock_holder(word: u64) -> (u64, WorkerId) {
    debug_assert!(word != 0, "the unlocked word has no holder");
    (word >> 16, (word & 0xFFFF) as WorkerId - 1)
}

/// Step 1 of a steal: try to lock `victim`'s deque. Returns whether the lock
/// was acquired plus the atomic's cost.
pub fn thief_lock(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> (bool, VTime) {
    thief_lock_epoch(m, lay, me, victim, 0)
}

/// [`thief_lock`] with the thief's incarnation epoch stamped into the lock
/// word, so an owner breaking a stale lease can tell a dead holder from a
/// zombie one (see the scheduler's `break_dead_lock`).
pub fn thief_lock_epoch(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    epoch: u64,
) -> (bool, VTime) {
    let (old, cost) = m.cas_u64(me, word(lay, victim, DQ_LOCK), 0, lock_word(epoch, me));
    (old == 0, cost)
}

/// Steps 2–3 of a steal (requires the lock): read bounds, take the oldest
/// item, advance `top` and release. Returns the stolen item with its wire
/// size, or `None` if the deque was empty (released either way). The payload
/// transfer (step 4) is charged by the caller.
///
/// A dead slot at `top` returns [`DeadSlot`] — the lock is still released
/// (so the victim is not wedged by the thief's failure) but `top` is *not*
/// advanced: the bounds keep pointing at the corpse for the oracle to see.
pub fn thief_take(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> Result<(Option<(QueueItem, usize)>, VTime), DeadSlot> {
    match thief_take_no_release(m, victim_items, lay, me, victim) {
        Ok((None, mut cost)) => {
            // Empty: release the lock (non-blocking put suffices).
            cost += m.post_put_u64_unsignaled(me, word(lay, victim, DQ_LOCK), 0);
            Ok((None, cost))
        }
        Ok((Some((item, size, top)), mut cost)) => {
            // Advance + release: [top, lock adjacency aside] the advance is
            // issued *before* the lock release, so by verb issue order no
            // later lock acquirer can observe stale bounds. Only the
            // blocking release round trip is charged — the advance rides in
            // the same message window ([top, lock] are adjacent words).
            thief_advance_top(m, lay, me, victim, top + 1);
            cost += thief_release_lock(m, lay, me, victim);
            Ok((Some((item, size)), cost))
        }
        Err(mut d) => {
            // Release so the victim can still make progress, but leave the
            // bounds untouched.
            d.cost += thief_release_lock(m, lay, me, victim);
            Err(d)
        }
    }
}

/// A stolen entry as seen mid-protocol: the item, its wire size, and the
/// `top` index it was taken from.
pub type StolenEntry = (QueueItem, usize, u64);

/// Checker seam: steps 2–3 of a steal **without** the bounds advance or the
/// lock release. On success returns the item, its wire size, and the `top`
/// index it was taken from; the caller must then call [`thief_advance_top`]
/// and [`thief_release_lock`] itself. `dcs-check` uses this to recompose the
/// release sequence in the *wrong* order across separate engine steps and
/// prove the schedule explorer catches the resulting dead-slot window.
pub fn thief_take_no_release(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> Result<(Option<StolenEntry>, VTime), DeadSlot> {
    debug_assert_ne!(me, victim, "stealing from self");
    // One get covers the adjacent [top, bottom] words.
    let (top, cost) = m.get_u64(me, word(lay, victim, DQ_TOP));
    let (bottom, _) = m.get_u64(me, word(lay, victim, DQ_BOTTOM));
    match thief_take_no_release_at(m, victim_items, lay, me, victim, top, bottom) {
        Ok((got, c)) => Ok((got, cost + c)),
        Err(mut d) => {
            d.cost += cost;
            Err(d)
        }
    }
}

/// [`thief_take_no_release`] with the bounds already known: a multi-steal
/// probe reads `[top, bottom]` in the same doorbell chain as its lock CAS,
/// and a won lock freezes the bounds (owner ops and rival thieves observe
/// the lock), so the take step can skip the bounds re-read — one small-get
/// round trip saved per successful steal.
pub fn thief_take_no_release_at(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    top: u64,
    bottom: u64,
) -> Result<(Option<StolenEntry>, VTime), DeadSlot> {
    debug_assert_ne!(me, victim, "stealing from self");
    if top == bottom {
        return Ok((None, VTime::ZERO));
    }
    let slot = GlobalAddr::new(victim, lay.dq_slot(top));
    let (keyp1, cost) = m.get_u64(me, slot);
    let (size, _) = m.get_u64(me, slot.field(1));
    let dead = |cost| {
        Err(DeadSlot {
            op: "thief_take",
            index: top,
            cost,
        })
    };
    if keyp1 == 0 {
        return dead(cost);
    }
    let Some(item) = victim_items.try_take((keyp1 - 1) as u32) else {
        return dead(cost);
    };
    m.post_put_u64_unsignaled(me, slot, 0);
    Ok((Some((item, size as usize, top)), cost))
}

/// [`thief_take`] with the bounds already known (see
/// [`thief_take_no_release_at`]): entry read, advance, release — no bounds
/// round trip.
pub fn thief_take_at(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    top: u64,
    bottom: u64,
) -> Result<(Option<(QueueItem, usize)>, VTime), DeadSlot> {
    match thief_take_no_release_at(m, victim_items, lay, me, victim, top, bottom) {
        Ok((None, mut cost)) => {
            cost += m.post_put_u64_unsignaled(me, word(lay, victim, DQ_LOCK), 0);
            Ok((None, cost))
        }
        Ok((Some((item, size, top)), mut cost)) => {
            thief_advance_top(m, lay, me, victim, top + 1);
            cost += thief_release_lock(m, lay, me, victim);
            Ok((Some((item, size)), cost))
        }
        Err(mut d) => {
            d.cost += thief_release_lock(m, lay, me, victim);
            Err(d)
        }
    }
}

/// Checker seam: advance the victim's `top` to `new_top` (non-blocking put;
/// the cost rides in the release's message window and is not charged).
pub fn thief_advance_top(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    new_top: u64,
) {
    m.post_put_u64_unsignaled(me, word(lay, victim, DQ_TOP), new_top);
}

/// Checker seam: release the victim's deque lock (blocking put; returns its
/// round-trip cost).
pub fn thief_release_lock(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> VTime {
    m.put_u64(me, word(lay, victim, DQ_LOCK), 0)
}

// ----------------------------------------------------------------------
// Shared thief helper (lock-free + fence-free families)
// ----------------------------------------------------------------------

/// Thief-side bounds read without a lock: one span get covers the adjacent
/// `[top, bottom]` words. Under the fence-free protocol `top` is a hint
/// that may momentarily exceed `bottom` (a stale claim-write), so callers
/// must treat `top >= bottom` as empty rather than subtracting.
pub fn thief_read_bounds(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> ((u64, u64), VTime) {
    let ([top, bottom], cost) = m.get_u64_span::<2>(me, word(lay, victim, DQ_TOP));
    ((top, bottom), cost)
}

// ----------------------------------------------------------------------
// Lock-free family (ABP / Chase-Lev style): no lock word, one CAS on
// `top` per steal, an owner-local CAS only on the last-item race.
// ----------------------------------------------------------------------

/// Lock-free owner push: identical ring writes to [`owner_push`], but with
/// no lock to probe — the owner can never be blocked by a thief.
pub fn lf_owner_push(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    item: QueueItem,
) -> VTime {
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    assert!(
        bottom - top < lay.deque_cap as u64,
        "deque overflow (cap {}): nesting deeper than configured",
        lay.deque_cap
    );
    let size = item.wire_size();
    let key = items.insert(item);
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom));
    m.write_own(me, slot, key as u64 + 1);
    m.write_own(me, slot.field(1), size as u64);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom + 1);
    cost
}

/// Lock-free owner pop. Plain take except on the *last* item, where the
/// owner races thieves with a CAS on its own `top` (a cheap local atomic).
/// Engine steps are atomic, so a thief's claim either fully precedes this
/// pop (the owner then observes `top == bottom`, empty) or fully follows
/// it (the thief's CAS fails); the owner's CAS is charged because the real
/// protocol cannot know that, but it never loses here.
pub fn lf_owner_pop(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    let mut cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let b = bottom - 1;
    let slot = GlobalAddr::new(me, lay.dq_slot(b));
    let keyp1 = m.read_own(me, slot);
    let dead = |cost| {
        Err(DequeError::Dead(DeadSlot {
            op: "lf_owner_pop",
            index: b,
            cost,
        }))
    };
    if keyp1 == 0 {
        return dead(cost);
    }
    if b == top {
        // Last item: decide it with the top CAS before touching the slot.
        let (seen, c) = m.cas_u64(me, word(lay, me, DQ_TOP), top, top + 1);
        cost += c;
        m.write_own(me, word(lay, me, DQ_BOTTOM), top + 1);
        if seen != top {
            return Ok((None, cost));
        }
    } else {
        m.write_own(me, word(lay, me, DQ_BOTTOM), b);
    }
    let Some(item) = items.try_take((keyp1 - 1) as u32) else {
        return dead(cost);
    };
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Lock-free variant of [`owner_pop_parent`]: peek the bottom item first;
/// only a parent match pays the pop (including the last-item CAS).
pub fn lf_owner_pop_parent(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    e: GlobalAddr,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    let mut cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let b = bottom - 1;
    let slot = GlobalAddr::new(me, lay.dq_slot(b));
    let keyp1 = m.read_own(me, slot);
    if keyp1 == 0 {
        return Err(DequeError::Dead(DeadSlot {
            op: "lf_owner_pop_parent",
            index: b,
            cost,
        }));
    }
    let key = (keyp1 - 1) as u32;
    let is_parent = matches!(
        items.get(key),
        Some(QueueItem::Cont { spawned_child, .. }) if *spawned_child == e
    );
    if !is_parent {
        return Ok((None, cost));
    }
    if b == top {
        let (seen, c) = m.cas_u64(me, word(lay, me, DQ_TOP), top, top + 1);
        cost += c;
        m.write_own(me, word(lay, me, DQ_BOTTOM), top + 1);
        if seen != top {
            return Ok((None, cost));
        }
    } else {
        m.write_own(me, word(lay, me, DQ_BOTTOM), b);
    }
    let item = items.take(key);
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Lock-free thief claim (the second thief step, after a bounds read saw
/// `top < bottom`): read the entry at `top` and CAS `top → top+1`. A lost
/// CAS is a benign failed steal (`Ok(None)`); a won CAS guarantees the
/// slot was live (step atomicity + owner discipline), so a dead decode is
/// a typed protocol violation. The payload transfer is charged by the
/// caller.
pub fn lf_thief_claim(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    top: u64,
) -> Result<(Option<(QueueItem, usize)>, VTime), DeadSlot> {
    debug_assert_ne!(me, victim, "stealing from self");
    let slot = GlobalAddr::new(victim, lay.dq_slot(top));
    let ([keyp1, size], mut cost) = m.get_u64_span::<2>(me, slot);
    let (seen, c_cas) = m.cas_u64(me, word(lay, victim, DQ_TOP), top, top + 1);
    cost += c_cas;
    if seen != top {
        return Ok((None, cost));
    }
    let dead = |cost| {
        Err(DeadSlot {
            op: "lf_thief_claim",
            index: top,
            cost,
        })
    };
    if keyp1 == 0 {
        return dead(cost);
    }
    let Some(item) = victim_items.try_take((keyp1 - 1) as u32) else {
        return dead(cost);
    };
    m.post_put_u64_unsignaled(me, slot, 0);
    Ok((Some((item, size as usize)), cost))
}

// ----------------------------------------------------------------------
// Fence-free family: plain reads/writes only, bounded multiplicity.
//
// The ring grows a third word per slot — an occupancy-unique *ticket*
// minted by the owner at push. A thief claims a task by (1) reading the
// entry span, (2) validating the ticket against the victim's live-payload
// table, (3) writing `top+1` with a plain put (a hint other thieves and
// nobody else trusts), and (4) claiming the ticket in the shared
// [`ClaimSet`] — the actual arbiter. Because a continuation payload is
// removed from the slab by its first taker within one atomic step, only
// cloneable Child descriptors can ever be doubly taken; the loser pays the
// wasted transfer and discards (`FfSteal::Dup`). The owner never trusts
// `top` (stale claim-writes can regress or overrun it); emptiness is "the
// slot below `bottom` is zero", which is sound because only the owner
// writes ring slots and only at the bottom end (stack discipline keeps
// the nonzero region contiguous).
// ----------------------------------------------------------------------

/// Outcome of a fence-free thief claim.
#[derive(Debug)]
pub enum FfSteal {
    /// First claim of this occupancy: the item (removed for `Cont`,
    /// cloned for `Child`) and its wire size. Payload transfer is charged
    /// by the caller.
    Taken(Box<QueueItem>, usize),
    /// The occupancy was already claimed by another taker — the bounded
    /// multiplicity case. The wasted payload transfer was already charged;
    /// the caller records a `ff_dups` stat and discards.
    Dup,
    /// The slot was empty, stale, or reused since the bounds read: a
    /// benign lost race (`ff_lost_races`), cheaper than a dup.
    Lost,
}

/// Fence-free owner push: three plain slot writes + bottom advance, one
/// local op, and *no* lock probe — the owner can never be blocked. Also
/// repairs the `top` hint if a stale thief claim-write overran `bottom`
/// (free: the hint lives in the owner's cache line).
pub fn ff_owner_push(
    m: &mut Machine,
    ws: &mut WorkerShared,
    lay: &SegLayout,
    me: WorkerId,
    item: QueueItem,
) -> VTime {
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top > bottom {
        m.write_own(me, word(lay, me, DQ_TOP), bottom);
    }
    let size = item.wire_size();
    let key = ws.items.insert(item);
    let ticket = ws.ff_fresh_ticket(me);
    ws.ff_tickets.insert(key as u64, ticket);
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom));
    // `top` is a hint, so overflow is detected exactly: wrapping onto a
    // still-nonzero slot means the ring is full.
    assert!(
        m.read_own(me, slot) == 0,
        "deque overflow (cap {}): nesting deeper than configured",
        lay.deque_cap
    );
    m.write_own(me, slot, key as u64 + 1);
    m.write_own(me, slot.field(1), size as u64);
    m.write_own(me, slot.field(2), ticket);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom + 1);
    cost
}

/// Fence-free owner pop: walk down from `bottom`, reclaiming slots whose
/// tickets were claimed by thieves (dropping a doubly-held `Child`
/// original), until a live unclaimed item (claim + take it) or a zero
/// slot (empty). Never returns [`DequeError::Busy`]; a nonzero slot that
/// decodes to neither a claimed ticket nor a live payload is a typed
/// [`DeadSlot`].
pub fn ff_owner_pop(
    m: &mut Machine,
    ws: &mut WorkerShared,
    claims: &mut ClaimSet,
    lay: &SegLayout,
    me: WorkerId,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    let mut cost = m.local_op(me);
    loop {
        let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
        if bottom == 0 {
            return Ok((None, cost));
        }
        let b = bottom - 1;
        let slot = GlobalAddr::new(me, lay.dq_slot(b));
        let keyp1 = m.read_own(me, slot);
        if keyp1 == 0 {
            // Only the owner zeroes slots, bottom-end first: the nonzero
            // region is contiguous, so a zero slot here means empty.
            return Ok((None, cost));
        }
        let key = keyp1 - 1;
        let ticket = m.read_own(me, slot.field(2));
        if claims.contains(ticket) {
            // A thief owns this occupancy. Drop a still-present Child
            // original (the thief cloned), retire the ticket, reclaim the
            // slot and keep walking. One local op per reclaimed slot.
            if ws.ff_tickets.get(&key) == Some(&ticket) {
                ws.ff_tickets.remove(&key);
                let _ = ws.items.try_take(key as u32);
            }
            claims.retire(ticket);
            m.write_own(me, slot, 0);
            m.write_own(me, slot.field(2), 0);
            m.write_own(me, word(lay, me, DQ_BOTTOM), b);
            cost += m.local_op(me);
            continue;
        }
        // Unclaimed: it must be live, or the ring is corrupt.
        if ws.ff_tickets.get(&key) != Some(&ticket) {
            return Err(DequeError::Dead(DeadSlot {
                op: "ff_owner_pop",
                index: b,
                cost,
            }));
        }
        let claimed = claims.first_claim(ticket);
        debug_assert!(claimed, "unclaimed ticket must be claimable in-step");
        claims.retire(ticket);
        ws.ff_tickets.remove(&key);
        let Some(item) = ws.items.try_take(key as u32) else {
            return Err(DequeError::Dead(DeadSlot {
                op: "ff_owner_pop",
                index: b,
                cost,
            }));
        };
        m.write_own(me, slot, 0);
        m.write_own(me, slot.field(2), 0);
        m.write_own(me, word(lay, me, DQ_BOTTOM), b);
        let top = m.read_own(me, word(lay, me, DQ_TOP));
        if top > b {
            m.write_own(me, word(lay, me, DQ_TOP), b);
        }
        return Ok((Some(item), cost));
    }
}

/// Fence-free variant of [`owner_pop_parent`]: walk down through claimed
/// slots (reclaiming them like [`ff_owner_pop`]); at the first live
/// unclaimed item, pop it only on a parent match.
pub fn ff_owner_pop_parent(
    m: &mut Machine,
    ws: &mut WorkerShared,
    claims: &mut ClaimSet,
    lay: &SegLayout,
    me: WorkerId,
    e: GlobalAddr,
) -> Result<(Option<QueueItem>, VTime), DequeError> {
    let mut cost = m.local_op(me);
    loop {
        let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
        if bottom == 0 {
            return Ok((None, cost));
        }
        let b = bottom - 1;
        let slot = GlobalAddr::new(me, lay.dq_slot(b));
        let keyp1 = m.read_own(me, slot);
        if keyp1 == 0 {
            return Ok((None, cost));
        }
        let key = keyp1 - 1;
        let ticket = m.read_own(me, slot.field(2));
        if claims.contains(ticket) {
            if ws.ff_tickets.get(&key) == Some(&ticket) {
                ws.ff_tickets.remove(&key);
                let _ = ws.items.try_take(key as u32);
            }
            claims.retire(ticket);
            m.write_own(me, slot, 0);
            m.write_own(me, slot.field(2), 0);
            m.write_own(me, word(lay, me, DQ_BOTTOM), b);
            cost += m.local_op(me);
            continue;
        }
        if ws.ff_tickets.get(&key) != Some(&ticket) {
            return Err(DequeError::Dead(DeadSlot {
                op: "ff_owner_pop_parent",
                index: b,
                cost,
            }));
        }
        let is_parent = matches!(
            ws.items.get(key as u32),
            Some(QueueItem::Cont { spawned_child, .. }) if *spawned_child == e
        );
        if !is_parent {
            return Ok((None, cost));
        }
        let claimed = claims.first_claim(ticket);
        debug_assert!(claimed, "unclaimed ticket must be claimable in-step");
        claims.retire(ticket);
        ws.ff_tickets.remove(&key);
        let item = ws.items.take(key as u32);
        m.write_own(me, slot, 0);
        m.write_own(me, slot.field(2), 0);
        m.write_own(me, word(lay, me, DQ_BOTTOM), b);
        return Ok((Some(item), cost));
    }
}

/// Decode one fence-free entry span `[key+1, wire_size, ticket]` read from
/// a victim's ring and decide the steal outcome — the host-side half of the
/// thief's claim step, shared by the blocking and pipelined paths. Mutates
/// the victim's slab (`Cont` take / `Child` clone) and the claim set; the
/// caller charges the fabric (entry get, claim-write, payload or wasted
/// payload).
pub fn ff_decide(
    victim_ws: &mut WorkerShared,
    claims: &mut ClaimSet,
    vals: [u64; 3],
) -> FfSteal {
    let [keyp1, size, ticket] = vals;
    if keyp1 == 0 || ticket == 0 {
        return FfSteal::Lost;
    }
    let key = keyp1 - 1;
    if victim_ws.ff_tickets.get(&key) != Some(&ticket) {
        // The occupancy is gone (its first taker was a continuation, or
        // the owner popped it) or the slot was reused: benign lost race.
        return FfSteal::Lost;
    }
    // Live occupancy. In the fence-free algorithm the taker copies the
    // payload *before* writing its claim, so a second taker of a cloneable
    // Child pays the transfer and only then discovers the claim.
    if !claims.first_claim(ticket) {
        return FfSteal::Dup;
    }
    match victim_ws.items.get(key as u32) {
        Some(QueueItem::Child { f, arg, handle }) => {
            // Clone the descriptor; the original stays in the victim's
            // slab (and `ff_tickets`) until the owner reclaims the slot.
            FfSteal::Taken(
                Box::new(QueueItem::Child {
                    f: *f,
                    arg: arg.clone(),
                    handle: *handle,
                }),
                size as usize,
            )
        }
        Some(QueueItem::Cont { .. }) => {
            // First (and only possible) taker of a continuation: remove
            // the payload so any later taker loses the validation race.
            victim_ws.ff_tickets.remove(&key);
            let item = victim_ws
                .items
                .try_take(key as u32)
                .expect("validated live payload");
            FfSteal::Taken(Box::new(item), size as usize)
        }
        None => unreachable!("ff_tickets maps only live slab keys"),
    }
}

/// Fence-free thief claim, blocking charging: entry span get (one verb) +
/// plain claim-write of the `top` hint. A [`FfSteal::Dup`] additionally
/// charges the wasted payload transfer here; a winner's payload is charged
/// by the caller (so pipelined and blocking winners share one code path).
pub fn ff_thief_claim(
    m: &mut Machine,
    victim_ws: &mut WorkerShared,
    claims: &mut ClaimSet,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
    top: u64,
) -> (FfSteal, VTime) {
    debug_assert_ne!(me, victim, "stealing from self");
    let slot = GlobalAddr::new(victim, lay.dq_slot(top));
    let (vals, mut cost) = m.get_u64_span::<3>(me, slot);
    let outcome = ff_decide(victim_ws, claims, vals);
    if !matches!(outcome, FfSteal::Lost) {
        cost += m.post_put_u64_unsignaled(me, word(lay, victim, DQ_TOP), top + 1);
    }
    if let FfSteal::Dup = outcome {
        cost += m.get_bulk(me, victim, vals[1] as usize);
    }
    (outcome, cost)
}

/// End-of-run safety net (fence-free, strict runs): reclaim any trailing
/// claimed slots the owner never walked past, so thief-held `Child`
/// originals don't trip the strict "no leaked items" assert. Stops at the
/// first unclaimed slot — a genuinely lost item must still be caught.
pub fn ff_owner_reclaim(
    m: &mut Machine,
    ws: &mut WorkerShared,
    claims: &mut ClaimSet,
    lay: &SegLayout,
    me: WorkerId,
) {
    for _ in 0..lay.deque_cap {
        let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
        if bottom == 0 {
            return;
        }
        let b = bottom - 1;
        let slot = GlobalAddr::new(me, lay.dq_slot(b));
        let keyp1 = m.read_own(me, slot);
        if keyp1 == 0 {
            return;
        }
        let ticket = m.read_own(me, slot.field(2));
        if !claims.contains(ticket) {
            return;
        }
        let key = keyp1 - 1;
        if ws.ff_tickets.get(&key) == Some(&ticket) {
            ws.ff_tickets.remove(&key);
            let _ = ws.items.try_take(key as u32);
        }
        claims.retire(ticket);
        m.write_own(me, slot, 0);
        m.write_own(me, slot.field(2), 0);
        m.write_own(me, word(lay, me, DQ_BOTTOM), b);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Effect, VThread};
    use crate::policy::{Policy, RunConfig};
    use crate::value::{ThreadHandle, Value};
    use dcs_sim::{profiles, MachineConfig, VTime};

    fn setup() -> (Machine, Slab<QueueItem>, SegLayout) {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, Slab::new(), lay)
    }

    fn body(_: Value, _: &mut crate::frame::TaskCtx) -> Effect {
        Effect::ret(0u64)
    }

    fn child_item(tag: u64) -> QueueItem {
        QueueItem::Child {
            f: body,
            arg: Value::U64(tag),
            handle: ThreadHandle::single(GlobalAddr::new(0, 8 * (tag as u32 + 1))),
        }
    }

    fn cont_item(tid: u64, spawned: GlobalAddr) -> QueueItem {
        QueueItem::Cont {
            th: VThread::new(tid, body, Value::Unit, ThreadHandle::single(GlobalAddr::NULL)),
            spawned_child: spawned,
            since: VTime::ZERO,
        }
    }

    fn tag_of(item: &QueueItem) -> u64 {
        match item {
            QueueItem::Child { arg, .. } => arg.as_u64(),
            QueueItem::Cont { th, .. } => th.tid,
        }
    }

    #[test]
    fn push_pop_is_lifo() {
        let (mut m, mut items, lay) = setup();
        for i in 0..3 {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        assert_eq!(owner_len(&mut m, &lay, 0), 3);
        for i in (0..3).rev() {
            let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
            assert_eq!(tag_of(&it.unwrap()), i);
        }
        let (none, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(items.is_empty());
    }

    #[test]
    fn steal_takes_oldest_fifo() {
        let (mut m, mut items, lay) = setup();
        for i in 0..3 {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap();
        let (item, size) = got.unwrap();
        assert_eq!(tag_of(&item), 0, "steals take the oldest task");
        assert_eq!(size, item.wire_size());
        // Owner still pops LIFO from the other end.
        let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 2);
        assert_eq!(owner_len(&mut m, &lay, 0), 1);
    }

    #[test]
    fn owner_blocked_while_thief_holds_lock() {
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(7)).unwrap();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        // Victim's own operations observe the lock and must retry.
        assert_eq!(
            owner_pop(&mut m, &mut items, &lay, 0).unwrap_err(),
            DequeError::Busy
        );
        assert_eq!(
            owner_push(&mut m, &mut items, &lay, 0, child_item(8)).unwrap_err(),
            DequeError::Busy
        );
        // A second thief fails the lock CAS (= failed steal attempt).
        let (locked2, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(!locked2);
        // After the take releases, the owner proceeds.
        let _ = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap();
        assert!(owner_pop(&mut m, &mut items, &lay, 0).is_ok());
    }

    #[test]
    fn steal_of_empty_deque_releases() {
        let (mut m, mut items, lay) = setup();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap();
        assert!(got.is_none());
        // Lock released: owner can push again.
        assert!(owner_push(&mut m, &mut items, &lay, 0, child_item(0)).is_ok());
    }

    #[test]
    fn pop_parent_matches_only_spawned_child() {
        let (mut m, mut items, lay) = setup();
        let e1 = GlobalAddr::new(0, 0x100);
        let e2 = GlobalAddr::new(0, 0x200);
        owner_push(&mut m, &mut items, &lay, 0, cont_item(1, e1)).unwrap();
        // Wrong entry: no pop.
        let (none, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e2).unwrap();
        assert!(none.is_none());
        assert_eq!(owner_len(&mut m, &lay, 0), 1);
        // Child descriptors never match.
        owner_push(&mut m, &mut items, &lay, 0, child_item(9)).unwrap();
        let (none, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e1).unwrap();
        assert!(none.is_none());
        let _ = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        // Right entry at the bottom: popped.
        let (some, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e1).unwrap();
        assert_eq!(tag_of(&some.unwrap()), 1);
        assert_eq!(owner_len(&mut m, &lay, 0), 0);
    }

    #[test]
    fn ring_wraps_after_many_cycles() {
        let (mut m, mut items, lay) = setup();
        let cycles = lay.deque_cap as u64 * 2 + 3;
        for i in 0..cycles {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
            let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
            assert_eq!(tag_of(&it.unwrap()), i);
        }
        assert!(items.is_empty());
    }

    #[test]
    fn dead_slot_is_a_typed_error_not_a_panic() {
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(3)).unwrap();
        // Corrupt the ring: zero the slot while the bounds still cover it.
        let slot = GlobalAddr::new(0, lay.dq_slot(0));
        m.write_own(0, slot, 0);
        assert!(matches!(
            owner_pop(&mut m, &mut items, &lay, 0).unwrap_err(),
            DequeError::Dead(DeadSlot {
                op: "owner_pop",
                index: 0,
                ..
            })
        ));
        let DequeError::Dead(d) =
            owner_pop_parent(&mut m, &mut items, &lay, 0, GlobalAddr::NULL).unwrap_err()
        else {
            panic!("expected dead slot");
        };
        assert_eq!((d.op, d.index), ("owner_pop_parent", 0));
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let d = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap_err();
        assert_eq!((d.op, d.index), ("thief_take", 0));
        // The failed thief still released the lock, and left `top` pointing
        // at the corpse.
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_LOCK)).0, 0);
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_TOP)).0, 0);
        // A stale non-zero key (payload gone from the slab) is a dead slot
        // too, instead of a panic inside `Slab::take`.
        m.write_own(0, slot, 77 + 1);
        assert!(matches!(
            owner_pop(&mut m, &mut items, &lay, 0),
            Err(DequeError::Dead(_))
        ));
    }

    #[test]
    fn thief_take_advances_top_no_later_than_release() {
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(1)).unwrap();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap();
        assert!(got.is_some());
        // Post-state: bounds advanced AND lock released — never the lock
        // free while `top` still covers the emptied slot.
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_TOP)).0, 1);
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_LOCK)).0, 0);
        let (none, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn known_bounds_take_skips_the_bounds_read() {
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(4)).unwrap();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let ((top, bottom), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let gets_before = m.stats_total().remote_gets;
        let (got, _) = thief_take_at(&mut m, &mut items, &lay, 1, 0, top, bottom).unwrap();
        let (item, size) = got.unwrap();
        assert_eq!(tag_of(&item), 4);
        assert_eq!(size, item.wire_size());
        // Only the ring-entry pair (adjacent [key, size] words) — the
        // bounds words of `thief_take` were not re-read.
        assert_eq!(m.stats_total().remote_gets, gets_before + 2);
        // Post-state identical to `thief_take`: advanced and released.
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_TOP)).0, 1);
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_LOCK)).0, 0);
        // A known-bounds take of an empty deque still releases the lock.
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let ((top, bottom), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        assert_eq!(top, bottom);
        let (none, _) = thief_take_at(&mut m, &mut items, &lay, 1, 0, top, bottom).unwrap();
        assert!(none.is_none());
        assert_eq!(m.get_u64(1, word(&lay, 0, DQ_LOCK)).0, 0);
    }

    #[test]
    fn wrong_release_order_exposes_dead_slot_window() {
        // Recompose the steal with the lock released *before* the bounds
        // advance — the historical ordering. An owner pop landing in that
        // window sees lock-free bounds covering a zeroed slot: exactly the
        // dead-slot window `dcs-check` must flush out.
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(5)).unwrap();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take_no_release(&mut m, &mut items, &lay, 1, 0).unwrap();
        let (_, _, top) = got.unwrap();
        thief_release_lock(&mut m, &lay, 1, 0);
        assert!(matches!(
            owner_pop(&mut m, &mut items, &lay, 0),
            Err(DequeError::Dead(DeadSlot {
                op: "owner_pop",
                index: 0,
                ..
            }))
        ));
        // Once top advances the deque is consistent (empty) again.
        thief_advance_top(&mut m, &lay, 1, 0, top + 1);
        let (none, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
    }

    // -- lock-free family -------------------------------------------------

    #[test]
    fn lf_push_pop_is_lifo_and_steal_is_fifo() {
        let (mut m, mut items, lay) = setup();
        for i in 0..3 {
            lf_owner_push(&mut m, &mut items, &lay, 0, child_item(i));
        }
        // Thief: bounds read (one span verb), then claim the oldest.
        let ((top, bottom), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        assert_eq!((top, bottom), (0, 3));
        let (got, _) = lf_thief_claim(&mut m, &mut items, &lay, 1, 0, top).unwrap();
        let (item, size) = got.unwrap();
        assert_eq!(tag_of(&item), 0, "steals take the oldest task");
        assert_eq!(size, item.wire_size());
        // Owner pops LIFO, unaffected — and never sees Busy.
        let (it, _) = lf_owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 2);
        let (it, _) = lf_owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 1);
        let (none, _) = lf_owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(items.is_empty());
    }

    #[test]
    fn lf_last_item_race_is_decided_by_the_top_cas() {
        let (mut m, mut items, lay) = setup();
        lf_owner_push(&mut m, &mut items, &lay, 0, child_item(7));
        // Thief reads bounds, then the owner pops the last item first: the
        // owner's top CAS wins, so the thief's stale claim must lose.
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (it, _) = lf_owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 7);
        let (got, _) = lf_thief_claim(&mut m, &mut items, &lay, 1, 0, top).unwrap();
        assert!(got.is_none(), "stale claim loses the CAS, benignly");
        assert!(items.is_empty());
        // And the other order: the thief claims first, the owner then sees
        // an empty deque (top == bottom after the claim's CAS).
        lf_owner_push(&mut m, &mut items, &lay, 0, child_item(8));
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (got, _) = lf_thief_claim(&mut m, &mut items, &lay, 1, 0, top).unwrap();
        assert_eq!(tag_of(&got.unwrap().0), 8);
        let (none, _) = lf_owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
    }

    #[test]
    fn lf_pop_parent_matches_only_spawned_child() {
        let (mut m, mut items, lay) = setup();
        let e1 = GlobalAddr::new(0, 0x100);
        let e2 = GlobalAddr::new(0, 0x200);
        lf_owner_push(&mut m, &mut items, &lay, 0, cont_item(1, e1));
        let (none, _) = lf_owner_pop_parent(&mut m, &mut items, &lay, 0, e2).unwrap();
        assert!(none.is_none());
        let (some, _) = lf_owner_pop_parent(&mut m, &mut items, &lay, 0, e1).unwrap();
        assert_eq!(tag_of(&some.unwrap()), 1);
        assert!(items.is_empty());
    }

    #[test]
    fn lf_dead_slot_is_a_typed_error() {
        let (mut m, mut items, lay) = setup();
        lf_owner_push(&mut m, &mut items, &lay, 0, child_item(3));
        let slot = GlobalAddr::new(0, lay.dq_slot(0));
        m.write_own(0, slot, 0);
        assert!(matches!(
            lf_owner_pop(&mut m, &mut items, &lay, 0),
            Err(DequeError::Dead(DeadSlot { op: "lf_owner_pop", index: 0, .. }))
        ));
        // Restore a stale (dangling) key: the thief wins its CAS but the
        // payload is gone — typed, not a slab panic.
        m.write_own(0, slot, 77 + 1);
        let d = lf_thief_claim(&mut m, &mut items, &lay, 1, 0, 0).unwrap_err();
        assert_eq!((d.op, d.index), ("lf_thief_claim", 0));
    }

    // -- fence-free family ------------------------------------------------

    fn ff_setup() -> (Machine, WorkerShared, ClaimSet, SegLayout) {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, WorkerShared::new(&cfg), ClaimSet::new(), lay)
    }

    #[test]
    fn ff_push_pop_is_lifo_and_issues_no_amos() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        for i in 0..3 {
            ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(i));
        }
        for i in (0..3).rev() {
            let (it, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
            assert_eq!(tag_of(&it.unwrap()), i);
        }
        let (none, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(ws.items.is_empty());
        assert!(ws.ff_tickets.is_empty());
        assert!(claims.is_empty());
        assert_eq!(m.stats_total().remote_amos, 0);
    }

    #[test]
    fn ff_steal_takes_oldest_with_plain_verbs_only() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        for i in 0..3 {
            ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(i));
        }
        let ((top, bottom), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        assert!(top < bottom);
        let (out, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        let FfSteal::Taken(item, size) = out else {
            panic!("expected a clean first take, got {out:?}");
        };
        assert_eq!(tag_of(&item), 0, "steals take the oldest task");
        assert_eq!(size, item.wire_size());
        // Not one AMO on the whole steal path.
        assert_eq!(m.stats_total().remote_amos, 0);
        // The Child original lingers until the owner's walk reclaims it.
        assert_eq!(ws.items.len(), 3);
        let (it, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 2);
        let (it, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 1);
        // The next pop walks onto the claimed slot, reclaims the original
        // and reports empty.
        let (none, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(ws.items.is_empty(), "claimed original reclaimed");
        assert!(claims.is_empty(), "ticket retired");
    }

    #[test]
    fn ff_double_take_of_a_child_is_a_bounded_dup() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(5));
        // Both thieves observed the same bounds before either claimed.
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (first, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(first, FfSteal::Taken(..)));
        let (second, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(second, FfSteal::Dup), "second take pays and discards");
        let (third, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(third, FfSteal::Dup));
        // The owner reclaims the original; nothing executes twice.
        let (none, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(ws.items.is_empty());
    }

    #[test]
    fn ff_continuations_are_taken_at_most_once() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        ff_owner_push(&mut m, &mut ws, &lay, 0, cont_item(1, GlobalAddr::NULL));
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (first, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(first, FfSteal::Taken(..)));
        // A continuation payload leaves the victim with its first taker, so
        // the second take fails validation — a lost race, not even a dup.
        let (second, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(second, FfSteal::Lost));
        let (none, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(ws.items.is_empty());
    }

    #[test]
    fn ff_owner_never_trusts_the_top_hint() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        // A stale claim-write leaves top > bottom; pushes must repair the
        // hint and lose nothing.
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(1));
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (out, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(out, FfSteal::Taken(..)));
        assert_eq!(m.read_own(0, GlobalAddr::new(0, lay.dq_word(DQ_TOP))), 1);
        let (none, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert!(none.is_none());
        // bottom is now 0 while the hint says 1: inverted.
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(2));
        let (it, _) = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 2, "item pushed under an inverted hint survives");
        assert!(ws.items.is_empty());
    }

    #[test]
    fn ff_stale_claims_on_consumed_slots_are_lost_races() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(1));
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(2));
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        // Owner drains both items before the thief's claim lands.
        let _ = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        let _ = ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0).unwrap();
        let (out, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        assert!(matches!(out, FfSteal::Lost));
        // Slot reuse: a new push re-occupies the slot with a fresh ticket;
        // a thief claiming with the *current* span steals the new item
        // legitimately (the untorn 3-word read names the new occupancy).
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(3));
        let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
        let (out, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
        let FfSteal::Taken(item, _) = out else {
            panic!("fresh occupancy steal must win");
        };
        assert_eq!(tag_of(&item), 3);
    }

    #[test]
    fn ff_corrupt_unclaimed_slot_is_a_typed_error() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(9));
        // Corrupt the key word while ticket stays nonzero and unclaimed.
        let slot = GlobalAddr::new(0, lay.dq_slot(0));
        m.write_own(0, slot, 555);
        assert!(matches!(
            ff_owner_pop(&mut m, &mut ws, &mut claims, &lay, 0),
            Err(DequeError::Dead(DeadSlot { op: "ff_owner_pop", index: 0, .. }))
        ));
    }

    #[test]
    fn ff_owner_reclaim_sweeps_trailing_claimed_slots() {
        let (mut m, mut ws, mut claims, lay) = ff_setup();
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(1));
        ff_owner_push(&mut m, &mut ws, &lay, 0, child_item(2));
        for _ in 0..2 {
            let ((top, _), _) = thief_read_bounds(&mut m, &lay, 1, 0);
            let (out, _) = ff_thief_claim(&mut m, &mut ws, &mut claims, &lay, 1, 0, top);
            assert!(matches!(out, FfSteal::Taken(..)));
        }
        assert_eq!(ws.items.len(), 2, "both originals linger");
        ff_owner_reclaim(&mut m, &mut ws, &mut claims, &lay, 0);
        assert!(ws.items.is_empty());
        assert!(ws.ff_tickets.is_empty());
        assert!(claims.is_empty());
    }

    #[test]
    fn steal_then_owner_drain_preserves_all_items() {
        let (mut m, mut items, lay) = setup();
        let n = 10;
        for i in 0..n {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        let mut seen = vec![false; n as usize];
        // Alternate steals and pops until drained.
        loop {
            let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
            assert!(locked);
            if let (Some((item, _)), _) = thief_take(&mut m, &mut items, &lay, 1, 0).unwrap() {
                seen[tag_of(&item) as usize] = true;
            } else {
                break;
            }
            if let (Some(item), _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap() {
                seen[tag_of(&item) as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "no task lost or duplicated");
    }
}
