//! The per-worker task deque with a one-sided steal protocol.
//!
//! Control words and the entry ring live in the owner's pinned segment
//! (offsets from [`SegLayout`]); the Rust payload objects live in the
//! owner's [`crate::world::WorkerShared::items`] slab and are referenced by
//! slab key from the ring. Owner operations (push/pop/peek) work on the
//! *bottom* end at local cost; thieves operate on the *top* (oldest) end so
//! the task with the most expected work is stolen (§II).
//!
//! The steal protocol mirrors MassiveThreads/DM's lock-based RDMA deque:
//!
//! 1. `CAS` the lock word (one atomic round trip). Failure — somebody else
//!    holds it — is a failed steal attempt.
//! 2. `GET` the `[top, bottom]` words (adjacent; one round trip). Empty →
//!    release and report a failed steal.
//! 3. `GET` the ring entry, then `PUT` `[lock := 0, top := top+1]` (the two
//!    words are adjacent, one round trip releases and advances atomically
//!    from the victim's point of view).
//! 4. Transfer the payload (stack or descriptor bytes) — charged by the
//!    scheduler, which also records steal statistics.
//!
//! The thief holds the lock **across simulator steps** (between
//! [`thief_lock`] and [`thief_take`]), so a victim touching its own deque in
//! that window observes the lock and must retry — the owner-side functions
//! return [`Busy`] and the caller yields a local-op's worth of time, exactly
//! the brief victim stall a real lock-based RDMA deque causes.

use dcs_sim::{GlobalAddr, Machine, VTime, WorkerId};

use crate::layout::{SegLayout, DQ_BOTTOM, DQ_LOCK, DQ_TOP};
use crate::util::Slab;
use crate::world::QueueItem;

/// The deque is momentarily locked by a thief; retry next step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Busy;

#[inline]
fn word(lay: &SegLayout, me: WorkerId, w: u32) -> GlobalAddr {
    GlobalAddr::new(me, lay.dq_word(w))
}

/// Owner-side lock check shared by all local operations.
fn owner_check_lock(m: &mut Machine, lay: &SegLayout, me: WorkerId) -> Result<(), Busy> {
    let (lock, _) = m.get_u64(me, word(lay, me, DQ_LOCK));
    if lock != 0 {
        Err(Busy)
    } else {
        Ok(())
    }
}

/// Push an item at the bottom (local end). Returns the charged cost.
pub fn owner_push(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    item: QueueItem,
) -> Result<VTime, Busy> {
    owner_check_lock(m, lay, me)?;
    // One O(1) local operation covers the lock check, bounds, ring write
    // and bottom update (all cache-resident for the owner).
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    assert!(
        bottom - top < lay.deque_cap as u64,
        "deque overflow (cap {}): nesting deeper than configured",
        lay.deque_cap
    );
    let size = item.wire_size();
    let key = items.insert(item);
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom));
    m.write_own(me, slot, key as u64 + 1);
    m.write_own(me, slot.field(1), size as u64);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom + 1);
    Ok(cost)
}

/// Pop the bottom item, if any.
pub fn owner_pop(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
) -> Result<(Option<QueueItem>, VTime), Busy> {
    owner_check_lock(m, lay, me)?;
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom - 1));
    let keyp1 = m.read_own(me, slot);
    debug_assert_ne!(keyp1, 0, "ring slot referenced by bounds must be live");
    let item = items.take((keyp1 - 1) as u32);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom - 1);
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Fig.-4 DIE fast-path test: is the bottom item this dying thread's parent
/// continuation (a `Cont` whose `spawned_child` equals `e`)? If so, pop it.
/// The check-and-pop is one owner-local step, mirroring the work-first pop.
pub fn owner_pop_parent(
    m: &mut Machine,
    items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    e: GlobalAddr,
) -> Result<(Option<QueueItem>, VTime), Busy> {
    owner_check_lock(m, lay, me)?;
    let cost = m.local_op(me);
    let top = m.read_own(me, word(lay, me, DQ_TOP));
    let bottom = m.read_own(me, word(lay, me, DQ_BOTTOM));
    if top == bottom {
        return Ok((None, cost));
    }
    let slot = GlobalAddr::new(me, lay.dq_slot(bottom - 1));
    let keyp1 = m.read_own(me, slot);
    let key = (keyp1 - 1) as u32;
    let is_parent = matches!(
        items.get(key),
        Some(QueueItem::Cont { spawned_child, .. }) if *spawned_child == e
    );
    if !is_parent {
        return Ok((None, cost));
    }
    let item = items.take(key);
    m.write_own(me, word(lay, me, DQ_BOTTOM), bottom - 1);
    m.write_own(me, slot, 0);
    Ok((Some(item), cost))
}

/// Number of queued items, from the owner's perspective (test/debug aid;
/// does not charge time).
pub fn owner_len(m: &mut Machine, lay: &SegLayout, me: WorkerId) -> u64 {
    let (top, _) = m.get_u64(me, word(lay, me, DQ_TOP));
    let (bottom, _) = m.get_u64(me, word(lay, me, DQ_BOTTOM));
    bottom - top
}

/// Step 1 of a steal: try to lock `victim`'s deque. Returns whether the lock
/// was acquired plus the atomic's cost.
pub fn thief_lock(
    m: &mut Machine,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> (bool, VTime) {
    let (old, cost) = m.cas_u64(me, word(lay, victim, DQ_LOCK), 0, me as u64 + 1);
    (old == 0, cost)
}

/// Steps 2–3 of a steal (requires the lock): read bounds, take the oldest
/// item, advance `top` and release. Returns the stolen item with its wire
/// size, or `None` if the deque was empty (released either way). The payload
/// transfer (step 4) is charged by the caller.
pub fn thief_take(
    m: &mut Machine,
    victim_items: &mut Slab<QueueItem>,
    lay: &SegLayout,
    me: WorkerId,
    victim: WorkerId,
) -> (Option<(QueueItem, usize)>, VTime) {
    debug_assert_ne!(me, victim, "stealing from self");
    // One get covers the adjacent [top, bottom] words.
    let (top, mut cost) = m.get_u64(me, word(lay, victim, DQ_TOP));
    let (bottom, _) = m.get_u64(me, word(lay, victim, DQ_BOTTOM));
    if top == bottom {
        // Empty: release the lock (non-blocking put suffices).
        cost += m.put_u64_nb(me, word(lay, victim, DQ_LOCK), 0);
        return (None, cost);
    }
    let slot = GlobalAddr::new(victim, lay.dq_slot(top));
    let (keyp1, c_entry) = m.get_u64(me, slot);
    let (size, _) = m.get_u64(me, slot.field(1));
    cost += c_entry;
    debug_assert_ne!(keyp1, 0, "stolen ring slot must be live");
    let item = victim_items.take((keyp1 - 1) as u32);
    m.put_u64_nb(me, slot, 0);
    // Release + advance: [lock, top] are adjacent words — one put does both.
    let c_rel = m.put_u64(me, word(lay, victim, DQ_LOCK), 0);
    m.put_u64_nb(me, word(lay, victim, DQ_TOP), top + 1);
    cost += c_rel;
    (Some((item, size as usize)), cost)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{Effect, VThread};
    use crate::policy::{Policy, RunConfig};
    use crate::value::{ThreadHandle, Value};
    use dcs_sim::{profiles, MachineConfig, VTime};

    fn setup() -> (Machine, Slab<QueueItem>, SegLayout) {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, Slab::new(), lay)
    }

    fn body(_: Value, _: &mut crate::frame::TaskCtx) -> Effect {
        Effect::ret(0u64)
    }

    fn child_item(tag: u64) -> QueueItem {
        QueueItem::Child {
            f: body,
            arg: Value::U64(tag),
            handle: ThreadHandle::single(GlobalAddr::new(0, 8 * (tag as u32 + 1))),
        }
    }

    fn cont_item(tid: u64, spawned: GlobalAddr) -> QueueItem {
        QueueItem::Cont {
            th: VThread::new(tid, body, Value::Unit, ThreadHandle::single(GlobalAddr::NULL)),
            spawned_child: spawned,
            since: VTime::ZERO,
        }
    }

    fn tag_of(item: &QueueItem) -> u64 {
        match item {
            QueueItem::Child { arg, .. } => arg.as_u64(),
            QueueItem::Cont { th, .. } => th.tid,
        }
    }

    #[test]
    fn push_pop_is_lifo() {
        let (mut m, mut items, lay) = setup();
        for i in 0..3 {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        assert_eq!(owner_len(&mut m, &lay, 0), 3);
        for i in (0..3).rev() {
            let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
            assert_eq!(tag_of(&it.unwrap()), i);
        }
        let (none, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert!(none.is_none());
        assert!(items.is_empty());
    }

    #[test]
    fn steal_takes_oldest_fifo() {
        let (mut m, mut items, lay) = setup();
        for i in 0..3 {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take(&mut m, &mut items, &lay, 1, 0);
        let (item, size) = got.unwrap();
        assert_eq!(tag_of(&item), 0, "steals take the oldest task");
        assert_eq!(size, item.wire_size());
        // Owner still pops LIFO from the other end.
        let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        assert_eq!(tag_of(&it.unwrap()), 2);
        assert_eq!(owner_len(&mut m, &lay, 0), 1);
    }

    #[test]
    fn owner_blocked_while_thief_holds_lock() {
        let (mut m, mut items, lay) = setup();
        owner_push(&mut m, &mut items, &lay, 0, child_item(7)).unwrap();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        // Victim's own operations observe the lock and must retry.
        assert_eq!(
            owner_pop(&mut m, &mut items, &lay, 0).unwrap_err(),
            Busy
        );
        assert_eq!(
            owner_push(&mut m, &mut items, &lay, 0, child_item(8)).unwrap_err(),
            Busy
        );
        // A second thief fails the lock CAS (= failed steal attempt).
        let (locked2, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(!locked2);
        // After the take releases, the owner proceeds.
        let _ = thief_take(&mut m, &mut items, &lay, 1, 0);
        assert!(owner_pop(&mut m, &mut items, &lay, 0).is_ok());
    }

    #[test]
    fn steal_of_empty_deque_releases() {
        let (mut m, mut items, lay) = setup();
        let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
        assert!(locked);
        let (got, _) = thief_take(&mut m, &mut items, &lay, 1, 0);
        assert!(got.is_none());
        // Lock released: owner can push again.
        assert!(owner_push(&mut m, &mut items, &lay, 0, child_item(0)).is_ok());
    }

    #[test]
    fn pop_parent_matches_only_spawned_child() {
        let (mut m, mut items, lay) = setup();
        let e1 = GlobalAddr::new(0, 0x100);
        let e2 = GlobalAddr::new(0, 0x200);
        owner_push(&mut m, &mut items, &lay, 0, cont_item(1, e1)).unwrap();
        // Wrong entry: no pop.
        let (none, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e2).unwrap();
        assert!(none.is_none());
        assert_eq!(owner_len(&mut m, &lay, 0), 1);
        // Child descriptors never match.
        owner_push(&mut m, &mut items, &lay, 0, child_item(9)).unwrap();
        let (none, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e1).unwrap();
        assert!(none.is_none());
        let _ = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
        // Right entry at the bottom: popped.
        let (some, _) = owner_pop_parent(&mut m, &mut items, &lay, 0, e1).unwrap();
        assert_eq!(tag_of(&some.unwrap()), 1);
        assert_eq!(owner_len(&mut m, &lay, 0), 0);
    }

    #[test]
    fn ring_wraps_after_many_cycles() {
        let (mut m, mut items, lay) = setup();
        let cycles = lay.deque_cap as u64 * 2 + 3;
        for i in 0..cycles {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
            let (it, _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap();
            assert_eq!(tag_of(&it.unwrap()), i);
        }
        assert!(items.is_empty());
    }

    #[test]
    fn steal_then_owner_drain_preserves_all_items() {
        let (mut m, mut items, lay) = setup();
        let n = 10;
        for i in 0..n {
            owner_push(&mut m, &mut items, &lay, 0, child_item(i)).unwrap();
        }
        let mut seen = vec![false; n as usize];
        // Alternate steals and pops until drained.
        loop {
            let (locked, _) = thief_lock(&mut m, &lay, 1, 0);
            assert!(locked);
            if let (Some((item, _)), _) = thief_take(&mut m, &mut items, &lay, 1, 0) {
                seen[tag_of(&item) as usize] = true;
            } else {
                break;
            }
            if let (Some(item), _) = owner_pop(&mut m, &mut items, &lay, 0).unwrap() {
                seen[tag_of(&item) as usize] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "no task lost or duplicated");
    }
}
