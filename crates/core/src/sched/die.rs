//! The DIE protocols: Fig. 4 greedy (work-first fast path, FAA race,
//! joiner migration), the §V-D multi-consumer producer, Fig. 3 stalling,
//! and the child-stealing variants.

use super::*;

impl Worker {
    // ------------------------------------------------------------------
    // DIE
    // ------------------------------------------------------------------

    pub(crate) fn die(&mut self, now: VTime, world: &mut World, v: Value) -> Result<VTime, Busy> {
        let e = self.cur.as_ref().expect("die without thread").own;

        // Root thread: publish the result and raise the termination flag.
        if e.entry.is_null() {
            let mut th = self.cur.take().expect("checked");
            Self::mark_lineage_done(world, &th);
            self.retire_thread(world, &mut th);
            world.rt.watch_death(th.tid, now);
            world.rt.result = Some(v);
            world.rt.stats.threads_died += 1;
            world.m.set_done();
            self.state = WState::Idle;
            self.set_busy(world, now, false);
            return Ok(world.m.local_op(self.me));
        }

        match self.policy {
            Policy::ContGreedy => self.die_greedy(now, world, e, v),
            Policy::ContStalling => self.die_stalling_cont(now, world, e, v),
            Policy::ChildFull | Policy::ChildRtc => self.die_child(now, world, e, v),
        }
    }

    /// Fig. 4 DIE (single-consumer) and the §V-D producer (multi-consumer).
    pub(crate) fn die_greedy(
        &mut self,
        now: VTime,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
    ) -> Result<VTime, Busy> {
        // Work-first fast path: try to pop the parent before racing. This
        // observes the deque lock, so Busy can propagate before any side
        // effect.
        let (popped, mut cost) = match self.dq_pop_parent(world, e.entry) {
            Ok(x) => x,
            Err(DequeError::Busy) => return Err(Busy),
            Err(DequeError::Dead(d)) => {
                // Degrade: no parent found; the slow-path race still decides
                // the join correctly.
                self.deque_violation(world, self.me, &d);
                (None, d.cost)
            }
        };

        world.rt.stats.note_die(e.entry.to_u64(), now);
        let mut th = self.cur.take().expect("die without thread");
        Self::mark_lineage_done(world, &th);
        self.retire_thread(world, &mut th);
        world.rt.watch_death(th.tid, now);

        let parent = match popped {
            Some(QueueItem::Cont { th: parent, .. }) => Some(parent),
            Some(_) => unreachable!("pop_parent only yields parents"),
            None => None,
        };

        if e.consumers == 1 {
            if let Some(parent) = parent {
                // Parent not stolen: plain flag write, no atomics
                // (Fig. 4 l. 30).
                debug_assert_eq!(
                    e.entry.rank as usize, self.me,
                    "work-first pop implies the entry is local"
                );
                cost += self.publish_retval_and_flag(world, e, v, 1, now + cost);
                world.rt.stats.die_fast += 1;
                // The parent's stack is directly below the dying child's in
                // the uni-address region: resuming it "in the same way as an
                // ordinary subroutine returns" (§II-D) costs a light restore.
                cost += world.m.ctx_restore(self.me);
                // `parent` resumes right at the spawn point; its Join will
                // read the flag we just set.
                self.start_thread(world, now, parent);
                return Ok(cost);
            }
            // Slow path: race on the flag (Fig. 4 l. 33).
            let (old, c) = self.publish_retval_and_faa(world, e, v.clone(), 1, now + cost);
            cost += c;
            if old == 0 {
                // Won: the joiner has not suspended yet (or not arrived);
                // it will find flag != 0 and finish on its own.
                world.rt.stats.die_won += 1;
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost)
            } else {
                // Lost: the joiner is suspended; migrate and resume it here.
                world.rt.stats.die_lost += 1;
                let c2 = self.migrate_and_resume_joiner(now, world, e, v);
                Ok(cost + c2)
            }
        } else {
            // Multi-consumer producer (§V-D): other consumers race on the
            // entry regardless of the parent pop, so the DONE publication
            // must always be atomic. The popped parent, if any, is the
            // work-first choice of what to run next.
            if parent.is_some() {
                world.rt.stats.die_fast += 1;
            }
            let c2 = self.die_multi(now, world, e, v, parent, now + cost);
            Ok(cost + c2)
        }
    }

    /// Fetch the suspended joiner recorded in `e.ctxloc`, resume it here with
    /// value `v`, and complete its join (retval get + entry free are charged
    /// as the resumed continuation would perform them, Fig. 4 l. 51–52).
    pub(crate) fn migrate_and_resume_joiner(
        &mut self,
        now: VTime,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
    ) -> VTime {
        let (ctxloc, mut cost) = world.m.get_u64(self.me, e.entry.field(E_CTXLOC));
        let c_addr = GlobalAddr::from_u64(ctxloc);
        debug_assert!(!c_addr.is_null(), "loser must find a saved context");
        let (saved, c1) = read_saved_ctx(&mut world.m, self.me, c_addr);
        cost += c1;
        if self.kills && world.m.is_dead(saved.owner, now) {
            // The suspended joiner died with its host. Resuming the stale
            // copy would run it alongside its lineage replay (double
            // execution); drop the hand-off instead — the replayed joiner
            // re-runs and re-joins against the (mirrored) entry words. The
            // value and entry leak, which armed runs tolerate.
            self.state = WState::Idle;
            self.set_busy(world, now, false);
            return cost;
        }
        // Under a message detector the owner can be evicted while ALIVE:
        // its saved slab may already be gone (self-fenced) or its lineage
        // drained to a replayer before it self-fences. Either way a replay
        // re-executes this joiner, so the saved copy is stale — claim it
        // only if both the slab entry and the lineage record are still
        // ours, and otherwise drop the hand-off like the dead-owner case.
        // (Oracle runs never get here with either condition true: a drained
        // lineage implies a confirmed death, which `is_dead` caught above.)
        let mut th = if self.kills {
            match world.rt.per[saved.owner].saved.try_take(saved.slot) {
                Some(th) => th,
                None => {
                    self.state = WState::Idle;
                    self.set_busy(world, now, false);
                    return cost;
                }
            }
        } else {
            world.rt.per[saved.owner].saved.take(saved.slot)
        };
        if self.kills && !self.rekey_lineage(world, &mut th) {
            // A confirmer drained the evicted owner's lineage and a replay
            // already re-executes this joiner. Undo the slab claim's memory
            // accounting and drop the stale copy.
            if self.scheme == AddressScheme::Uni && th.home.is_some() {
                world.rt.per[saved.owner].evac.restore(saved.stack_bytes as u64);
            }
            self.state = WState::Idle;
            self.set_busy(world, now, false);
            return cost;
        }
        if self.scheme == AddressScheme::Uni && th.home.is_some() {
            world.rt.per[saved.owner].evac.restore(saved.stack_bytes as u64);
        }
        cost += world.m.get_bulk(self.me, saved.owner, saved.stack_bytes);
        // Free the saved-context record (a remote object of its owner).
        cost += free_robj(
            &mut world.m,
            &mut world.rt.per[saved.owner],
            &self.lay,
            self.strategy,
            self.me,
            c_addr,
            SAVED_CTX_BYTES,
        );
        // Close the outstanding-join interval while the die-time record is
        // still alive, then finish the JOIN as the resumed continuation
        // would: fetch retval, free E. The joiner is actually running again
        // only after the migration costs accrued in this step.
        let (_stored, c2) = self.get_retval(world, e);
        cost += c2;
        cost += self.free_entry_here_after_close(world, e, &mut th, now + cost);
        self.claim_home(world, &mut th);
        th.supply(v);
        cost += world.m.ctx_switch(self.me);
        self.start_thread(world, now, th);
        cost
    }

    /// Close the suspension at `resumed_at`, then free the entry (order
    /// matters: the die-time record must outlive the interval computation).
    pub(crate) fn free_entry_here_after_close(
        &mut self,
        world: &mut World,
        e: ThreadHandle,
        th: &mut VThread,
        resumed_at: VTime,
    ) -> VTime {
        self.close_suspension(world, th, resumed_at);
        self.free_entry_here(world, e)
    }

    /// §V-D multi-consumer producer: publish retval + DONE, resume one
    /// thread here (the work-first popped parent when available, else the
    /// first waiter), push the rest into the local deque as ready
    /// continuations. `at` is the caller's absolute instant on entry.
    pub(crate) fn die_multi(
        &mut self,
        now: VTime,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
        parent: Option<VThread>,
        at: VTime,
    ) -> VTime {
        let (old, mut cost) =
            self.publish_retval_and_faa(world, e, v.clone(), DONE_BIT, at);
        let waiters = (old & (DONE_BIT - 1)) as u32;
        debug_assert!(waiters <= e.consumers);
        let mut resumed: Vec<VThread> = Vec::with_capacity(waiters as usize);
        // Pipelined: the per-waiter stack copies are independent payloads
        // from distinct saved contexts — collect them and post the whole
        // sweep under one fence instead of paying each round trip serially.
        let mut sweep: Vec<(usize, usize)> = Vec::new();
        if waiters > 0 {
            // One bulk get covers the ctxloc slot array.
            cost += world
                .m
                .get_bulk(self.me, e.entry.rank as usize, 8 * waiters as usize);
            for i in 0..waiters {
                let (ctxloc, _) = world.m.get_u64(self.me, e.entry.field(EM_CTX0 + i));
                let c_addr = GlobalAddr::from_u64(ctxloc);
                let (saved, c1) = read_saved_ctx(&mut world.m, self.me, c_addr);
                cost += c1;
                if self.kills && world.m.is_dead(saved.owner, now) {
                    // Same double-execution guard as the single-consumer
                    // migrate path: the dead waiter's lineage replay
                    // re-joins the future on its own.
                    continue;
                }
                let mut th = world.rt.per[saved.owner].saved.take(saved.slot);
                if self.scheme == AddressScheme::Uni && th.home.is_some() {
                    world.rt.per[saved.owner].evac.restore(saved.stack_bytes as u64);
                }
                if self.fabric == FabricMode::Pipelined {
                    sweep.push((saved.owner, saved.stack_bytes));
                } else {
                    cost += world.m.get_bulk(self.me, saved.owner, saved.stack_bytes);
                }
                cost += free_robj(
                    &mut world.m,
                    &mut world.rt.per[saved.owner],
                    &self.lay,
                    self.strategy,
                    self.me,
                    c_addr,
                    SAVED_CTX_BYTES,
                );
                th.supply(v.clone());
                // The waiter became ready *now* (the producer's die). Stamp
                // that as the suspension's ready time so the interval stays
                // correct even after the entry is freed and the waiter sits
                // in the deque as a ready continuation.
                if let Some((at, entry)) = th.suspension {
                    th.suspension = Some((at.max(now), entry));
                }
                self.claim_home(world, &mut th);
                if self.kills {
                    // The waiter migrates here: its lineage record follows.
                    let fresh = self.rekey_lineage(world, &mut th);
                    debug_assert!(fresh, "saved waiter's record cannot be claimed while its owner lives");
                }
                resumed.push(th);
            }
            // Account the hand-offs on the consumed counter so the last
            // consumer (possibly one of these waiters' producers) frees.
            // Only the waiters actually resumed count: a dead waiter's
            // consume never happens (its replay re-arrives instead), so
            // under kills the entry may leak rather than free early.
            let handed = resumed.len() as u64;
            let (c_old, c2) =
                world
                    .m
                    .fetch_add_u64(self.me, e.entry.field(EM_CONSUMED), handed);
            cost += c2;
            if c_old + handed == e.consumers as u64 {
                cost += self.free_entry_here(world, e);
            }
            if !sweep.is_empty() {
                // Post the batched stack copies only after all blocking
                // traffic to the saved owners (free_robj above) is done, so
                // the in-order clamp never penalises a blocking wrapper.
                let post_at = at + cost;
                // The whole sweep rides one doorbell: the first copy pays
                // the full injection, the rest the chained fraction.
                world.m.chain_begin(self.me);
                for &(owner, bytes) in &sweep {
                    world.m.post_get_bulk(self.me, owner, bytes, post_at);
                }
                world.m.chain_end(self.me);
                let fin = world.m.fence(self.me, post_at);
                cost += fin.saturating_sub(post_at);
            }
        }
        // Resume one immediately (greedy), enqueue the rest as stealable
        // ready continuations. The popped parent takes precedence: running
        // it preserves the serial order (work-first principle).
        let mut first: Option<VThread> = parent;
        for th in resumed {
            if first.is_none() {
                first = Some(th);
            } else {
                let push = self.dq_push(
                    world,
                    QueueItem::Cont {
                        th,
                        spawned_child: GlobalAddr::NULL,
                        since: now,
                    },
                );
                // The deque lock was free when DIE began (this whole DIE is
                // one atomic step), so the push cannot observe Busy.
                cost += push.expect("deque free within atomic step");
            }
        }
        match first {
            Some(th) => {
                cost += world.m.ctx_switch(self.me);
                self.start_thread(world, now, th);
            }
            None => {
                self.state = WState::Idle;
                self.set_busy(world, now, false);
            }
        }
        cost
    }

    /// Fig. 3 DIE: put retval, set flag, pop the local queue, resume or
    /// return to the scheduler.
    pub(crate) fn die_stalling_cont(
        &mut self,
        now: VTime,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
    ) -> Result<VTime, Busy> {
        // Pop first (it can observe the deque lock under CAS-lock, and
        // Busy must propagate before any side effects).
        let (popped, mut cost) = match self.dq_pop(world) {
            Ok(x) => x,
            Err(DequeError::Busy) => return Err(Busy),
            Err(DequeError::Dead(d)) => {
                // Degrade: treat as an empty pop and return to the scheduler.
                self.deque_violation(world, self.me, &d);
                (None, d.cost)
            }
        };
        let flag_val = if e.consumers == 1 { 1 } else { DONE_BIT };
        cost += self.publish_retval_and_flag(world, e, v, flag_val, now + cost);
        world.rt.stats.note_die(e.entry.to_u64(), now);
        let mut th = self.cur.take().expect("die without thread");
        Self::mark_lineage_done(world, &th);
        self.retire_thread(world, &mut th);
        world.rt.watch_death(th.tid, now);
        match popped {
            Some(QueueItem::Cont { th: next, .. }) => {
                cost += world.m.ctx_restore(self.me);
                self.start_thread(world, now, next);
            }
            Some(QueueItem::Child { .. }) => {
                unreachable!("stalling continuation runs have no child descriptors")
            }
            None => {
                self.state = WState::Idle;
                self.set_busy(world, now, false);
            }
        }
        Ok(cost)
    }

    /// Child-stealing DIE: put retval + flag. ChildRtc additionally re-checks
    /// the join buried directly below (it can resume only now).
    pub(crate) fn die_child(
        &mut self,
        now: VTime,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
    ) -> Result<VTime, Busy> {
        let dead_parent = self
            .kills
            .then(|| world.m.dead_guard(self.me, e.entry.rank as usize, now))
            .flatten();
        let mut cost;
        if let Some(c_dead) = dead_parent {
            // Orphaned completion: the entry lives on a killed worker's
            // segment, so the retval/flag puts fail fast at one RTT and are
            // dropped. Nobody can ever join this entry — the parent died
            // with it, and the subtree replay that re-creates the parent
            // re-creates this task against a fresh entry.
            cost = c_dead;
        } else {
            let flag_val = if e.consumers == 1 { 1 } else { DONE_BIT };
            cost = self.publish_retval_and_flag(world, e, v, flag_val, now);
        }
        world.rt.stats.note_die(e.entry.to_u64(), now);
        let mut th = self.cur.take().expect("die without thread");
        // Completion reached the lineage: this record must never replay.
        Self::mark_lineage_done(world, &th);
        self.retire_thread(world, &mut th);
        world.rt.watch_death(th.tid, now);

        if self.policy == Policy::ChildRtc {
            if let Some(top) = self.nest.last() {
                let h = top.handle;
                let (flag, c) = world.m.get_u64(self.me, h.entry.field(E_FLAG));
                cost += c;
                let done = if h.consumers == 1 {
                    flag != 0
                } else {
                    flag & DONE_BIT != 0
                };
                if done {
                    // Unbury: complete the join below (plain function-return
                    // semantics, no context switch).
                    let Nested { mut th, handle } =
                        self.nest.pop().expect("checked non-empty");
                    self.close_suspension(world, &mut th, now);
                    let (jv, c2) = self.join_complete_fast(world, handle);
                    cost += c2;
                    th.supply(jv);
                    self.start_thread(world, now, th);
                    return Ok(cost);
                }
            }
        }
        self.state = WState::Idle;
        self.set_busy(world, now, false);
        Ok(cost)
    }

}
