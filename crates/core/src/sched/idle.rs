//! The idle loop: termination, local pops, victim selection, the
//! cross-step steal protocol, wait-queue/nest polling, finalization.

use super::*;

impl Worker {
    // ------------------------------------------------------------------
    // victim blacklisting (fault-injection resilience)
    // ------------------------------------------------------------------

    /// Decay half-life of a victim's misbehaviour score.
    const BL_HALF_LIFE: VTime = VTime::us(200);
    /// One fault's worth of score, Q32.32 fixed point.
    const BL_ONE: u64 = 1 << 32;
    /// Decayed score above which a victim is skipped (3 faults' worth).
    const BL_THRESHOLD: u64 = 3 * Self::BL_ONE;
    /// Sentinel for a permanent entry (confirmed-dead victim): immune to
    /// decay and skipped outright by victim selection.
    const BL_FOREVER: u64 = u64::MAX;

    /// Integer-shift exponential decay: one halving per *fully elapsed*
    /// half-life. Deterministic across hosts and `--jobs` widths — no f64
    /// `powf` in the engine's hot path.
    fn bl_decayed(score: u64, at: VTime, now: VTime) -> u64 {
        if score == Self::BL_FOREVER {
            // Permanent entry (confirmed-dead victim): decay never clears it.
            return score;
        }
        let halves = now.saturating_sub(at).as_ns() / Self::BL_HALF_LIFE.as_ns();
        if halves >= 64 {
            0
        } else {
            score >> halves
        }
    }

    /// Attribute `faults` transient fabric faults observed while stealing
    /// from `victim`. Allocates the blacklist on first use, so fault-free
    /// runs never touch it (and stay bit-identical).
    pub(crate) fn note_victim_faults(&mut self, victim: WorkerId, faults: u64, now: VTime) {
        if faults == 0 {
            return;
        }
        let bl = self
            .blacklist
            .get_or_insert_with(|| Box::new(Blacklist::new()));
        let e = bl.entries.entry(victim).or_insert((0, VTime::ZERO));
        if e.0 == Self::BL_FOREVER {
            // Permanent: a transient-fault bump must not disturb (or
            // overflow) the sentinel.
            return;
        }
        e.0 = Self::bl_decayed(e.0, e.1, now)
            .saturating_add(faults.saturating_mul(Self::BL_ONE))
            .min(Self::BL_FOREVER - 1);
        e.1 = now;
    }

    /// Blacklist `victim` permanently: a confirmed-dead worker never comes
    /// back, so its score is pinned at infinity (immune to decay).
    pub(crate) fn blacklist_forever(&mut self, victim: WorkerId, now: VTime) {
        let bl = self
            .blacklist
            .get_or_insert_with(|| Box::new(Blacklist::new()));
        bl.entries.insert(victim, (Self::BL_FOREVER, now));
        bl.fallback = None; // the permanent set changed
    }

    /// Drop `victim`'s blacklist entry entirely (permanent or not): the
    /// "confirmed dead" verdict was revoked — a falsely-suspected worker's
    /// delayed beats landed, or an evicted worker rejoined as a fresh
    /// incarnation — so it is a first-class steal target again.
    pub(crate) fn blacklist_clear(&mut self, victim: WorkerId) {
        if let Some(bl) = &mut self.blacklist {
            if bl.entries.remove(&victim).is_some_and(|e| e.0 == Self::BL_FOREVER) {
                bl.fallback = None; // the permanent set changed
            }
        }
    }

    /// Is `victim` permanently blacklisted (confirmed dead)? Permanent
    /// entries must never be returned by victim selection: probing one is
    /// a guaranteed wasted round trip, forever.
    pub(crate) fn victim_blocked_forever(&self, victim: WorkerId) -> bool {
        match &self.blacklist {
            Some(bl) => bl.entries.get(&victim).is_some_and(|e| e.0 == Self::BL_FOREVER),
            None => false,
        }
    }

    /// Is `victim` currently blacklisted?
    pub(crate) fn victim_blocked(&self, victim: WorkerId, now: VTime) -> bool {
        match &self.blacklist {
            Some(bl) => bl
                .entries
                .get(&victim)
                .is_some_and(|&(score, at)| Self::bl_decayed(score, at, now) > Self::BL_THRESHOLD),
            None => false,
        }
    }

    /// Pick a victim, redrawing (bounded) past blacklisted choices. With no
    /// blacklist allocated this is exactly one [`Self::pick_victim`] draw.
    ///
    /// The bounded redraw may exhaust its budget on a *transiently*
    /// blacklisted victim — that draw stands (the score decays, and an
    /// occasional probe of a flaky peer is how it earns its way back). A
    /// *permanent* (confirmed-dead) entry must never be returned: when the
    /// redraws end on one, fall back to the cheapest (topology-nearest)
    /// non-permanent victim instead. Only when every peer is permanently
    /// blacklisted does the doomed draw escape, and the caller's
    /// `dead_guard` turns it into a fail-fast RTT.
    pub(crate) fn select_victim(&mut self, now: VTime, world: &mut World) -> WorkerId {
        let mut victim = self.pick_victim(&world.m);
        if self.blacklist.is_none() {
            return victim;
        }
        for _ in 0..3 {
            if !self.victim_blocked(victim, now) {
                return victim;
            }
            world.rt.stats.blacklist_skips += 1;
            victim = self.pick_victim(&world.m);
        }
        if !self.victim_blocked_forever(victim) {
            return victim;
        }
        world.rt.stats.blacklist_skips += 1;
        // Cheapest-live fallback, cached: the answer is a pure function of
        // the permanent-blacklist set and the (static) topology, so the
        // O(W) sweep runs once per death/revocation — not once per draw,
        // which starved a sole survivor of 10⁵ dead peers.
        let cached = self.blacklist.as_ref().and_then(|bl| bl.fallback);
        let fallback = match cached {
            Some(f) => f,
            None => {
                let topo = world.m.topology();
                let mut best: Option<(f64, WorkerId)> = None;
                for v in 0..self.n {
                    if v == self.me || self.victim_blocked_forever(v) {
                        continue;
                    }
                    let f = topo.factor(self.me, v);
                    if best.is_none_or(|(bf, _)| f < bf) {
                        best = Some((f, v));
                    }
                }
                let f = best.map(|(_, v)| v);
                if let Some(bl) = &mut self.blacklist {
                    bl.fallback = Some(f);
                }
                f
            }
        };
        fallback.unwrap_or(victim)
    }

    // ------------------------------------------------------------------
    // IDLE loop
    // ------------------------------------------------------------------

    /// Pick a steal victim per the configured policy. Node-restricted
    /// choices fall back to uniform when the caller's node has no other
    /// workers.
    pub(crate) fn pick_victim(&mut self, world: &Machine) -> WorkerId {
        let topo = world.topology();
        let pick_local = |rng: &mut SimRng, me: usize, n: usize| -> Option<WorkerId> {
            let size = topo.node_size()?;
            let node = topo.node_of(me);
            let lo = node * size;
            let hi = ((node + 1) * size).min(n);
            if hi - lo < 2 {
                return None;
            }
            let mut v = lo + rng.below((hi - lo - 1) as u64) as usize;
            if v >= me {
                v += 1;
            }
            Some(v)
        };
        match self.victim_policy {
            VictimPolicy::Uniform => self.rng.victim(self.n, self.me),
            VictimPolicy::Locality { p_local } => {
                if self.rng.unit_f64() < p_local {
                    if let Some(v) = pick_local(&mut self.rng, self.me, self.n) {
                        return v;
                    }
                }
                self.rng.victim(self.n, self.me)
            }
            VictimPolicy::Hierarchical { local_tries } => {
                if self.fail_streak < local_tries {
                    if let Some(v) = pick_local(&mut self.rng, self.me, self.n) {
                        return v;
                    }
                }
                self.rng.victim(self.n, self.me)
            }
        }
    }

    // ------------------------------------------------------------------
    // fail-stop recovery (kill plans only)
    // ------------------------------------------------------------------

    /// Detector-registry scan: confirm newly-expired peers, blacklist them,
    /// and — first confirmer of each incarnation only — evict the peer
    /// (epoch bump) and move its unfinished lineage records into the shared
    /// replay pool.
    ///
    /// Under the oracle detector a confirmation is ground truth and the
    /// latch never revokes. Under the message detector it is a *suspicion*
    /// (no visible heartbeat for a lease): delayed beats landing later
    /// un-confirm the peer, and the un-latch branch clears the permanent
    /// blacklist entry so the falsely-suspected (or rejoined) worker is
    /// stealable again. The eviction itself stands either way — the epoch
    /// bump already invalidated the old incarnation's verbs, and the peer
    /// self-fences and rejoins at its next step.
    ///
    /// Work is O(detector status changes), not O(workers) per poll: the
    /// machine's candidate feed names exactly the peers whose registry
    /// status may have flipped since this worker's last scan, and only
    /// those are re-examined. Candidates are processed in increasing id
    /// order — the same relative order the former full `0..n` sweep
    /// visited them in — so every golden stays byte-identical.
    pub(crate) fn fail_stop_scan(&mut self, now: VTime, world: &mut World) {
        let mut cands: Vec<WorkerId> = Vec::new();
        world.m.death_candidates(&mut self.death_cursor, now, &mut cands);
        if cands.is_empty() {
            return;
        }
        cands.sort_unstable();
        cands.dedup();
        for d in cands {
            if d == self.me {
                continue;
            }
            let confirmed_now = world.m.confirmed_dead(d, now);
            if self.confirmed.contains(&d) {
                if !confirmed_now {
                    // Revoked: the peer's beats resumed (false suspicion
                    // cleared, or a fresh incarnation rejoined).
                    self.confirmed.remove(&d);
                    self.blacklist_clear(d);
                    world.rt.watch_unsuspect(d);
                }
                continue;
            }
            if !confirmed_now {
                continue;
            }
            self.confirmed.insert(d);
            self.blacklist_forever(d, now);
            if world.m.suspicion_possible() {
                world.rt.watch_suspect(d);
            }
            // Exactly-once per incarnation: the first confirmer of
            // `(d, epoch)` evicts and drains; racing confirmers of the same
            // incarnation observe the claim and stand down. (ChildFull
            // records no lineage, so its drain is vacuous.)
            let epoch = world.m.epoch_of(d);
            if world.rt.evictions.first_claim(evict_key(d, epoch)) {
                world.m.evict(d);
                for (i, rec) in world.rt.lineage.log(d).iter().enumerate() {
                    if !rec.done.is_done() {
                        world.rt.replay_pool.push_back((d, i));
                    }
                }
            }
        }
    }

    /// Re-adopt one lost thread from the replay pool. The record is
    /// superseded (marked done) and re-recorded under this worker, so a
    /// second kill hitting the replayer is itself recoverable. Returns
    /// `None` when nothing (relevant) is pooled.
    pub(crate) fn try_replay(&mut self, now: VTime, world: &mut World) -> Option<Step> {
        loop {
            let (w, i) = world.rt.replay_pool.pop_front()?;
            let rec = world.rt.lineage.rec(w, i);
            if rec.done.is_done() {
                // Completed before the kill: the entry flag is already
                // visible to the waiting parent — replaying would run the
                // task's effect twice.
                continue;
            }
            let is_root = rec.handle.entry.is_null();
            if is_root && world.rt.result.is_some() {
                // The root published its result before its holder died;
                // termination is already racing in — nothing to re-elect.
                continue;
            }
            if !is_root
                && !self.policy.is_cont()
                && world.m.is_dead(rec.handle.entry.rank as usize, now)
            {
                // ChildRtc ties a task to the parent frame that owns its
                // entry: if that parent died too, the ancestor subtree
                // that re-creates it (and this task) replays from its own
                // record instead. Continuation records always replay —
                // after a migration the joiner may be alive anywhere, and
                // the entry words stay readable on the buddy mirror.
                continue;
            }
            let (f, arg, handle) = (rec.f, rec.arg.clone(), rec.handle);
            // Claiming the record settles the original incarnation's fate:
            // it died with its worker and can never complete — retire it so
            // the fresh-id replay is the only live copy the oracles track.
            world.rt.watch_retire(rec.tid);
            world.rt.lineage.rec_mut(w, i).done.set();
            let tid = world.rt.fresh_tid();
            let mut th = VThread::new(tid, f, arg.clone(), handle);
            th.replay_rec = Some(self.record_lineage(world, tid, f, arg, handle));
            if self.policy.is_cont() {
                // Re-materialized continuations (root included) need a
                // stack home in this worker's region.
                let slot_len = world.rt.cfg.stack_slot;
                th.home = Some(self.place_stack(world, None, slot_len));
            }
            world.rt.stats.tasks_replayed += 1;
            let cost = world.m.ctx_restore(self.me);
            self.start_thread(world, now, th);
            world.rt.watch_progress(now);
            return Some(Step::Yield(cost));
        }
    }

    /// Blocking-fabric checkpoint put of a stolen continuation's header to
    /// the thief's buddy (the pipelined take posts the same put alongside
    /// the steal's other verbs instead). The put is fire-and-forget: the
    /// mirror only has to land before a lease expiry — microseconds after
    /// the split — so the thief pays the injection, never a round trip.
    pub(crate) fn mirror_split(&mut self, world: &mut World, now: VTime) -> VTime {
        match self.buddy(&world.m, now) {
            Some(b) => {
                world.rt.stats.ckpt_puts += 1;
                world
                    .m
                    .post_put_bulk_unsignaled(self.me, b, Self::CKPT_HDR_BYTES)
            }
            None => VTime::ZERO,
        }
    }

    pub(crate) fn step_idle(&mut self, now: VTime, world: &mut World) -> Step {
        // Termination: the root has completed and published the flag.
        if world.m.is_done() {
            self.finalize(world, now);
            return Step::Halt;
        }
        world.rt.watch_stall(now);
        if self.kills {
            self.fail_stop_scan(now, world);
            if self.policy != Policy::ChildFull {
                if let Some(step) = self.try_replay(now, world) {
                    return step;
                }
            }
        }
        // 1. Local pop.
        match self.dq_pop(world) {
            Err(DequeError::Busy) => {
                self.break_dead_lock(now, world);
                let cost = world.m.local_op(self.me);
                if self.may_park(world) {
                    // Same lock-spin park as `step_run`'s Busy arm; the
                    // done flag is re-checked on wake (`set_done` wakes all
                    // parked workers), so termination is never missed.
                    world
                        .m
                        .park_on_own_word(self.me, self.lay.dq_word(DQ_LOCK), cost, Self::SPIN_CHARGE);
                    Step::Park
                } else {
                    Step::Yield(cost)
                }
            }
            Err(DequeError::Dead(d)) => {
                self.deque_violation(world, self.me, &d);
                Step::Yield(d.cost)
            }
            Ok((Some(item), cost)) => {
                let c2 = self.adopt_item(now, world, item, None);
                Step::Yield(cost + c2)
            }
            Ok((None, cost)) => {
                // 2. Steal (if anybody to steal from).
                if self.n >= 2 {
                    if self.multi_steal >= 2 {
                        return self.step_idle_multi(now, world, cost);
                    }
                    let victim = self.select_victim(now, world);
                    if self.kills {
                        if let Some(c_dead) = world.m.dead_guard(self.me, victim, now) {
                            // Fail-fast verb against a dead victim: one RTT,
                            // a failed steal, and a blacklist bump so the
                            // selector stops drawing it even before the
                            // lease confirms the death.
                            self.note_victim_faults(victim, 1, now);
                            world.rt.stats.steal_failed();
                            self.fail_streak += 1;
                            let c_wait = self.poll_blocked(now, world);
                            return Step::Yield(cost + c_dead + c_wait);
                        }
                    }
                    // Drop fault counts accrued before this attempt so the
                    // post-attempt drain attributes only this victim's
                    // faults.
                    let _ = world.m.take_faults(self.me);
                    let vepoch = world.m.epoch_of(victim);
                    if self.protocol == Protocol::CasLock {
                        // Step 1 of the CAS-lock steal: take the lock. The
                        // lock word encodes our rank *and* epoch, so the
                        // victim can break it if we are evicted mid-steal.
                        let (locked, c_lock) =
                            thief_lock_epoch(&mut world.m, &self.lay, self.me, victim, self.my_epoch);
                        let faults = world.m.take_faults(self.me);
                        self.note_victim_faults(victim, faults, now);
                        if locked {
                            self.state = WState::StealTake {
                                victim,
                                t0: now,
                                bounds: None,
                                vepoch,
                            };
                            return Step::Yield(cost + c_lock);
                        }
                        world.rt.stats.steal_failed();
                        self.fail_streak += 1;
                        let c_wait = self.poll_blocked(now, world);
                        return Step::Yield(cost + c_lock + c_wait);
                    }
                    // Lock-free / fence-free step 1: a plain bounds read
                    // (one span get, no lock, no atomic). The claim runs
                    // next step, leaving the real protocols' race window
                    // open between the two.
                    let ((top, bottom), c_bounds) =
                        thief_read_bounds(&mut world.m, &self.lay, self.me, victim);
                    let faults = world.m.take_faults(self.me);
                    self.note_victim_faults(victim, faults, now);
                    // Fence-free `top` is a hint that can momentarily
                    // exceed `bottom`; both families treat that as empty.
                    if top < bottom {
                        self.state = WState::StealClaim {
                            victim,
                            top,
                            t0: now,
                            vepoch,
                        };
                        return Step::Yield(cost + c_bounds);
                    }
                    world.rt.stats.steal_failed();
                    self.fail_streak += 1;
                    let c_wait = self.poll_blocked(now, world);
                    return Step::Yield(cost + c_bounds + c_wait);
                }
                // Single worker: only blocked local work can make progress.
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
        }
    }

    /// Multi-steal probe ring (`--multi-steal K`, K ≥ 2): instead of paying
    /// a full round trip per victim per miss, keep steal probes on up to K
    /// distinct victims in flight at once and commit the first (in ring
    /// order) that lands with work.
    ///
    /// Per `--protocol` family the probe is:
    ///
    /// * **CAS-lock** — a doorbell-chained pair per victim: the lock CAS
    ///   and the `[top, bottom]` span get, posted back to back on the
    ///   victim's QP. Issuing the bounds read before the CAS outcome is
    ///   known is sound — gets have no memory effects, and same-QP
    ///   in-order retirement lands the bounds after the CAS; a *won* CAS
    ///   freezes the bounds until release, so the winner's take step
    ///   reuses them (one small-get round trip saved). A won-but-unused
    ///   lock (ring order lost, or empty deque) is always released
    ///   immediately with an unsignaled put.
    /// * **lock-free / fence-free** — one chained bounds span get per
    ///   victim; losers' reads are simply dropped (nothing to cancel).
    ///   The winner proceeds through the ordinary [`WState::StealClaim`]
    ///   step, so a fence-free ticket is claimed for the ring's single
    ///   winner at most — and the shared ClaimSet arbitrates races with
    ///   rival thieves exactly as at K = 1.
    ///
    /// Blocking and pipelined fabrics issue the identical verb sequence in
    /// the identical order (memory effects are eager at post), so both
    /// modes reach the same answers; only the charged time differs —
    /// blocking sums the round trips, pipelined fences the overlapped
    /// chain.
    fn step_idle_multi(&mut self, now: VTime, world: &mut World, mut cost: VTime) -> Step {
        let k = self.multi_steal.min(self.n - 1);
        let mut victims: Vec<WorkerId> = Vec::with_capacity(k);
        for _ in 0..k {
            let v = self.select_victim(now, world);
            if !victims.contains(&v) {
                victims.push(v);
            }
        }
        // Dead victims fail fast (one guard RTT each, counted as failed
        // steals) and leave the ring before any probe verb is issued.
        let mut ring: Vec<WorkerId> = Vec::with_capacity(victims.len());
        for &v in &victims {
            if self.kills {
                if let Some(c_dead) = world.m.dead_guard(self.me, v, now) {
                    self.note_victim_faults(v, 1, now);
                    world.rt.stats.steal_failed();
                    self.fail_streak += 1;
                    cost += c_dead;
                    continue;
                }
            }
            ring.push(v);
        }
        if ring.is_empty() {
            let c_wait = self.poll_blocked(now, world);
            return Step::Yield(cost + c_wait);
        }
        // Drop fault counts accrued before the probes so the per-victim
        // drains below attribute only each victim's own faults.
        let _ = world.m.take_faults(self.me);
        // Probe every ring victim inside one doorbell chain.
        let mut probes: Vec<(WorkerId, bool, u64, u64)> = Vec::with_capacity(ring.len());
        world.m.chain_begin(self.me);
        if self.fabric == FabricMode::Pipelined {
            let posted_at = now + cost;
            let mut posted: Vec<(WorkerId, Option<VerbHandle>, [u64; 2], VerbHandle)> =
                Vec::with_capacity(ring.len());
            for &v in &ring {
                let h_cas = (self.protocol == Protocol::CasLock).then(|| {
                    let lock = GlobalAddr::new(v, self.lay.dq_word(DQ_LOCK));
                    world.m.post_cas_u64(
                        self.me,
                        lock,
                        0,
                        lock_word(self.my_epoch, self.me),
                        posted_at,
                    )
                });
                let (vals, h_bounds) = world.m.post_get_u64_span::<2>(
                    self.me,
                    GlobalAddr::new(v, self.lay.dq_word(DQ_TOP)),
                    posted_at,
                );
                let faults = world.m.take_faults(self.me);
                self.note_victim_faults(v, faults, now);
                posted.push((v, h_cas, vals, h_bounds));
            }
            world.m.chain_end(self.me);
            // Reap at the fence: probes to distinct victims overlap, so
            // the step costs one (chained) probe, not K of them.
            let mut fin_max = posted_at;
            for (v, h_cas, vals, h_bounds) in posted {
                let won = match h_cas {
                    Some(h) => {
                        let (old, fin) = world.m.wait(self.me, h);
                        fin_max = fin_max.max(fin);
                        old == 0
                    }
                    None => true,
                };
                let (_, fin) = world.m.wait(self.me, h_bounds);
                fin_max = fin_max.max(fin);
                probes.push((v, won, vals[0], vals[1]));
            }
            cost = fin_max.saturating_sub(now);
        } else {
            for &v in &ring {
                let mut won = true;
                if self.protocol == Protocol::CasLock {
                    let (locked, c_lock) =
                        thief_lock_epoch(&mut world.m, &self.lay, self.me, v, self.my_epoch);
                    cost += c_lock;
                    won = locked;
                }
                let ((top, bottom), c_bounds) =
                    thief_read_bounds(&mut world.m, &self.lay, self.me, v);
                cost += c_bounds;
                let faults = world.m.take_faults(self.me);
                self.note_victim_faults(v, faults, now);
                probes.push((v, won, top, bottom));
            }
            world.m.chain_end(self.me);
        }
        // Commit the first probe in ring order that landed with work;
        // cancel the rest. The abandon releases ride their own doorbell
        // chain (they are issued back to back once the probe results are
        // in).
        let mut won: Option<(WorkerId, u64, u64)> = None;
        world.m.chain_begin(self.me);
        for (v, locked, top, bottom) in probes {
            if !locked {
                // CAS lost: an ordinary failed attempt.
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                continue;
            }
            let has_work = top < bottom;
            if won.is_none() && has_work {
                won = Some((v, top, bottom));
                continue;
            }
            if self.protocol == Protocol::CasLock {
                // A won-but-unused lock is always released, whether the
                // deque was empty or the ring already committed elsewhere
                // (unsignaled put: injection only, no round trip).
                let lock = GlobalAddr::new(v, self.lay.dq_word(DQ_LOCK));
                cost += world.m.post_put_u64_unsignaled(self.me, lock, 0);
            }
            if has_work {
                // Work was there but the ring committed to an earlier
                // victim: an abandoned attempt, never a latency sample.
                world.rt.stats.steal_abandoned();
            } else {
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
            }
        }
        world.m.chain_end(self.me);
        match won {
            Some((victim, top, bottom)) => {
                // Probes and the commit run inside this one step, so the
                // victim's epoch now is the epoch every probe saw.
                let vepoch = world.m.epoch_of(victim);
                self.state = if self.protocol == Protocol::CasLock {
                    WState::StealTake {
                        victim,
                        t0: now,
                        bounds: Some((top, bottom)),
                        vepoch,
                    }
                } else {
                    WState::StealClaim {
                        victim,
                        top,
                        t0: now,
                        vepoch,
                    }
                };
                Step::Yield(cost)
            }
            None => {
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
        }
    }

    /// Re-poll blocked work after a failed steal attempt: stalling policies
    /// round-robin the wait queue (Fig. 3); ChildRtc re-checks the join
    /// buried at the top of the nest (the scheduler-in-a-loop of a
    /// run-to-completion thread re-reads the flag between tasks).
    pub(crate) fn poll_blocked(&mut self, now: VTime, world: &mut World) -> VTime {
        if self.policy == Policy::ChildRtc {
            return self.poll_nest_top(now, world);
        }
        self.poll_wait_queue(now, world)
    }

    /// ChildRtc: check whether the join buried directly below became ready.
    pub(crate) fn poll_nest_top(&mut self, now: VTime, world: &mut World) -> VTime {
        let Some(top) = self.nest.last() else {
            return VTime::ZERO;
        };
        let h = top.handle;
        let (flag, mut cost) = world.m.get_u64(self.me, h.entry.field(E_FLAG));
        let done = if h.consumers == 1 {
            flag != 0
        } else {
            flag & DONE_BIT != 0
        };
        if done {
            let Nested { mut th, handle } = self.nest.pop().expect("checked non-empty");
            self.close_suspension(world, &mut th, now);
            let (v, c2) = self.join_complete_fast_value(world, handle);
            cost += c2;
            th.supply(v);
            self.start_thread(world, now, th);
        }
        cost
    }

    /// Round-robin check of one wait-queue entry (stalling strategies; runs
    /// after each failed steal attempt, Fig. 3).
    pub(crate) fn poll_wait_queue(&mut self, now: VTime, world: &mut World) -> VTime {
        let Some(Waiting { mut th, handle }) = self.wait_q.pop_front() else {
            return VTime::ZERO;
        };
        // A NULL handle marks a cooperative yield: always ready.
        if handle.entry.is_null() {
            th.supply(Value::Unit);
            let cost = world.m.ctx_switch(self.me);
            self.start_thread(world, now, th);
            return cost;
        }
        let (flag, mut cost) = world.m.get_u64(self.me, handle.entry.field(E_FLAG));
        let done = if handle.consumers == 1 {
            flag != 0
        } else {
            flag & DONE_BIT != 0
        };
        if done {
            self.close_suspension(world, &mut th, now);
            let (v, c2) = self.join_complete_fast_value(world, handle);
            cost += c2;
            if self.policy == Policy::ContStalling && self.scheme == AddressScheme::Uni {
                if th.home.is_some() {
                    world.rt.per[self.me]
                        .evac
                        .restore(th.stack_bytes() as u64);
                }
                self.claim_home(world, &mut th);
            }
            th.supply(v);
            cost += world.m.ctx_switch(self.me);
            self.start_thread(world, now, th);
        } else {
            self.wait_q.push_back(Waiting { th, handle });
        }
        cost
    }

    /// Begin running a deque item (locally popped or freshly stolen).
    /// `steal` carries `(victim, t0, protocol_cost_so_far, size)` for stolen
    /// items so the payload transfer and statistics are charged here.
    pub(crate) fn adopt_item(
        &mut self,
        now: VTime,
        world: &mut World,
        item: QueueItem,
        steal: Option<(WorkerId, VTime, VTime, usize)>,
    ) -> VTime {
        let copy = steal.map(|(victim, _, _, size)| world.m.get_bulk(self.me, victim, size));
        self.adopt_inner(now, world, item, steal, copy, true)
    }

    /// [`Self::adopt_item`] body, shared with the pipelined reap path where
    /// the payload `get_bulk` was already posted (so `copy_cost` is known
    /// and must not be charged again).
    fn adopt_inner(
        &mut self,
        now: VTime,
        world: &mut World,
        item: QueueItem,
        steal: Option<(WorkerId, VTime, VTime, usize)>,
        copy: Option<VTime>,
        charge_copy: bool,
    ) -> VTime {
        let copy_cost = copy.unwrap_or(VTime::ZERO);
        let mut cost = if charge_copy { copy_cost } else { VTime::ZERO };
        match item {
            QueueItem::Cont { mut th, .. } => {
                if let Some((victim, _, _, _)) = steal {
                    // Uni-address: the stack leaves the victim's region and
                    // lands at the same virtual address here. Iso-address:
                    // the globally unique range simply travels along.
                    if self.scheme == AddressScheme::Uni {
                        if let Some(home) = th.home {
                            world.rt.per[victim].uni.release(home);
                        }
                        self.claim_home(world, &mut th);
                    }
                }
                cost += world.m.ctx_restore(self.me);
                self.start_thread(world, now, th);
            }
            QueueItem::Child { f, arg, handle } => {
                let tid = world.rt.fresh_tid();
                let th = VThread::new(tid, f, arg, handle);
                if self.policy == Policy::ChildFull {
                    // Full threads start on a fresh private stack.
                    world.rt.per[self.me].note_full_stack_alloc();
                    cost += world.m.ctx_switch(self.me);
                } else if self.policy.is_cont() {
                    // Continuation runs never create child descriptors.
                    unreachable!("child descriptor under continuation stealing");
                } else {
                    // RtC threads run as a plain call on the worker stack.
                    cost += world.m.ctx_restore(self.me);
                }
                self.start_thread(world, now, th);
            }
        }
        if let Some((victim, t0, pre_cost, size)) = steal {
            let latency = now.saturating_sub(t0) + pre_cost + copy_cost;
            world.rt.stats.steal_ok(latency, copy_cost, size);
            world.rt.stats.note_steal_event(self.me, victim, t0, t0 + latency);
            world.rt.watch_progress(now);
        }
        cost
    }

    /// Complete a steal whose lock we won last step. `bounds` carries the
    /// `[top, bottom]` words when a multi-steal probe already read them in
    /// the lock's doorbell chain (the won lock froze them), skipping the
    /// bounds re-read.
    pub(crate) fn step_steal_take(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        t0: VTime,
        bounds: Option<(u64, u64)>,
        vepoch: u64,
    ) -> Step {
        if self.kills {
            if let Some(c_dead) = world.m.dead_guard(self.me, victim, now) {
                // The victim died between our lock and this take: its
                // segment is gone, so abandon the steal (the lock word dies
                // with the victim).
                self.state = WState::Idle;
                self.note_victim_faults(victim, 1, now);
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                return Step::Yield(c_dead + c_wait);
            }
            if world.m.fence_verb(self.me, vepoch, victim) {
                // The victim was evicted and rejoined between our lock and
                // this take: the rejoin purged the deque — our lock word
                // with it — so touching the fresh incarnation's deque would
                // tear it. The fence voids the steal. (Unreachable under
                // the oracle detector: an eviction there implies a
                // confirmed death, which the dead guard above catches.)
                self.state = WState::Idle;
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                return Step::Yield(c_wait);
            }
        }
        if self.fabric == FabricMode::Pipelined {
            return self.step_steal_take_pipelined(now, world, victim, t0, bounds);
        }
        let took = {
            let (_me_ws, victim_ws) = world.rt.two(self.me, victim);
            match bounds {
                Some((top, bottom)) => thief_take_at(
                    &mut world.m,
                    &mut victim_ws.items,
                    &self.lay,
                    self.me,
                    victim,
                    top,
                    bottom,
                ),
                None => thief_take(&mut world.m, &mut victim_ws.items, &self.lay, self.me, victim),
            }
        };
        let (got, cost) = match took {
            Ok(x) => x,
            Err(d) => {
                // The victim's deque (not ours) held the corpse.
                self.deque_violation(world, victim, &d);
                (None, d.cost)
            }
        };
        let faults = world.m.take_faults(self.me);
        self.note_victim_faults(victim, faults, now);
        self.state = WState::Idle;
        match got {
            None => {
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
            Some((item, size)) => self.commit_steal(now, world, victim, t0, item, size, cost),
        }
    }

    /// Blocking-path steal commit, shared by the CAS-lock take and the
    /// lock-free / fence-free claims: record the steal lineage, charge the
    /// payload transfer and adopt the item.
    ///
    /// The lineage is recorded before the payload crosses the wire, keyed
    /// by us (the executor): if we die before the entry flag is set, our
    /// death's confirmer re-adopts the work from this record. Child
    /// descriptors get a fresh record; a stolen continuation migrates an
    /// existing one (re-keyed here), and its header is mirrored to our
    /// buddy so either side of the split survives one death.
    #[allow(clippy::too_many_arguments)]
    fn commit_steal(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        t0: VTime,
        mut item: QueueItem,
        size: usize,
        mut cost: VTime,
    ) -> Step {
        self.fail_streak = 0;
        let rec = match &mut item {
            QueueItem::Child { f, arg, handle }
                if self.kills && self.policy == Policy::ChildRtc =>
            {
                Some(self.record_lineage(world, 0, *f, arg.clone(), *handle))
            }
            QueueItem::Cont { th, .. } if self.kills => {
                if !self.rekey_lineage(world, th) {
                    // The victim died and a confirmer already claimed
                    // this continuation's record for replay; our take
                    // (virtually earlier, later in execution order) holds
                    // a stale duplicate. Running it would execute the
                    // thread twice.
                    world.rt.stats.steal_failed();
                    self.fail_streak += 1;
                    let c_wait = self.poll_blocked(now, world);
                    return Step::Yield(cost + c_wait);
                }
                cost += self.mirror_split(world, now);
                None
            }
            _ => None,
        };
        let c2 = self.adopt_item(now, world, item, Some((victim, t0, cost, size)));
        if let Some((w, i)) = rec {
            if let Some(th) = self.cur.as_mut() {
                // The stolen child materialized as a thread only now: bind
                // its id to the record made above.
                world.rt.lineage.rec_mut(w, i).tid = th.tid;
                th.replay_rec = rec;
            }
        }
        Step::Yield(cost + c2)
    }

    /// Pipelined fabric: steps 2–3 of the steal, with the deque-top update,
    /// the lock release and the payload transfer *posted* concurrently
    /// instead of serialized. The item is removed from the victim's slab
    /// here (the take linearizes now); the completions are reaped next step
    /// in [`Self::step_steal_reap`]. Failure paths (empty deque, dead slot)
    /// have nothing to overlap and charge exactly what blocking mode does.
    fn step_steal_take_pipelined(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        t0: VTime,
        bounds: Option<(u64, u64)>,
    ) -> Step {
        let took = {
            let (_me_ws, victim_ws) = world.rt.two(self.me, victim);
            match bounds {
                Some((top, bottom)) => thief_take_no_release_at(
                    &mut world.m,
                    &mut victim_ws.items,
                    &self.lay,
                    self.me,
                    victim,
                    top,
                    bottom,
                ),
                None => thief_take_no_release(
                    &mut world.m,
                    &mut victim_ws.items,
                    &self.lay,
                    self.me,
                    victim,
                ),
            }
        };
        let lock = GlobalAddr::new(victim, self.lay.dq_word(DQ_LOCK));
        match took {
            Err(mut d) => {
                d.cost += thief_release_lock(&mut world.m, &self.lay, self.me, victim);
                let faults = world.m.take_faults(self.me);
                self.note_victim_faults(victim, faults, now);
                self.state = WState::Idle;
                self.deque_violation(world, victim, &d);
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(d.cost + c_wait)
            }
            Ok((None, mut cost)) => {
                cost += world.m.post_put_u64_unsignaled(self.me, lock, 0);
                let faults = world.m.take_faults(self.me);
                self.note_victim_faults(victim, faults, now);
                self.state = WState::Idle;
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
            Ok((Some((mut item, size, top)), cost)) => {
                // The advance rides the release's packet window (adjacent
                // words), exactly as in blocking mode; release put and
                // payload get are posted back to back and overlap. Same-QP
                // in-order retirement guarantees any later thief that wins
                // the freed lock also observes the advanced bounds.
                thief_advance_top(&mut world.m, &self.lay, self.me, victim, top + 1);
                let posted_at = now + cost;
                let h_release = world.m.post_put_u64(self.me, lock, 0, posted_at);
                let h_copy = world.m.post_get_bulk(self.me, victim, size, posted_at);
                let faults = world.m.take_faults(self.me);
                self.note_victim_faults(victim, faults, now);
                // Lineage must be recorded before the window opens: if we
                // die between post and reap, the confirmer replays from it.
                // A stolen continuation also piggybacks its checkpoint put
                // (header to our buddy) on the already-open posting window.
                let mut h_ckpt = None;
                let mut stale = false;
                let rec = match &mut item {
                    QueueItem::Child { f, arg, handle }
                        if self.kills && self.policy == Policy::ChildRtc =>
                    {
                        Some(self.record_lineage(world, 0, *f, arg.clone(), *handle))
                    }
                    QueueItem::Cont { th, .. } if self.kills => {
                        stale = !self.rekey_lineage(world, th);
                        if !stale {
                            if let Some(b) = self.buddy(&world.m, now) {
                                world.rt.stats.ckpt_puts += 1;
                                h_ckpt = Some(world.m.post_put_bulk(
                                    self.me,
                                    b,
                                    Self::CKPT_HDR_BYTES,
                                    posted_at,
                                ));
                            }
                        }
                        None
                    }
                    _ => None,
                };
                if stale {
                    // A confirmer already claimed this continuation's
                    // record for replay (the victim is dead; our take was
                    // virtually earlier but executed later). The take
                    // still commits protocol-wise — top advanced, release
                    // posted — but the stale duplicate must not run.
                    let (_, rel_fin) = world.m.wait(self.me, h_release);
                    let (_, copy_fin) = world.m.wait(self.me, h_copy);
                    let fin = rel_fin.max(copy_fin);
                    self.state = WState::Idle;
                    world.rt.stats.steal_failed();
                    self.fail_streak += 1;
                    let c_wait = self.poll_blocked(now, world);
                    return Step::Yield(fin.saturating_sub(now).max(cost) + c_wait);
                }
                self.pending_steal = Some(PendingSteal {
                    item,
                    size,
                    t0,
                    h_release: Some(h_release),
                    h_copy,
                    h_ckpt,
                    posted_at,
                    rec,
                });
                self.state = WState::StealReap { victim };
                Step::Yield(cost)
            }
        }
    }

    /// Complete a lock-free / fence-free steal whose bounds read saw
    /// `top < bottom` last step. The cross-step window since that read is
    /// where the races live: the slot may have been consumed (CAS loss /
    /// validation miss) or — fence-free only — already claimed (a dup).
    pub(crate) fn step_steal_claim(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        top: u64,
        t0: VTime,
        vepoch: u64,
    ) -> Step {
        if self.kills {
            if let Some(c_dead) = world.m.dead_guard(self.me, victim, now) {
                // The victim died between our bounds read and this claim:
                // its segment is gone, abandon the steal.
                self.state = WState::Idle;
                self.note_victim_faults(victim, 1, now);
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                return Step::Yield(c_dead + c_wait);
            }
            if world.m.fence_verb(self.me, vepoch, victim) {
                // The victim was evicted and rejoined since our bounds
                // read: the bounds (and the slot behind them) belong to a
                // purged incarnation — claiming against the fresh deque
                // would take an item we never raced for. Void the steal.
                self.state = WState::Idle;
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                return Step::Yield(c_wait);
            }
        }
        match self.protocol {
            Protocol::LockFree => self.step_steal_claim_lf(now, world, victim, top, t0),
            Protocol::FenceFree => self.step_steal_claim_ff(now, world, victim, top, t0),
            Protocol::CasLock => unreachable!("claim step under the CAS-lock protocol"),
        }
    }

    /// Lock-free claim: entry read + one CAS on the victim's `top`. A lost
    /// CAS is a benign failed steal; a won CAS commits the take. The CAS is
    /// an atomic round trip in both fabric modes (there is nothing to
    /// overlap it with — the payload get depends on its outcome).
    fn step_steal_claim_lf(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        top: u64,
        t0: VTime,
    ) -> Step {
        let took = {
            let (_me_ws, victim_ws) = world.rt.two(self.me, victim);
            lf_thief_claim(&mut world.m, &mut victim_ws.items, &self.lay, self.me, victim, top)
        };
        let (got, cost) = match took {
            Ok(x) => x,
            Err(d) => {
                // The victim's deque (not ours) held the corpse.
                self.deque_violation(world, victim, &d);
                (None, d.cost)
            }
        };
        let faults = world.m.take_faults(self.me);
        self.note_victim_faults(victim, faults, now);
        self.state = WState::Idle;
        match got {
            None => {
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
            Some((item, size)) => self.commit_steal(now, world, victim, t0, item, size, cost),
        }
    }

    /// Fence-free claim: entry span read (plain get), host-side ticket
    /// arbitration, then a plain claim-write of the `top` hint — no atomic
    /// anywhere. A `Dup` pays the wasted payload transfer and discards; a
    /// `Lost` race costs only the span read.
    fn step_steal_claim_ff(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        top: u64,
        t0: VTime,
    ) -> Step {
        let slot = GlobalAddr::new(victim, self.lay.dq_slot(top));
        let (vals, mut cost) = world.m.get_u64_span::<3>(self.me, slot);
        let outcome = {
            let rt = &mut world.rt;
            ff_decide(&mut rt.per[victim], &mut rt.ff_claims, vals)
        };
        let faults = world.m.take_faults(self.me);
        self.note_victim_faults(victim, faults, now);
        let top_word = GlobalAddr::new(victim, self.lay.dq_word(DQ_TOP));
        match outcome {
            FfSteal::Lost => {
                self.state = WState::Idle;
                world.rt.stats.ff_lost_races += 1;
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
            FfSteal::Dup => {
                // The loser copied the payload before discovering the claim
                // (the fence-free algorithm's cost of multiplicity), and
                // still writes the hint so later thieves skip the slot.
                cost += world.m.post_put_u64_unsignaled(self.me, top_word, top + 1);
                cost += world.m.get_bulk(self.me, victim, vals[1] as usize);
                self.state = WState::Idle;
                world.rt.stats.ff_dups += 1;
                world.rt.stats.steal_failed();
                self.fail_streak += 1;
                let c_wait = self.poll_blocked(now, world);
                Step::Yield(cost + c_wait)
            }
            FfSteal::Taken(item, size) => {
                let item = *item;
                if self.fabric == FabricMode::Pipelined {
                    return self.commit_steal_ff_pipelined(
                        now, world, victim, top, t0, item, size, cost,
                    );
                }
                cost += world.m.post_put_u64_unsignaled(self.me, top_word, top + 1);
                self.commit_steal(now, world, victim, t0, item, size, cost)
            }
        }
    }

    /// Fence-free winner under the pipelined fabric: the payload get is
    /// posted first and the unsignaled claim-write is injected while it is
    /// in flight (both plain verbs — the steal stays AMO-free), then the
    /// completion is reaped next step like a pipelined CAS-lock steal.
    #[allow(clippy::too_many_arguments)]
    fn commit_steal_ff_pipelined(
        &mut self,
        now: VTime,
        world: &mut World,
        victim: WorkerId,
        top: u64,
        t0: VTime,
        mut item: QueueItem,
        size: usize,
        mut cost: VTime,
    ) -> Step {
        let posted_at = now + cost;
        let h_copy = world.m.post_get_bulk(self.me, victim, size, posted_at);
        let top_word = GlobalAddr::new(victim, self.lay.dq_word(DQ_TOP));
        cost += world.m.post_put_u64_unsignaled(self.me, top_word, top + 1);
        // Lineage must be recorded before the window opens (see the
        // pipelined CAS-lock take); a stolen continuation piggybacks its
        // checkpoint put on the already-open posting window.
        let mut h_ckpt = None;
        let mut stale = false;
        let rec = match &mut item {
            QueueItem::Child { f, arg, handle }
                if self.kills && self.policy == Policy::ChildRtc =>
            {
                Some(self.record_lineage(world, 0, *f, arg.clone(), *handle))
            }
            QueueItem::Cont { th, .. } if self.kills => {
                stale = !self.rekey_lineage(world, th);
                if !stale {
                    if let Some(b) = self.buddy(&world.m, now) {
                        world.rt.stats.ckpt_puts += 1;
                        h_ckpt = Some(world.m.post_put_bulk(
                            self.me,
                            b,
                            Self::CKPT_HDR_BYTES,
                            posted_at,
                        ));
                    }
                }
                None
            }
            _ => None,
        };
        if stale {
            // A confirmer already claimed this continuation's record for
            // replay. The claim still committed (ticket taken, hint
            // written) but the stale duplicate must not run.
            let (_, copy_fin) = world.m.wait(self.me, h_copy);
            self.state = WState::Idle;
            world.rt.stats.steal_failed();
            self.fail_streak += 1;
            let c_wait = self.poll_blocked(now, world);
            return Step::Yield(copy_fin.saturating_sub(now).max(cost) + c_wait);
        }
        self.pending_steal = Some(PendingSteal {
            item,
            size,
            t0,
            h_release: None,
            h_copy,
            h_ckpt,
            posted_at,
            rec,
        });
        self.state = WState::StealReap { victim };
        Step::Yield(cost)
    }

    /// Pipelined fabric: reap the posted release + payload completions and
    /// adopt the stolen item. Runs one engine step after the take, so the
    /// schedule explorer can interleave other workers between the post
    /// instant and the completion instant.
    pub(crate) fn step_steal_reap(&mut self, now: VTime, world: &mut World, victim: WorkerId) -> Step {
        let ps = self.pending_steal.take().expect("reap without a pending steal");
        // Even if the victim has died meanwhile the steal commits: the item
        // left its slab at take time and every verb was already posted (and
        // charged) before the death could be observed.
        let rel_fin = ps
            .h_release
            .map(|h| world.m.wait(self.me, h).1)
            .unwrap_or(VTime::ZERO);
        let (_, copy_fin) = world.m.wait(self.me, ps.h_copy);
        let ckpt_fin = ps
            .h_ckpt
            .map(|h| world.m.wait(self.me, h).1)
            .unwrap_or(VTime::ZERO);
        let fin = rel_fin.max(copy_fin).max(ckpt_fin);
        let cost = fin.saturating_sub(now);
        let copy_cost = copy_fin.saturating_sub(ps.posted_at);
        self.state = WState::Idle;
        self.fail_streak = 0;
        // `pre_cost = 0`: everything before this step was charged by the
        // take step (`now` already includes it), so the recorded latency is
        // `(now - t0) + copy_cost = fence_instant - t0` — the overlapped
        // analogue of the blocking path's serial sum.
        let c2 = self.adopt_inner(
            now,
            world,
            ps.item,
            Some((victim, ps.t0, VTime::ZERO, ps.size)),
            Some(copy_cost),
            false,
        );
        if let Some((w, i)) = ps.rec {
            if let Some(th) = self.cur.as_mut() {
                // The stolen child materialized as a thread only now: bind
                // its id to the record made at take time.
                world.rt.lineage.rec_mut(w, i).tid = th.tid;
                th.replay_rec = ps.rec;
            }
        }
        Step::Yield(cost + c2)
    }

    /// End-of-run consistency checks.
    pub(crate) fn finalize(&mut self, world: &mut World, now: VTime) {
        self.set_busy(world, now, false);
        self.halted = true;
        if self.protocol == Protocol::FenceFree {
            // Thief-claimed Child originals linger in our slab until a pop
            // walks past their slots; at termination nobody will, so sweep
            // the trailing claimed slots. The sweep stops at the first
            // unclaimed slot — a genuinely leaked item still trips the
            // strict assert below.
            let rt = &mut world.rt;
            ff_owner_reclaim(
                &mut world.m,
                &mut rt.per[self.me],
                &mut rt.ff_claims,
                &self.lay,
                self.me,
            );
        }
        if self.kills {
            // Armed termination can strand orphaned duplicates: a lineage
            // replay re-executed an ancestor whose original children kept
            // running here, and the root completed from the replayed copy.
            // Threads still buried when the done flag goes up are by
            // definition not part of the published result — retire them so
            // the lost-task oracle keeps meaning for live workers. Locally
            // spawned run-to-completion children carry no lineage record,
            // so the end-of-run lineage settlement cannot cover them.
            if let Some(th) = &self.cur {
                world.rt.watch_retire(th.tid);
            }
            for w in &self.wait_q {
                world.rt.watch_retire(w.th.tid);
            }
            for x in &self.nest {
                world.rt.watch_retire(x.th.tid);
            }
            if let Some(ps) = &self.pending_steal {
                if let QueueItem::Cont { th, .. } = &ps.item {
                    world.rt.watch_retire(th.tid);
                }
            }
        }
        if world.rt.cfg.strict {
            assert!(self.cur.is_none(), "worker {} halted mid-thread", self.me);
            assert!(
                self.wait_q.is_empty(),
                "worker {} halted with {} threads stuck in the wait queue",
                self.me,
                self.wait_q.len()
            );
            assert!(
                self.nest.is_empty(),
                "worker {} halted with buried joins",
                self.me
            );
            let ws = &world.rt.per[self.me];
            assert!(
                ws.items.is_empty(),
                "worker {} halted with {} unconsumed deque items",
                self.me,
                ws.items.len()
            );
            assert!(
                ws.saved.is_empty(),
                "worker {} halted with {} suspended threads",
                self.me,
                ws.saved.len()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permanent_blacklist_entries_never_decay() {
        // A confirmed-dead victim's score is pinned at the sentinel; the
        // decay path must short-circuit (a shift would silently
        // un-blacklist the dead).
        let s = Worker::bl_decayed(Worker::BL_FOREVER, VTime::ZERO, VTime::ms(10));
        assert_eq!(s, Worker::BL_FOREVER);
        assert!(s > Worker::BL_THRESHOLD);
        // Finite scores still decay towards zero — exactly one halving per
        // elapsed half-life, in integer shifts (no f64 in the hot path).
        let s = Worker::bl_decayed(8 * Worker::BL_ONE, VTime::ZERO, VTime::us(400));
        assert_eq!(s, 2 * Worker::BL_ONE, "two half-lives: 8 -> 2");
        // Sub-half-life elapses leave the score untouched (step decay)...
        let s = Worker::bl_decayed(8 * Worker::BL_ONE, VTime::ZERO, VTime::us(199));
        assert_eq!(s, 8 * Worker::BL_ONE);
        // ...and enormous gaps shift all the way to zero, not UB.
        let s = Worker::bl_decayed(8 * Worker::BL_ONE, VTime::ZERO, VTime::ms(100));
        assert_eq!(s, 0);
    }
}
