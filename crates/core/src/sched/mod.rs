//! The work-stealing scheduler: one [`Worker`] actor per simulated process.
//!
//! A worker is a state machine driven by the discrete-event engine:
//!
//! * `WState::Run` — execute the current thread: advance it one effect and
//!   apply that effect under the run's [`Policy`]. Effects that need the
//!   local deque observe the deque lock; if a thief holds it the application
//!   is retried next step (the effect is kept pending, no side effects leak).
//! * `WState::Idle` — the scheduler loop: poll the termination flag, pop
//!   local work, otherwise pick a uniformly random victim and start a steal.
//!   After every *failed* steal attempt, stalling policies round-robin the
//!   local wait queue (Fig. 3).
//! * `WState::StealTake` — the thief holds the victim's deque lock from the
//!   previous step and now reads bounds, takes the oldest task and transfers
//!   its payload.
//!
//! DIE and JOIN follow the paper's pseudocode per policy:
//!
//! * **ContGreedy** — Fig. 4, including the work-first fast path (pop the
//!   parent before racing), the fetch-and-add race, and migration of the
//!   suspended joiner to the race loser; multi-consumer futures use the §V-D
//!   extension (arrival-counting flag word with a DONE bit, per-consumer
//!   ctxloc slots, a consumed counter so the last consumer frees the entry).
//! * **ContStalling** — Fig. 3: DIE puts retval + flag and pops the local
//!   queue; JOIN suspends into the local FIFO wait queue, re-polled after
//!   each failed steal; suspended threads never migrate.
//! * **ChildFull** — spawn pushes a 56-byte descriptor; tasks are tied, each
//!   gets its own full stack and suspends to the wait queue at unresolved
//!   joins.
//! * **ChildRtc** — like ChildFull but a blocked join *nests* the scheduler
//!   on the worker's single stack: the blocked task is buried until
//!   everything above it completes (§IV-B).
//!
//! JOIN is split across two steps (flag read, then the suspend + race
//! commit) so a producer's DIE can interleave in the window — the rare
//! "joining thread lost the race" path of Fig. 4 lines 49–50 is reachable
//! exactly as on real hardware.

use std::collections::VecDeque;

use dcs_sim::{Actor, FabricMode, GlobalAddr, Machine, SimRng, Step, VTime, VerbHandle, WorkerId};

use crate::dedup::DoneFlag;
use crate::deque::{
    ff_decide, ff_owner_pop, ff_owner_pop_parent, ff_owner_push, ff_owner_reclaim, lf_owner_pop,
    lf_owner_pop_parent, lf_owner_push, lf_thief_claim, lock_holder, lock_word, owner_pop,
    owner_pop_parent, owner_push, thief_advance_top, thief_lock_epoch, thief_read_bounds,
    thief_release_lock, thief_take, thief_take_at, thief_take_no_release,
    thief_take_no_release_at, Busy, DeadSlot, DequeError, FfSteal,
};
use crate::entry::{
    alloc_entry, alloc_saved_ctx, free_entry, read_saved_ctx, DONE_BIT, EM_CONSUMED, EM_CTX0,
    E_CTXLOC, E_FLAG, SAVED_CTX_BYTES,
};
use crate::frame::{AppCtx, Effect, Frame, Pending, RmaOp, TaskCtx, TaskFn, VThread};
use crate::layout::{SegLayout, DQ_BOTTOM, DQ_LOCK, DQ_TOP};
use crate::policy::{AddressScheme, FreeStrategy, Policy, Protocol, VictimPolicy};
use crate::remote_free::free_robj;
use crate::value::{ThreadHandle, Value};
use crate::world::{evict_key, LineageRec, QueueItem, StoredVal, UnrecoverableReason, World};

/// A pending operation carried across steps.
pub(crate) enum PendingOp {
    /// An application-produced effect not yet applied.
    Effect(Effect),
    /// JOIN saw flag = 0 last step; commit the suspension / race this step.
    JoinSlow {
        handle: ThreadHandle,
    },
}

/// Scheduler state.
pub(crate) enum WState {
    /// Executing the current thread.
    Run,
    /// Looking for work.
    Idle,
    /// Holding `victim`'s deque lock; complete the steal this step.
    /// `bounds` carries the `[top, bottom]` words when the lock-winning
    /// probe already read them in its doorbell chain (multi-steal): a won
    /// lock freezes the bounds, so the take skips the re-read. The
    /// single-victim path passes `None` and re-reads, exactly as before.
    /// `vepoch` is the victim's incarnation epoch observed when the probe
    /// was issued: if the victim is evicted and rejoins before the next
    /// step, the epoch fence voids the stale take instead of letting a
    /// zombie-held lock tear the fresh incarnation's deque.
    StealTake {
        victim: WorkerId,
        t0: VTime,
        bounds: Option<(u64, u64)>,
        vepoch: u64,
    },
    /// Lock-free / fence-free protocols: a bounds read last step saw
    /// `top < bottom`; claim the entry at `top` this step. The cross-step
    /// split is the real protocol's race window — the victim (or another
    /// thief) can consume the slot in between, making the claim lose (CAS
    /// failure / validation miss) or double-take (fence-free `Dup`).
    /// `vepoch` fences the claim exactly like the CAS-lock take's.
    StealClaim {
        victim: WorkerId,
        top: u64,
        t0: VTime,
        vepoch: u64,
    },
    /// Pipelined fabric only: the take succeeded last step and the
    /// deque-top update, lock release and payload transfer are posted but
    /// not yet fenced. Reap the completions and adopt the item this step.
    /// The extra engine step is the checker-visible window between *post*
    /// and *completion*: the victim can already observe its lock released
    /// while the thief has not yet adopted the stolen item.
    StealReap { victim: WorkerId },
}

/// A steal mid-flight under [`FabricMode::Pipelined`]: the item has left the
/// victim's slab; the overlapped verbs are posted, completions pending.
pub(crate) struct PendingSteal {
    item: QueueItem,
    size: usize,
    /// When the steal began (lock-CAS step start), for latency accounting.
    t0: VTime,
    /// Lock-release put (CAS-lock) or claim-write put of the `top` hint
    /// (fence-free), posted concurrently with the payload transfer. The
    /// lock-free protocol has neither — its CAS already committed.
    h_release: Option<VerbHandle>,
    /// Stack / descriptor `get_bulk`, posted at the same instant.
    h_copy: VerbHandle,
    /// Checkpoint put of a stolen continuation's header to the thief's
    /// buddy, piggybacked on the same posting window (armed fault plans,
    /// continuation items only).
    h_ckpt: Option<VerbHandle>,
    /// Absolute post instant of the overlapped pair.
    posted_at: VTime,
    /// Steal-lineage record created at take time (kill plans only).
    rec: Option<(WorkerId, usize)>,
}

/// A thread suspended in the local wait queue (stalling strategies).
pub(crate) struct Waiting {
    th: VThread,
    handle: ThreadHandle,
}

/// A thread buried under the nested scheduler (ChildRtc).
pub(crate) struct Nested {
    th: VThread,
    handle: ThreadHandle,
}

/// Per-victim misbehaviour scores with exponential decay (fault-injection
/// resilience): every transient fabric fault observed while talking to a
/// victim bumps its score; a victim whose decayed score exceeds
/// [`Worker::BL_THRESHOLD`] is skipped during victim selection until the
/// score decays back below it. Scores are Q32.32 fixed point and decay by
/// integer shift (one bit per elapsed half-life) so the engine stays free
/// of float rounding; [`Worker::BL_FOREVER`] marks a permanent entry
/// (confirmed-dead victim, never decays).
///
/// Sparse: keyed by victim id, populated only for peers that actually
/// misbehaved, so a worker in a 10⁵-peer run pays for its handful of flaky
/// or dead victims rather than two O(W) vectors. Never iterated (only
/// probed per victim), so the map's ordering is irrelevant to determinism.
pub(crate) struct Blacklist {
    /// `victim → (score, last-update time)`; absent means score 0.
    entries: std::collections::HashMap<WorkerId, (u64, VTime)>,
    /// Cached cheapest-by-topology non-permanently-blacklisted fallback
    /// victim (`None` = stale, recompute; `Some(None)` = every peer is
    /// permanently blacklisted). Invalidated whenever the permanent set
    /// changes, so the sole-survivor fallback in
    /// [`Worker::select_victim`] costs O(W) once per death/rejoin instead
    /// of per draw.
    fallback: Option<Option<WorkerId>>,
}

impl Blacklist {
    fn new() -> Blacklist {
        Blacklist {
            entries: std::collections::HashMap::new(),
            fallback: None,
        }
    }
}

/// One simulated worker process.
pub struct Worker {
    me: WorkerId,
    n: usize,
    policy: Policy,
    /// Steal-protocol family (CAS-lock / lock-free / fence-free).
    protocol: Protocol,
    strategy: FreeStrategy,
    scheme: AddressScheme,
    victim_policy: VictimPolicy,
    /// Steal attempts kept in flight at once (`--multi-steal K`); 1 keeps
    /// the serial single-victim path byte-identical to older runs.
    multi_steal: usize,
    /// Consecutive failed steal attempts (drives hierarchical escalation).
    fail_streak: u32,
    lay: SegLayout,
    rng: SimRng,
    app: AppCtx,
    /// Whole-run compute slowdown (profile scale × perturb).
    base_scale: f64,
    /// Time-windowed slowdowns affecting this worker: `(from, until, factor)`.
    slow_windows: Vec<(VTime, VTime, f64)>,
    /// Per-victim misbehaviour scores (allocated lazily on the first
    /// observed fabric fault, so healthy runs never touch it).
    blacklist: Option<Box<Blacklist>>,
    /// How this run drives the fabric (from [`crate::policy::RunConfig`]).
    fabric: FabricMode,
    state: WState,
    cur: Option<VThread>,
    /// Steal awaiting its completions (`WState::StealReap` only).
    pending_steal: Option<PendingSteal>,
    pending: Option<PendingOp>,
    wait_q: VecDeque<Waiting>,
    nest: Vec<Nested>,
    busy: bool,
    busy_since: VTime,
    halted: bool,
    /// The fault plan arms recovery (a scheduled kill, `recover=on`, or a
    /// message-based detector that can evict on suspicion): gate for every
    /// recovery code path, so unarmed runs stay bit-identical.
    kills: bool,
    /// This worker's incarnation epoch: its view of its own entry in the
    /// machine epoch registry. A survivor that confirms this worker dead
    /// bumps the registry; the gap between registry and view is how the
    /// worker observes its own eviction (self-fence) at its next step.
    my_epoch: u64,
    /// Peers this worker currently holds confirmed dead (latched lease
    /// expiry); empty without an armed plan. Under the message detector a
    /// latch is revocable: delayed beats landing un-confirm the peer and
    /// clear the latch (and its permanent blacklist entry), making a
    /// falsely-suspected or rejoined peer stealable again. Sparse: holds
    /// only the (few) latched peers, not a W-wide bitmap per worker.
    confirmed: std::collections::BTreeSet<WorkerId>,
    /// Position in the machine's detector candidate feed (see
    /// [`dcs_sim::Machine::death_candidates`]): everything before it has
    /// been folded into `confirmed` by [`Worker::fail_stop_scan`].
    death_cursor: usize,
}

impl Worker {
    /// Create worker `me`. Worker 0 receives the root thread.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        me: WorkerId,
        world: &mut World,
        lay: SegLayout,
        app: AppCtx,
        root: Option<(TaskFn, Value)>,
        seed: u64,
    ) -> Worker {
        let policy = world.rt.cfg.policy;
        let protocol = world.rt.cfg.protocol;
        let strategy = world.rt.cfg.free_strategy;
        let scheme = world.rt.cfg.address_scheme;
        let victim_policy = world.rt.cfg.victim;
        let base_scale = world.rt.cfg.profile.compute_scale
            * world.rt.cfg.perturb.get(me).copied().unwrap_or(1.0);
        let slow_windows: Vec<(VTime, VTime, f64)> = world
            .rt
            .cfg
            .slowdowns
            .iter()
            .filter(|s| s.worker == me)
            .map(|s| (s.from, s.until, s.factor))
            .collect();
        let n = world.rt.cfg.workers;
        // Armed either by a scheduled kill or explicitly (`recover=on`) —
        // the latter exists so `ablate_recovery` can price the lineage
        // machinery with no kill actually firing.
        let kills = world.rt.cfg.fault.recovery_armed();
        let cur = root.map(|(f, arg)| {
            let tid = world.rt.fresh_tid();
            if kills && policy != Policy::ChildFull {
                // Root re-election: the root's origin is mirrored as the
                // first lineage record of worker 0 with a NULL handle, so
                // a worker-0 kill replays the root elsewhere instead of
                // aborting the run.
                world.rt.lineage.push(
                    me,
                    LineageRec {
                        f,
                        arg: arg.clone(),
                        handle: ThreadHandle::single(GlobalAddr::NULL),
                        tid,
                        done: DoneFlag::new(),
                    },
                );
            }
            let mut th = VThread::new(tid, f, arg, ThreadHandle::single(GlobalAddr::NULL));
            if kills && policy != Policy::ChildFull {
                th.replay_rec = Some((me, 0));
            }
            if policy.is_cont() {
                let slot = world.rt.cfg.stack_slot;
                th.home = Some(match scheme {
                    AddressScheme::Uni => world.rt.per[me].uni.place_child(None, slot),
                    AddressScheme::Iso => world.rt.iso.alloc(slot),
                });
            } else if policy == Policy::ChildFull {
                world.rt.per[me].note_full_stack_alloc();
            }
            th
        });
        let busy = cur.is_some();
        if busy {
            world.rt.stats.note_busy(VTime::ZERO);
        }
        Worker {
            me,
            n,
            policy,
            protocol,
            strategy,
            lay,
            rng: SimRng::for_worker(seed, me),
            app,
            base_scale,
            slow_windows,
            blacklist: None,
            scheme,
            victim_policy,
            multi_steal: (world.rt.cfg.multi_steal as usize).max(1),
            fail_streak: 0,
            fabric: world.rt.cfg.fabric,
            state: if busy { WState::Run } else { WState::Idle },
            cur,
            pending_steal: None,
            pending: None,
            wait_q: VecDeque::new(),
            nest: Vec::new(),
            busy,
            busy_since: VTime::ZERO,
            halted: false,
            kills,
            my_epoch: 0,
            confirmed: std::collections::BTreeSet::new(),
            death_cursor: 0,
        }
    }

    // ------------------------------------------------------------------
    // busy/idle accounting
    // ------------------------------------------------------------------

    pub(crate) fn set_busy(&mut self, world: &mut World, now: VTime, busy: bool) {
        if busy == self.busy {
            return;
        }
        if busy {
            self.busy_since = now;
            world.rt.stats.note_busy(now);
        } else {
            world.rt.stats.add_busy(now.saturating_sub(self.busy_since));
            world.rt.stats.note_busy_interval(self.me, self.busy_since, now);
            world.rt.stats.note_idle(now);
        }
        self.busy = busy;
    }

    // ------------------------------------------------------------------
    // small protocol helpers
    // ------------------------------------------------------------------

    /// Park a return value in entry `e` (pinned put + side table).
    pub(crate) fn put_retval(&mut self, world: &mut World, e: ThreadHandle, v: Value) -> VTime {
        let size = v.wire_size();
        world
            .rt
            .retvals
            .insert(e.entry.to_u64(), StoredVal { v, size: size as u32 });
        world.m.put_bulk(self.me, e.entry.rank as usize, size)
    }

    /// Posted-verb analogue of [`Self::put_retval`]: park the value and post
    /// the wire put at `at`, returning the handle instead of blocking.
    pub(crate) fn post_retval(
        &mut self,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
        at: VTime,
    ) -> VerbHandle {
        let size = v.wire_size();
        world
            .rt
            .retvals
            .insert(e.entry.to_u64(), StoredVal { v, size: size as u32 });
        world.m.post_put_bulk(self.me, e.entry.rank as usize, size, at)
    }

    /// Publish a completion record: park + put the retval, then write the
    /// join flag. Blocking charges the two verbs serially; Pipelined posts
    /// them back-to-back and retires both under one wait. Both verbs target
    /// the entry's rank, so same-QP in-order retirement keeps the value
    /// visible before the flag — the publication order Fig. 3/4 rely on.
    /// `at` is the issuer's absolute virtual instant; returns the added cost.
    pub(crate) fn publish_retval_and_flag(
        &mut self,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
        flag_val: u64,
        at: VTime,
    ) -> VTime {
        if self.fabric == FabricMode::Pipelined {
            let h_rv = self.post_retval(world, e, v, at);
            let h_flag = world
                .m
                .post_put_u64(self.me, e.entry.field(E_FLAG), flag_val, at);
            let (_, f1) = world.m.wait(self.me, h_rv);
            let (_, f2) = world.m.wait(self.me, h_flag);
            f1.max(f2).saturating_sub(at)
        } else {
            let mut c = self.put_retval(world, e, v);
            c += world.m.put_u64(self.me, e.entry.field(E_FLAG), flag_val);
            c
        }
    }

    /// As [`Self::publish_retval_and_flag`], but the flag op is the greedy
    /// race's fetch-add (Fig. 4 l. 33): returns `(old flag, added cost)`.
    /// Legal to overlap for the same reason — the AMO cannot retire before
    /// the retval put on the same QP, so a racing joiner that observes the
    /// incremented flag is guaranteed to find the value.
    pub(crate) fn publish_retval_and_faa(
        &mut self,
        world: &mut World,
        e: ThreadHandle,
        v: Value,
        add: u64,
        at: VTime,
    ) -> (u64, VTime) {
        if self.fabric == FabricMode::Pipelined {
            let h_rv = self.post_retval(world, e, v, at);
            let h_faa = world
                .m
                .post_fetch_add_u64(self.me, e.entry.field(E_FLAG), add, at);
            let (_, f1) = world.m.wait(self.me, h_rv);
            let (old, f2) = world.m.wait(self.me, h_faa);
            (old, f1.max(f2).saturating_sub(at))
        } else {
            let mut c = self.put_retval(world, e, v);
            let (old, c1) = world.m.fetch_add_u64(self.me, e.entry.field(E_FLAG), add);
            c += c1;
            (old, c)
        }
    }

    /// Fetch a return value from entry `e`. Single-consumer entries hand the
    /// value out once (removal); multi-consumer entries clone (the entry is
    /// freed — and the table cleaned — by the last consumer).
    pub(crate) fn get_retval(&mut self, world: &mut World, e: ThreadHandle) -> (Value, VTime) {
        let key = e.entry.to_u64();
        let (v, size) = if e.consumers == 1 {
            let sv = world
                .rt
                .retvals
                .remove(&key)
                .expect("join completed but no return value parked");
            (sv.v, sv.size)
        } else {
            let sv = world
                .rt
                .retvals
                .get(&key)
                .expect("future completed but no return value parked");
            (sv.v.clone(), sv.size)
        };
        let cost = world
            .m
            .get_bulk(self.me, e.entry.rank as usize, size as usize);
        (v, cost)
    }

    /// Free entry `e` from this worker (it owns the last consume).
    pub(crate) fn free_entry_here(&mut self, world: &mut World, e: ThreadHandle) -> VTime {
        if !world.rt.watch_check_free(e.entry.to_u64()) {
            // Double free (watchdog violation recorded): refuse to corrupt
            // the entry allocator; the aborted attempt costs one local op.
            return world.m.local_op(self.me);
        }
        world.rt.stats.note_entry_freed(e.entry.to_u64());
        let owner = e.entry.rank as usize;
        free_entry(
            &mut world.m,
            &mut world.rt.per[owner],
            &self.lay,
            self.strategy,
            self.me,
            e,
            &mut world.rt.meta,
            &mut world.rt.retvals,
        )
    }

    /// Release the thread's execution resources at death.
    pub(crate) fn retire_thread(&mut self, world: &mut World, th: &mut VThread) {
        if let Some(home) = th.home.take() {
            match self.scheme {
                AddressScheme::Uni => world.rt.per[self.me].uni.release(home),
                AddressScheme::Iso => world.rt.iso.free(home),
            }
        }
        if self.policy == Policy::ChildFull {
            world.rt.per[self.me].note_full_stack_free();
        }
    }

    /// Close a suspended thread's outstanding-join record now (used by
    /// resume paths that free the entry before `start_thread` runs — the
    /// die-time record must still be present when the interval is computed).
    pub(crate) fn close_suspension(&mut self, world: &mut World, th: &mut VThread, now: VTime) {
        if let Some((suspended_at, entry)) = th.suspension.take() {
            world.rt.stats.note_join_resumed(entry, suspended_at, now);
        }
    }

    /// Begin running a thread on this worker; closes any outstanding-join
    /// bookkeeping it carries.
    pub(crate) fn start_thread(&mut self, world: &mut World, now: VTime, mut th: VThread) {
        if let Some((suspended_at, entry)) = th.suspension.take() {
            world.rt.stats.note_join_resumed(entry, suspended_at, now);
        }
        debug_assert!(self.cur.is_none());
        self.cur = Some(th);
        self.state = WState::Run;
        self.set_busy(world, now, true);
    }

    /// Place a newly spawned thread's stack immediately above its parent's
    /// (the uni-address rule). After migrations have re-homed stacks, the
    /// slot above the parent can be occupied by an unrelated resident
    /// continuation; the real system would relocate — the model falls back
    /// to first-fit and counts the conflict, exactly like [`Self::claim_home`].
    pub(crate) fn place_stack(
        &mut self,
        world: &mut World,
        parent: Option<dcs_uniaddr::StackSlot>,
        len: u64,
    ) -> dcs_uniaddr::StackSlot {
        if self.scheme == AddressScheme::Iso {
            return world.rt.iso.alloc(len);
        }
        let uni = &mut world.rt.per[self.me].uni;
        let base = parent.map_or(uni.base(), |p| p.end());
        let want = dcs_uniaddr::StackSlot { base, len };
        if uni.claim(want) {
            want
        } else {
            uni.place_anywhere(len)
        }
    }

    /// Claim a migrated thread's home range in this worker's uni-address
    /// region, falling back to first-fit on conflict (counted).
    pub(crate) fn claim_home(&mut self, world: &mut World, th: &mut VThread) {
        if !self.policy.is_cont() || self.scheme == AddressScheme::Iso {
            // Iso-address stacks keep their globally unique range wherever
            // they go — migration never relocates.
            return;
        }
        let slot_len = world.rt.cfg.stack_slot;
        let uni = &mut world.rt.per[self.me].uni;
        match th.home {
            Some(home) if uni.claim(home) => {}
            _ => {
                th.home = Some(uni.place_anywhere(slot_len));
            }
        }
    }

    /// Effective compute slowdown at virtual time `now`: the whole-run base
    /// scale compounded with every slowdown window covering `now`.
    pub(crate) fn compute_scale_at(&self, now: VTime) -> f64 {
        let mut s = self.base_scale;
        for &(from, until, f) in &self.slow_windows {
            if from <= now && now < until {
                s *= f;
            }
        }
        s
    }

    /// Surface a deque-protocol violation carried by a typed error. `owner`
    /// is the worker whose deque held the dead slot (the victim, for thief
    /// ops). With a watchdog attached the violation is recorded and the
    /// caller degrades (the op reports "nothing found"); without one a
    /// corrupted deque cannot be trusted to finish the run, so fail loudly —
    /// as a protocol error, not the `u64::MAX` slab underflow this replaces.
    pub(crate) fn deque_violation(&self, world: &mut World, owner: WorkerId, d: &DeadSlot) {
        if !world.rt.watch_deque_protocol(d.op, owner, d.index) {
            panic!(
                "deque protocol violation: {} observed a dead ring slot at index {} of worker {}'s deque",
                d.op, d.index, owner
            );
        }
    }

    /// This worker's scheduled fail-stop kill instant has arrived: collect
    /// every frame that dies with it, report the loss, and halt forever.
    /// Every policy except [`Policy::ChildFull`] is recoverable — thread
    /// origins (child descriptors, continuation fork/steal records, the
    /// mirrored root) are replayable pure data and the lineage log covers
    /// everything in flight, including worker 0's root. ChildFull's full
    /// private stacks cannot be reconstructed, and a loss that leaves no
    /// survivor has nobody to replay; those runs abort with a typed
    /// outcome.
    fn step_killed(&mut self, now: VTime, world: &mut World) -> Step {
        let mut tids: Vec<u64> = Vec::new();
        if let Some(th) = &self.cur {
            tids.push(th.tid);
        }
        tids.extend(self.wait_q.iter().map(|w| w.th.tid));
        tids.extend(self.nest.iter().map(|x| x.th.tid));
        if let Some(ps) = &self.pending_steal {
            // A pipelined steal caught mid-flight dies with us; child
            // descriptors were lineage-recorded at take time and replay.
            if let QueueItem::Cont { th, .. } = &ps.item {
                tids.push(th.tid);
            }
        }
        for (_, item) in world.rt.per[self.me].items.iter() {
            if let QueueItem::Cont { th, .. } = item {
                tids.push(th.tid);
            }
        }
        tids.extend(world.rt.per[self.me].saved.iter().map(|(_, th)| th.tid));
        let all_dead = (0..self.n).all(|w| w == self.me || world.m.is_dead(w, now));
        let fail = if self.policy == Policy::ChildFull {
            Some(UnrecoverableReason::FullStacks)
        } else if all_dead {
            Some(UnrecoverableReason::AllWorkersDead)
        } else {
            None
        };
        world.rt.note_worker_lost(self.me, tids, fail);
        if fail.is_some() {
            world.m.set_done();
        }
        self.set_busy(world, now, false);
        self.halted = true;
        Step::Halt
    }

    /// This worker observed its own eviction (the epoch registry moved past
    /// its view): a survivor's lease on us expired — under the message
    /// detector possibly a *false* suspicion — and our unfinished lineage
    /// was drained for replay. Everything we still hold is therefore a
    /// stale duplicate: quiesce, shed it, and rejoin as a fresh incarnation
    /// with an empty deque (or halt, when the plan forbids rejoining).
    ///
    /// ChildFull is the exception: it records no lineage, so the confirmer
    /// drained nothing and nothing we hold is stale — the worker just
    /// adopts its new epoch and keeps running (survivors un-blacklist it
    /// once its beats resume).
    fn step_evicted(&mut self, now: VTime, world: &mut World) -> Step {
        let new_epoch = world.m.epoch_of(self.me);
        if self.policy == Policy::ChildFull {
            self.my_epoch = new_epoch;
            world.rt.note_worker_evicted(self.me, Vec::new());
            return Step::Yield(world.m.local_op(self.me));
        }
        // Enumerate every frame that dies with this incarnation (the same
        // census a fail-stop kill takes; replay re-creates the recorded
        // subset under fresh ids).
        let mut tids: Vec<u64> = Vec::new();
        if let Some(th) = &self.cur {
            tids.push(th.tid);
        }
        tids.extend(self.wait_q.iter().map(|w| w.th.tid));
        tids.extend(self.nest.iter().map(|x| x.th.tid));
        if let Some(ps) = &self.pending_steal {
            if let QueueItem::Cont { th, .. } = &ps.item {
                tids.push(th.tid);
            }
        }
        for (_, item) in world.rt.per[self.me].items.iter() {
            if let QueueItem::Cont { th, .. } = item {
                tids.push(th.tid);
            }
        }
        tids.extend(world.rt.per[self.me].saved.iter().map(|(_, th)| th.tid));
        // Shed the current thread and the local queues, returning stack
        // homes so the region survives into the next incarnation.
        if let Some(mut th) = self.cur.take() {
            self.retire_thread(world, &mut th);
        }
        while let Some(Waiting { mut th, .. }) = self.wait_q.pop_front() {
            if self.scheme == AddressScheme::Uni && th.home.take().is_some() {
                // Stalling suspensions released their home at evacuation;
                // only the evacuation accounting is still open.
                world.rt.per[self.me].evac.restore(th.stack_bytes() as u64);
            } else {
                self.retire_thread(world, &mut th);
            }
        }
        while let Some(Nested { mut th, .. }) = self.nest.pop() {
            self.retire_thread(world, &mut th);
        }
        // Reap any mid-flight steal's posted completions, then abandon the
        // item (its lineage record is keyed under us and was just drained —
        // the replay is the only legitimate copy).
        if let Some(ps) = self.pending_steal.take() {
            if let Some(h) = ps.h_release {
                let _ = world.m.wait(self.me, h);
            }
            let _ = world.m.wait(self.me, ps.h_copy);
            if let Some(h) = ps.h_ckpt {
                let _ = world.m.wait(self.me, h);
            }
            if let QueueItem::Cont { mut th, .. } = ps.item {
                if let (WState::StealReap { victim }, Some(home)) = (&self.state, th.home.take())
                {
                    // The stolen stack's home still sits in the *victim's*
                    // region (adopt would have released it there).
                    match self.scheme {
                        AddressScheme::Uni => world.rt.per[*victim].uni.release(home),
                        AddressScheme::Iso => world.rt.iso.free(home),
                    }
                }
            }
        }
        self.pending = None;
        // Empty the deque: payload objects, suspended threads, fence-free
        // ticket index (the ticket *counter* survives — tickets must stay
        // unique across incarnations), and the pinned protocol words.
        let items = std::mem::take(&mut world.rt.per[self.me].items);
        for (_, item) in items.iter() {
            if let QueueItem::Cont { th, .. } = item {
                if let Some(home) = th.home {
                    match self.scheme {
                        AddressScheme::Uni => world.rt.per[self.me].uni.release(home),
                        AddressScheme::Iso => world.rt.iso.free(home),
                    }
                }
            }
        }
        drop(items);
        let saved = std::mem::take(&mut world.rt.per[self.me].saved);
        for (_, th) in saved.iter() {
            if th.home.is_some() {
                match self.scheme {
                    AddressScheme::Uni => {
                        // Greedy suspensions evacuated: the home was already
                        // released, only the evacuation accounting is open.
                        world.rt.per[self.me].evac.restore(th.stack_bytes() as u64);
                    }
                    AddressScheme::Iso => {
                        if let Some(home) = th.home {
                            world.rt.iso.free(home);
                        }
                    }
                }
            }
        }
        drop(saved);
        world.rt.per[self.me].ff_tickets.clear();
        for w in [DQ_LOCK, DQ_TOP, DQ_BOTTOM] {
            let addr = GlobalAddr::new(self.me, self.lay.dq_word(w));
            world.m.write_own(self.me, addr, 0);
        }
        // The ring slots too: fence-free reads "slot word == 0" as the
        // empty/overflow discriminator, so a stale key left over from the
        // previous incarnation would look like a live item to a thief and
        // trip the overflow assert on the new life's very first push.
        for idx in 0..self.lay.deque_cap as u64 {
            let slot = GlobalAddr::new(self.me, self.lay.dq_slot(idx));
            world.m.write_own(self.me, slot, 0);
        }
        world.rt.note_worker_evicted(self.me, tids);
        self.set_busy(world, now, false);
        self.state = WState::Idle;
        self.fail_streak = 0;
        let cost = world.m.ctx_switch(self.me);
        if world.m.rejoin_allowed() {
            self.my_epoch = new_epoch;
            world.rt.stats.rejoins += 1;
            Step::Yield(cost)
        } else {
            self.halted = true;
            Step::Halt
        }
    }

    // ------------------------------------------------------------------
    // continuation-lineage log (armed fault plans only)
    // ------------------------------------------------------------------

    /// Checkpoint header bytes mirrored to the thief's buddy at a
    /// continuation steal split: frame id, steal point, join-counter
    /// snapshot and retval-slot address (four words).
    pub(crate) const CKPT_HDR_BYTES: usize = 32;

    /// The thief's buddy: the nearest live higher rank (wrapping). The
    /// steal split's checkpoint put lands here, so either side of the
    /// split can be rebuilt after a single death. `None` when every peer
    /// is already dead.
    pub(crate) fn buddy(&self, m: &Machine, now: VTime) -> Option<WorkerId> {
        (1..self.n)
            .map(|k| (self.me + k) % self.n)
            .find(|&b| !m.is_dead(b, now))
    }

    /// Append a lineage record for thread origin `(f, arg, handle)`,
    /// currently incarnated as thread `tid`, under this worker and return
    /// its `(worker, index)` key.
    pub(crate) fn record_lineage(
        &mut self,
        world: &mut World,
        tid: u64,
        f: TaskFn,
        arg: Value,
        handle: ThreadHandle,
    ) -> (usize, usize) {
        let idx = world.rt.lineage.push(
            self.me,
            LineageRec {
                f,
                arg,
                handle,
                tid,
                done: DoneFlag::new(),
            },
        );
        (self.me, idx)
    }

    /// A thread is migrating to this worker (steal split take, greedy
    /// joiner migration): supersede its old lineage record and re-record
    /// it here, preserving the invariant that `lineage[w]` indexes exactly
    /// the threads worker `w` physically holds. Returns `false` when the
    /// old record was already claimed by a replayer — the caller holds a
    /// stale duplicate (its re-execution is already underway elsewhere)
    /// and must discard it instead of running it.
    #[must_use = "a false return means the thread is a stale duplicate"]
    pub(crate) fn rekey_lineage(&mut self, world: &mut World, th: &mut VThread) -> bool {
        let Some((w, i)) = th.replay_rec else { return true };
        if w == self.me {
            return true;
        }
        let rec = world.rt.lineage.rec_mut(w, i);
        if !rec.done.claim() {
            // Claimed while we raced for it: a confirmer drained `w`'s
            // lineage and a replay re-executes this thread already.
            return false;
        }
        let (f, arg, handle) = (rec.f, rec.arg.clone(), rec.handle);
        th.replay_rec = Some(self.record_lineage(world, th.tid, f, arg, handle));
        true
    }

    /// The thread completed (its entry flag is globally visible): its
    /// lineage record must never replay.
    pub(crate) fn mark_lineage_done(world: &mut World, th: &VThread) {
        if let Some((w, i)) = th.replay_rec {
            world.rt.lineage.rec_mut(w, i).done.set();
        }
    }

    /// Fail-stop lock-break: a thief that died between acquiring this
    /// worker's deque lock and its take step left the lock set forever —
    /// and can never have taken anything (the take is a single atomic
    /// step), so once the holder's death is lease-confirmed the owner may
    /// clear the word without losing an item. The lock word carries the
    /// holder's incarnation epoch (see [`lock_word`]): a holder that was
    /// evicted and rejoined since acquiring is equally gone — its old
    /// incarnation self-fenced and will never run the take — so an epoch
    /// gap breaks the lock too. Under the oracle detector the epoch clause
    /// is redundant (eviction requires confirmation, which this check sees
    /// first), keeping oracle runs byte-identical.
    /// Fabric charge of one owner-side lock-spin iteration: the lock
    /// probe's local get (charged inside the deque op / probe) plus the
    /// retry's bookkeeping `local_op`. Parking credits this per skipped
    /// iteration.
    pub(crate) const SPIN_CHARGE: u64 = 2;

    /// Whether an owner-side lock spin may park on the engine's wake
    /// mechanism instead of re-stepping every `local_op` of virtual time
    /// (see `Machine::park_on_own_word`). Parking reproduces the spin loop
    /// exactly only when each skipped iteration would have been a pure
    /// re-poll: no fault plan evaluating crash/suspicion windows per step,
    /// no dead-lock breaking, no watchdog stall clock, and no schedule
    /// exploration reordering steps.
    pub(crate) fn may_park(&self, world: &World) -> bool {
        world.rt.allow_park
            && !self.kills
            && !world.m.faults_active()
            && world.rt.watch.is_none()
    }

    pub(crate) fn break_dead_lock(&mut self, now: VTime, world: &mut World) {
        if !self.kills {
            return;
        }
        let addr = GlobalAddr::new(self.me, self.lay.dq_word(DQ_LOCK));
        let holder = world.m.read_own(self.me, addr);
        if holder == 0 {
            return;
        }
        let (holder_epoch, thief) = lock_holder(holder);
        if world.m.confirmed_dead(thief, now) || world.m.epoch_of(thief) > holder_epoch {
            world.m.write_own(self.me, addr, 0);
        }
    }

    // ------------------------------------------------------------------
    // owner-side deque dispatch (protocol families)
    // ------------------------------------------------------------------

    /// Push to the local deque under the run's protocol. Only CAS-lock can
    /// report [`DequeError::Busy`] (a thief holds the lock); the lock-free
    /// and fence-free owners are never blocked.
    pub(crate) fn dq_push(
        &mut self,
        world: &mut World,
        item: QueueItem,
    ) -> Result<VTime, DequeError> {
        match self.protocol {
            Protocol::CasLock => owner_push(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
                item,
            ),
            Protocol::LockFree => Ok(lf_owner_push(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
                item,
            )),
            Protocol::FenceFree => {
                let rt = &mut world.rt;
                Ok(ff_owner_push(
                    &mut world.m,
                    &mut rt.per[self.me],
                    &self.lay,
                    self.me,
                    item,
                ))
            }
        }
    }

    /// Pop the local deque's bottom under the run's protocol.
    pub(crate) fn dq_pop(
        &mut self,
        world: &mut World,
    ) -> Result<(Option<QueueItem>, VTime), DequeError> {
        match self.protocol {
            Protocol::CasLock => owner_pop(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
            ),
            Protocol::LockFree => lf_owner_pop(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
            ),
            Protocol::FenceFree => {
                let rt = &mut world.rt;
                ff_owner_pop(
                    &mut world.m,
                    &mut rt.per[self.me],
                    &mut rt.ff_claims,
                    &self.lay,
                    self.me,
                )
            }
        }
    }

    /// Fig.-4 parent fast-path pop under the run's protocol.
    pub(crate) fn dq_pop_parent(
        &mut self,
        world: &mut World,
        e: GlobalAddr,
    ) -> Result<(Option<QueueItem>, VTime), DequeError> {
        match self.protocol {
            Protocol::CasLock => owner_pop_parent(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
                e,
            ),
            Protocol::LockFree => lf_owner_pop_parent(
                &mut world.m,
                &mut world.rt.per[self.me].items,
                &self.lay,
                self.me,
                e,
            ),
            Protocol::FenceFree => {
                let rt = &mut world.rt;
                ff_owner_pop_parent(
                    &mut world.m,
                    &mut rt.per[self.me],
                    &mut rt.ff_claims,
                    &self.lay,
                    self.me,
                    e,
                )
            }
        }
    }

    /// Does a fork/yield need the CAS-lock "probe the lock before side
    /// effects" dance? The lock-free and fence-free owners never block, so
    /// their pushes are unconditional.
    pub(crate) fn needs_lock_probe(&self) -> bool {
        self.protocol == Protocol::CasLock
    }

    /// Run one application step of the current thread, producing an effect.
    pub(crate) fn advance_cur(&mut self, now: VTime, world: &mut World) -> Effect {
        let scale = self.compute_scale_at(now);
        let th = self.cur.as_mut().expect("advance without current thread");
        let mut ctx = TaskCtx {
            worker: self.me,
            app: &self.app,
            compute_scale: scale,
        };
        let _ = &mut world.m; // world reserved for future instrumentation
        th.advance(&mut ctx)
    }

}

impl Actor<World> for Worker {
    fn step(&mut self, me: WorkerId, now: VTime, world: &mut World) -> Step {
        debug_assert_eq!(me, self.me);
        if self.halted {
            return Step::Halt;
        }
        // Anchor the fault layer's retry clock to this step, then freeze if
        // this worker sits inside a crash-stop window: it makes no progress
        // (and issues no verbs) until the window ends.
        world.m.begin_step(me, now);
        if self.kills {
            if world.m.is_dead(me, now) {
                return self.step_killed(now, world);
            }
            if world.rt.unrecoverable.is_some() {
                // A fail-stop abort is latched: stop even mid-task (frames
                // dropped here are already part of the recorded loss — the
                // run has no result to protect).
                self.set_busy(world, now, false);
                self.halted = true;
                return Step::Halt;
            }
        }
        if let Some(until) = world.m.crashed_until(me, now) {
            world.rt.watch_crash_sleep(until);
            return Step::Yield(until.saturating_sub(now).max(VTime::ns(1)));
        }
        // Self-fence: the epoch registry moved past our view — a survivor
        // evicted us (lease expiry; under the message detector possibly a
        // false suspicion). Everything we hold is stale; quiesce and rejoin
        // as a fresh incarnation. Under the oracle detector eviction
        // requires a confirmed death, so the `is_dead` check above always
        // fires first and this branch is unreachable (byte-identical runs).
        if self.kills && world.m.epoch_of(me) > self.my_epoch {
            return self.step_evicted(now, world);
        }
        match self.state {
            WState::Run => self.step_run(now, world),
            WState::Idle => self.step_idle(now, world),
            WState::StealTake {
                victim,
                t0,
                bounds,
                vepoch,
            } => self.step_steal_take(now, world, victim, t0, bounds, vepoch),
            WState::StealClaim {
                victim,
                top,
                t0,
                vepoch,
            } => self.step_steal_claim(now, world, victim, top, t0, vepoch),
            WState::StealReap { victim } => self.step_steal_reap(now, world, victim),
        }
    }
}


mod die;
mod effects;
mod idle;
mod join;
