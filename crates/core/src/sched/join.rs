//! The JOIN slow paths: suspension + race commit per policy.

use super::*;

impl Worker {
    // ------------------------------------------------------------------
    // JOIN slow paths
    // ------------------------------------------------------------------

    /// Step B of a join that saw flag = 0. Re-reads nothing: commits the
    /// policy's blocking action. The producer may have slipped in since step
    /// A — the greedy race handles that; the stalling paths simply park the
    /// thread (the wait-queue poll will find the flag set immediately).
    pub(crate) fn join_slow(
        &mut self,
        now: VTime,
        world: &mut World,
        h: ThreadHandle,
    ) -> Result<VTime, (PendingOp, Busy)> {
        match self.policy {
            Policy::ContGreedy => self.join_greedy_commit(now, world, h),
            Policy::ContStalling | Policy::ChildFull => {
                let mut cost = VTime::ZERO;
                let mut th = self.cur.take().expect("join without thread");
                th.pending = Pending::AwaitValue;
                th.suspension = Some((now, h.entry.to_u64()));
                if self.policy == Policy::ContStalling && self.scheme == AddressScheme::Uni {
                    // Evacuate the stack (uni-address discipline); Full
                    // threads keep their private stack while suspended, and
                    // iso-address stacks never move.
                    if let Some(home) = th.home {
                        world.rt.per[self.me].uni.release(home);
                        world.rt.per[self.me]
                            .evac
                            .evacuate(th.stack_bytes() as u64);
                    }
                }
                cost += world.m.ctx_switch(self.me);
                self.wait_q.push_back(Waiting { th, handle: h });
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost)
            }
            Policy::ChildRtc => {
                // Bury the join: nest the scheduler on this stack.
                let mut th = self.cur.take().expect("join without thread");
                th.pending = Pending::AwaitValue;
                th.suspension = Some((now, h.entry.to_u64()));
                self.nest.push(Nested { th, handle: h });
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(world.m.local_op(self.me))
            }
        }
    }

    /// Fig. 4 JOIN slow path: save context, publish ctxloc, race on the flag.
    pub(crate) fn join_greedy_commit(
        &mut self,
        now: VTime,
        world: &mut World,
        h: ThreadHandle,
    ) -> Result<VTime, (PendingOp, Busy)> {
        let mut cost = VTime::ZERO;
        let mut th = self.cur.take().expect("join without thread");
        th.pending = Pending::AwaitValue;
        th.suspension = Some((now, h.entry.to_u64()));
        // Evacuate the stack and publish the saved context.
        let stack_bytes = th.stack_bytes();
        if self.scheme == AddressScheme::Uni {
            if let Some(home) = th.home {
                world.rt.per[self.me].uni.release(home);
                world.rt.per[self.me].evac.evacuate(stack_bytes as u64);
            }
        }
        let slot = world.rt.per[self.me].saved.insert(th);
        let (c_addr, c0) = alloc_saved_ctx(
            &mut world.m,
            &mut world.rt.per[self.me],
            &self.lay,
            self.strategy,
            self.me,
            slot,
            stack_bytes,
        );
        cost += c0;
        cost += world.m.ctx_switch(self.me);

        if h.consumers == 1 {
            // put E.ctxloc ← C, then race (Fig. 4 l. 45–46). Both verbs hit
            // the entry's rank, so Pipelined may post them together: the
            // same-QP clamp keeps the ctxloc visible before the AMO lands,
            // which is all the producer's loser path needs.
            let (old, c1) = if self.fabric == FabricMode::Pipelined {
                let at = now + cost;
                let h_ctx =
                    world
                        .m
                        .post_put_u64(self.me, h.entry.field(E_CTXLOC), c_addr.to_u64(), at);
                let h_faa = world.m.post_fetch_add_u64(self.me, h.entry.field(E_FLAG), 1, at);
                let (_, f1) = world.m.wait(self.me, h_ctx);
                let (old, f2) = world.m.wait(self.me, h_faa);
                (old, f1.max(f2).saturating_sub(at))
            } else {
                let c0 = world
                    .m
                    .put_u64(self.me, h.entry.field(E_CTXLOC), c_addr.to_u64());
                let (old, c1) = world.m.fetch_add_u64(self.me, h.entry.field(E_FLAG), 1);
                (old, c0 + c1)
            };
            cost += c1;
            if old == 0 {
                // Won: stay suspended; the producer will resume us.
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost)
            } else {
                // Lost: the producer finished in the window between step A
                // and now — resume ourselves (Fig. 4 l. 49–50).
                let mut th = world.rt.per[self.me].saved.take(slot);
                if self.scheme == AddressScheme::Uni && th.home.is_some() {
                    world.rt.per[self.me].evac.restore(stack_bytes as u64);
                }
                cost += free_robj(
                    &mut world.m,
                    &mut world.rt.per[self.me],
                    &self.lay,
                    self.strategy,
                    self.me,
                    c_addr,
                    SAVED_CTX_BYTES,
                );
                self.close_suspension(world, &mut th, now);
                let (v, c2) = self.get_retval(world, h);
                cost += c2;
                cost += self.free_entry_here(world, h);
                self.claim_home(world, &mut th);
                th.supply(v);
                self.start_thread(world, now, th);
                Ok(cost)
            }
        } else {
            // Multi-consumer waiter: claim an arrival slot and publish.
            let (old, c1) = world.m.fetch_add_u64(self.me, h.entry.field(E_FLAG), 1);
            cost += c1;
            if old & DONE_BIT != 0 {
                // Producer already done: self-resume and consume.
                let mut th = world.rt.per[self.me].saved.take(slot);
                if self.scheme == AddressScheme::Uni && th.home.is_some() {
                    world.rt.per[self.me].evac.restore(stack_bytes as u64);
                }
                cost += free_robj(
                    &mut world.m,
                    &mut world.rt.per[self.me],
                    &self.lay,
                    self.strategy,
                    self.me,
                    c_addr,
                    SAVED_CTX_BYTES,
                );
                self.close_suspension(world, &mut th, now);
                let (v, c2) = self.join_complete_fast_value(world, h);
                cost += c2;
                self.claim_home(world, &mut th);
                th.supply(v);
                self.start_thread(world, now, th);
                Ok(cost)
            } else {
                let idx = (old & (DONE_BIT - 1)) as u32;
                debug_assert!(idx < h.consumers);
                cost += world
                    .m
                    .put_u64(self.me, h.entry.field(EM_CTX0 + idx), c_addr.to_u64());
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost)
            }
        }
    }

    /// `join_complete_fast` without touching `self.cur` (used when resuming a
    /// saved thread rather than the current one).
    pub(crate) fn join_complete_fast_value(&mut self, world: &mut World, h: ThreadHandle) -> (Value, VTime) {
        let (v, mut cost) = self.get_retval(world, h);
        if h.consumers == 1 {
            cost += self.free_entry_here(world, h);
        } else {
            let (old, c) = world
                .m
                .fetch_add_u64(self.me, h.entry.field(EM_CONSUMED), 1);
            cost += c;
            if old + 1 == h.consumers as u64 {
                cost += self.free_entry_here(world, h);
            }
        }
        (v, cost)
    }

}
