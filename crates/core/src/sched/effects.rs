//! Run-state steps: advancing the current thread and applying its
//! effects (return/call/fork/join dispatch, compute, yield, RMA).

use super::*;

impl Worker {
    // ------------------------------------------------------------------
    // state steps
    // ------------------------------------------------------------------

    pub(crate) fn step_run(&mut self, now: VTime, world: &mut World) -> Step {
        if self.pending.is_none() {
            let eff = self.advance_cur(now, world);
            self.pending = Some(PendingOp::Effect(eff));
        }
        match self.apply_pending(now, world) {
            Ok(cost) => Step::Yield(cost),
            Err(Busy) => {
                // A dead thief can hold our deque lock forever; break it
                // once the death is lease-confirmed so the retry converges.
                self.break_dead_lock(now, world);
                let cost = world.m.local_op(self.me);
                if self.may_park(world) {
                    // The thief holds our lock across multi-µs verbs while
                    // each re-poll is one local op: park on the lock word
                    // instead of re-stepping every poll.
                    world
                        .m
                        .park_on_own_word(self.me, self.lay.dq_word(DQ_LOCK), cost, Self::SPIN_CHARGE);
                    Step::Park
                } else {
                    Step::Yield(cost)
                }
            }
        }
    }

    /// Apply `self.pending`; on `Busy` the operation is restored untouched.
    pub(crate) fn apply_pending(&mut self, now: VTime, world: &mut World) -> Result<VTime, Busy> {
        let op = self.pending.take().expect("no pending op");
        let result = match op {
            PendingOp::Effect(eff) => self.apply_effect(now, world, eff),
            PendingOp::JoinSlow { handle } => self.join_slow(now, world, handle),
        };
        if let Err((op, Busy)) = result {
            self.pending = Some(op);
            return Err(Busy);
        }
        Ok(result.ok().expect("checked"))
    }

    pub(crate) fn apply_effect(
        &mut self,
        now: VTime,
        world: &mut World,
        eff: Effect,
    ) -> Result<VTime, (PendingOp, Busy)> {
        match eff {
            Effect::Return(v) => {
                let th = self.cur.as_mut().expect("return without thread");
                if !th.would_complete() {
                    // Plain control transfer to the caller frame: free (the
                    // frame body's own cost is modelled by its effects).
                    th.pending = Pending::Resume(v);
                    Ok(VTime::ZERO)
                } else {
                    // die() probes the deque lock before any side effect, so
                    // on Busy the cloned value re-applies cleanly next step.
                    let keep = v.clone();
                    self.die(now, world, v)
                        .map_err(|b| (PendingOp::Effect(Effect::Return(keep)), b))
                }
            }
            Effect::Call { callee, arg, cont } => {
                // An ordinary subroutine call on the same stack: free.
                let th = self.cur.as_mut().expect("call without thread");
                th.frames.push(cont);
                th.pending = Pending::Start(callee, arg);
                Ok(VTime::ZERO)
            }
            Effect::Fork {
                child,
                arg,
                consumers,
                cont,
            } => self
                .fork(now, world, child, arg, consumers, cont)
                .map_err(|(child, arg, consumers, cont, b)| {
                    (
                        PendingOp::Effect(Effect::Fork {
                            child,
                            arg,
                            consumers,
                            cont,
                        }),
                        b,
                    )
                }),
            Effect::Join { handle, cont } => {
                // Step A: read the flag.
                let th = self.cur.as_mut().expect("join without thread");
                th.frames.push(cont);
                let (flag, cost) = world.m.get_u64(self.me, handle.entry.field(E_FLAG));
                let done = if handle.consumers == 1 {
                    flag != 0
                } else {
                    flag & DONE_BIT != 0
                };
                if done {
                    let (v, c2) = self.join_complete_fast(world, handle);
                    let th = self.cur.as_mut().expect("checked");
                    th.pending = Pending::Resume(v);
                    world.rt.stats.note_join_fast();
                    Ok(cost + c2)
                } else {
                    // Step B happens next step: the producer may slip in
                    // between, exercising the race paths.
                    self.pending = Some(PendingOp::JoinSlow { handle });
                    Ok(cost)
                }
            }
            Effect::Compute { dur, work, cont } => {
                let v = match work {
                    Some(w) => {
                        let mut ctx = TaskCtx {
                            worker: self.me,
                            app: &self.app,
                            compute_scale: self.compute_scale_at(now),
                        };
                        w(&mut ctx)
                    }
                    None => Value::Unit,
                };
                let th = self.cur.as_mut().expect("compute without thread");
                th.frames.push(cont);
                th.pending = Pending::Resume(v);
                Ok(dur)
            }
            Effect::Yield { cont } => self
                .yield_now(now, world, cont)
                .map_err(|(cont, b)| (PendingOp::Effect(Effect::Yield { cont }), b)),
            Effect::Rma { op, cont } => {
                let (v, cost) = self.do_rma(world, op);
                let th = self.cur.as_mut().expect("rma without thread");
                th.frames.push(cont);
                th.pending = Pending::Resume(v);
                Ok(cost)
            }
        }
    }

    /// Execute a one-sided global-memory access on behalf of the current
    /// task, charging the fabric cost.
    pub(crate) fn do_rma(&mut self, world: &mut World, op: RmaOp) -> (Value, VTime) {
        let me = self.me;
        match op {
            RmaOp::GetWord(addr) => {
                let (v, c) = world.m.get_u64(me, addr);
                (Value::U64(v), c)
            }
            RmaOp::PutWord(addr, v) => (Value::Unit, world.m.put_u64(me, addr, v)),
            RmaOp::FetchAdd(addr, add) => {
                let (v, c) = world.m.fetch_add_u64(me, addr, add);
                (Value::U64(v), c)
            }
            RmaOp::GetBlock(addr, words) => {
                let owner = addr.rank as usize;
                let mut out = Vec::with_capacity(words as usize);
                for i in 0..words {
                    out.push(world.m.read_own(owner, addr.field(i)));
                }
                let cost = world.m.get_bulk(me, owner, words as usize * 8);
                (Value::U64s(out.into()), cost)
            }
            RmaOp::PutBlock(addr, vals) => {
                let owner = addr.rank as usize;
                for (i, &v) in vals.iter().enumerate() {
                    world.m.write_own(owner, addr.field(i as u32), v);
                }
                let cost = world.m.put_bulk(me, owner, vals.len() * 8);
                (Value::Unit, cost)
            }
        }
    }

    /// Re-enqueue the current thread as ready work and go find something
    /// else (cooperative yield).
    pub(crate) fn yield_now(
        &mut self,
        now: VTime,
        world: &mut World,
        cont: Box<dyn Frame>,
    ) -> Result<VTime, (Box<dyn Frame>, Busy)> {
        match self.policy {
            Policy::ContGreedy | Policy::ContStalling => {
                // CAS-lock only: probe the deque lock before any side
                // effect (the other families never block the owner).
                if self.needs_lock_probe() {
                    let (lock, _) = world
                        .m
                        .get_u64(self.me, GlobalAddr::new(self.me, self.lay.dq_word(0)));
                    if lock != 0 {
                        return Err((cont, Busy));
                    }
                }
                let mut th = self.cur.take().expect("yield without thread");
                th.frames.push(cont);
                th.pending = Pending::Resume(Value::Unit);
                let cost = self
                    .dq_push(
                        world,
                        QueueItem::Cont {
                            th,
                            spawned_child: GlobalAddr::NULL,
                            since: now,
                        },
                    )
                    .expect("lock probed free within the same atomic step");
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost + world.m.ctx_restore(self.me))
            }
            Policy::ChildFull => {
                // Tied threads cannot migrate; a yield parks the thread in
                // the local wait queue with no entry to wait on — the next
                // round-robin poll resumes it unconditionally.
                let mut th = self.cur.take().expect("yield without thread");
                th.frames.push(cont);
                th.pending = Pending::AwaitValue;
                let cost = world.m.ctx_switch(self.me);
                self.wait_q.push_back(Waiting {
                    th,
                    handle: ThreadHandle::single(GlobalAddr::NULL),
                });
                self.state = WState::Idle;
                self.set_busy(world, now, false);
                Ok(cost)
            }
            Policy::ChildRtc => {
                panic!("run-to-completion threads cannot yield (§IV-B)")
            }
        }
    }

    /// Fast join completion: flag already set. Handles the multi-consumer
    /// consumed counter and entry freeing by the last consumer.
    pub(crate) fn join_complete_fast(&mut self, world: &mut World, h: ThreadHandle) -> (Value, VTime) {
        let (v, mut cost) = self.get_retval(world, h);
        if h.consumers == 1 {
            cost += self.free_entry_here(world, h);
        } else {
            let (old, c) =
                world
                    .m
                    .fetch_add_u64(self.me, h.entry.field(EM_CONSUMED), 1);
            cost += c;
            if old + 1 == h.consumers as u64 {
                cost += self.free_entry_here(world, h);
            }
        }
        (v, cost)
    }

    // ------------------------------------------------------------------
    // FORK
    // ------------------------------------------------------------------

    #[allow(clippy::type_complexity)]
    pub(crate) fn fork(
        &mut self,
        now: VTime,
        world: &mut World,
        child: TaskFn,
        arg: Value,
        consumers: u32,
        cont: Box<dyn Frame>,
    ) -> Result<VTime, (TaskFn, Value, u32, Box<dyn Frame>, Busy)> {
        // The push must succeed before any side effect; under CAS-lock,
        // probe the deque lock first so a Busy retry is side-effect free
        // (the lock-free and fence-free owners can never be blocked).
        if self.needs_lock_probe() {
            let (lock, _) = world
                .m
                .get_u64(self.me, GlobalAddr::new(self.me, self.lay.dq_word(0)));
            if lock != 0 {
                return Err((child, arg, consumers, cont, Busy));
            }
        }
        let mut cost = VTime::ZERO;
        let (h, c_alloc) = alloc_entry(
            &mut world.m,
            &mut world.rt.per[self.me],
            &self.lay,
            self.strategy,
            self.me,
            consumers,
            &mut world.rt.meta,
        );
        cost += c_alloc;

        if self.policy.is_cont() {
            let tid = world.rt.fresh_tid();
            // Continuation stealing: the parent's continuation becomes
            // stealable; the child runs immediately on this worker (plain
            // function-call cost — the work-first principle).
            let mut parent = self.cur.take().expect("fork without thread");
            parent.frames.push(cont);
            parent.pending = Pending::Resume(Value::Handle(h));
            let parent_home = parent.home;
            let push_cost = self
                .dq_push(
                    world,
                    QueueItem::Cont {
                        th: parent,
                        spawned_child: h.entry,
                        since: now,
                    },
                )
                .expect("lock probed free within the same atomic step");
            cost += push_cost;
            // Continuation-lineage log: the child's origin is pure data;
            // record it at the split so a survivor can re-execute it if
            // this worker dies before the child's entry flag is published.
            let rec = self
                .kills
                .then(|| self.record_lineage(world, tid, child, arg.clone(), h));
            let mut th = VThread::new(tid, child, arg, h);
            th.replay_rec = rec;
            let slot_len = world.rt.cfg.stack_slot;
            th.home = Some(self.place_stack(world, parent_home, slot_len));
            self.cur = Some(th);
            Ok(cost + world.m.local_op(self.me))
        } else {
            // Child stealing: push the descriptor, parent continues.
            let push_cost = self
                .dq_push(world, QueueItem::Child { f: child, arg, handle: h })
                .expect("lock probed free within the same atomic step");
            cost += push_cost;
            let th = self.cur.as_mut().expect("fork without thread");
            th.frames.push(cont);
            th.pending = Pending::Resume(Value::Handle(h));
            Ok(cost)
        }
    }

}
