//! First-claimer-wins deduplication primitives.
//!
//! Two runtime features need "at most one of N racers proceeds" decided at
//! the Rust level (each engine step is atomic, so no host-side locking is
//! needed — see docs/PROTOCOLS.md, "What the checker can and cannot see"):
//!
//! * **Lineage replay** (fail-stop recovery, PRs 4/6): a lineage record may
//!   be drained by several survivors racing over the same dead worker; the
//!   first to flip the record's [`DoneFlag`] owns the replay, later
//!   claimers see `done` and skip. The same flag also marks normal
//!   completion so a kill after completion never re-executes.
//! * **Fence-free stealing with multiplicity**: a task may be *taken* by
//!   more than one thief (no atomics on the wire), but only the first to
//!   claim its ticket in the shared [`ClaimSet`] may *execute* it.
//!
//! Both were originally open-coded as `bool` fields; this module is the one
//! shared implementation.

use crate::util::U64Map;

/// A one-way done/claimed flag with first-claimer-wins semantics.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct DoneFlag(bool);

impl DoneFlag {
    /// A flag that is still unclaimed.
    pub fn new() -> DoneFlag {
        DoneFlag(false)
    }

    /// A flag born already set (e.g. a lineage record for work that
    /// completed before the record was interesting).
    pub fn done() -> DoneFlag {
        DoneFlag(true)
    }

    /// Attempt to claim: returns `true` exactly once, for the first caller.
    #[must_use]
    pub fn claim(&mut self) -> bool {
        !std::mem::replace(&mut self.0, true)
    }

    /// Set unconditionally (completion marking, where nobody races).
    pub fn set(&mut self) {
        self.0 = true;
    }

    pub fn is_done(self) -> bool {
        self.0
    }
}

/// A set of `u64` tickets with first-claimer-wins insertion — the dedup
/// arbiter for fence-free stealing. Tickets are globally unique per deque
/// occupancy (worker id ⊕ per-worker counter), so the set only ever grows
/// within a run; entries for consumed tasks are retired by the claimer to
/// keep the map bounded by in-flight multiplicity, not run length.
#[derive(Debug, Default)]
pub struct ClaimSet {
    claimed: U64Map<()>,
}

impl ClaimSet {
    pub fn new() -> ClaimSet {
        ClaimSet::default()
    }

    /// Attempt to claim `ticket`: `true` exactly once per ticket.
    #[must_use]
    pub fn first_claim(&mut self, ticket: u64) -> bool {
        self.claimed.insert(ticket, ()).is_none()
    }

    /// Has `ticket` been claimed (by anyone)?
    pub fn contains(&self, ticket: u64) -> bool {
        self.claimed.contains_key(&ticket)
    }

    /// Retire a claimed ticket once its slot has been consumed and can
    /// never be observed again (owner-side reclaim). No-op if absent.
    pub fn retire(&mut self, ticket: u64) {
        self.claimed.remove(&ticket);
    }

    pub fn len(&self) -> usize {
        self.claimed.len()
    }

    pub fn is_empty(&self) -> bool {
        self.claimed.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn done_flag_first_claim_wins() {
        let mut f = DoneFlag::new();
        assert!(!f.is_done());
        assert!(f.claim(), "first claimer wins");
        assert!(f.is_done());
        assert!(!f.claim(), "second claimer loses");
        assert!(!f.claim(), "and keeps losing");
    }

    #[test]
    fn done_flag_set_and_born_done() {
        let mut f = DoneFlag::new();
        f.set();
        assert!(!f.claim(), "set() beats later claims");
        let mut d = DoneFlag::done();
        assert!(d.is_done());
        assert!(!d.claim());
        assert_eq!(DoneFlag::default(), DoneFlag::new());
    }

    #[test]
    fn claim_set_first_claim_per_ticket() {
        let mut s = ClaimSet::new();
        assert!(s.is_empty());
        assert!(s.first_claim(7));
        assert!(!s.first_claim(7), "double-take of one ticket is denied");
        assert!(s.first_claim(8), "distinct tickets are independent");
        assert!(s.contains(7) && s.contains(8) && !s.contains(9));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn claim_set_retire_bounds_the_map() {
        let mut s = ClaimSet::new();
        assert!(s.first_claim(1));
        s.retire(1);
        assert!(s.is_empty());
        // Tickets are unique per occupancy, so a retired ticket never
        // reappears in a real run; retire exists purely to bound memory.
        s.retire(42); // absent: no-op
    }
}
