//! # dcs-core — distributed continuation stealing / child stealing runtime
//!
//! The paper's contribution, reproduced on a simulated RDMA cluster
//! (`dcs-sim`): a work-stealing runtime for fork-join and future parallelism
//! on distributed memory, supporting four scheduling configurations
//! ([`Policy`]):
//!
//! * **continuation stealing** with the **greedy** RDMA join of Fig. 4
//!   (work-first fast path, fetch-and-add race, migration of suspended
//!   joiners) — the paper's headline configuration,
//! * continuation stealing with the **stalling** join of Fig. 3 (original
//!   MassiveThreads/DM),
//! * **child stealing** with fully-fledged (suspendable, tied) threads,
//! * child stealing with run-to-completion threads (buried joins).
//!
//! plus the two remote-object memory managers of §III-B
//! ([`FreeStrategy`]): the lock-queue baseline and the paper's *local
//! collection*.
//!
//! ## Writing programs
//!
//! Task code is continuation-passing: a task is a `fn(Value, &mut TaskCtx)
//! -> Effect`, and continuations are closures boxed with [`frame()`]. See
//! `dcs-apps` for complete benchmarks (PFor, RecPFor, UTS, LCS) and the
//! workspace `examples/` for commented walk-throughs.
//!
//! ```
//! use dcs_core::prelude::*;
//!
//! // Parallel sum of 0..n via binary fork-join.
//! fn sum(arg: Value, _: &mut TaskCtx) -> Effect {
//!     let (lo, hi) = arg.into_pair();
//!     let (lo, hi) = (lo.as_u64(), hi.as_u64());
//!     if hi - lo == 1 {
//!         return Effect::ret(lo);
//!     }
//!     let mid = (lo + hi) / 2;
//!     Effect::fork(sum, Value::pair(lo.into(), mid.into()), frame(move |h, _| {
//!         let h = h.as_handle();
//!         Effect::call(sum, Value::pair(mid.into(), hi.into()), frame(move |right, _| {
//!             let right = right.as_u64();
//!             Effect::join(h, frame(move |left, _| Effect::ret(left.as_u64() + right)))
//!         }))
//!     }))
//! }
//!
//! let cfg = RunConfig::new(4, Policy::ContGreedy).with_profile(profiles::test_profile());
//! let report = run(cfg, Program::new(sum, Value::pair(0u64.into(), 128u64.into())));
//! assert_eq!(report.result.as_u64(), (0..128).sum::<u64>());
//! ```

pub mod dedup;
pub mod deque;
pub mod entry;
pub mod frame;
pub mod layout;
pub mod policy;
pub mod remote_free;
pub mod runner;
pub mod sched;
pub mod stats;
pub mod trace;
pub mod util;
pub mod value;
pub mod watchdog;
pub mod world;

pub use dedup::{ClaimSet, DoneFlag};
pub use frame::{frame, ret_frame, AppCtx, Effect, Frame, HostWork, RmaOp, TaskCtx, TaskFn, VThread};
pub use policy::{AddressScheme, FreeStrategy, Policy, Protocol, RunConfig, SlowdownWindow, TraceLevel, VictimPolicy};
pub use runner::{run, run_full, run_hooked, Program, RunOutcome, RunReport};
pub use stats::{DelayReport, RunStats};
pub use trace::chrome_trace;
pub use value::{ThreadHandle, Value};
pub use watchdog::{Violation, Watchdog, WatchdogReport};
pub use world::UnrecoverableReason;

/// Convenient glob import for writing programs and harnesses.
pub mod prelude {
    pub use crate::frame::{frame, ret_frame, Effect, RmaOp, TaskCtx, TaskFn};
    pub use crate::policy::{AddressScheme, FreeStrategy, Policy, Protocol, RunConfig, SlowdownWindow, TraceLevel, VictimPolicy};
    pub use crate::runner::{run, run_full, run_hooked, Program, RunOutcome, RunReport};
    pub use crate::value::{ThreadHandle, Value};
    pub use crate::watchdog::{Violation, WatchdogReport};
    pub use dcs_sim::{profiles, FabricMode, FaultPlan, MachineProfile, Topology, VTime};
}
