//! Thread entries: the pinned-memory records behind the join protocols.
//!
//! A thread entry is allocated where a thread is spawned and acts as the
//! rendezvous between the joined (producer) and joining (consumer) threads
//! (§III-A). Both sides hold only its location ([`ThreadHandle`]), since
//! either thread may migrate at any time.
//!
//! Layouts (64-bit words):
//!
//! * single-consumer (Fig. 3 stalling / Fig. 4 greedy):
//!   `[ FLAG, CTXLOC ]` — `FLAG` is the completion flag (stalling) or the
//!   race counter (greedy); `CTXLOC` holds the suspended joiner's
//!   saved-context location (greedy only).
//! * multi-consumer future (§V-D), `n` consumers:
//!   `[ FLAG, CONSUMED, CTXLOC[0], …, CTXLOC[n-1] ]` — `FLAG` counts waiter
//!   arrivals in its low half and carries the DONE bit when the producer
//!   completes; `CONSUMED` counts value hand-offs so the *last* consumer
//!   frees the entry.
//!
//! The return value itself is conceptually stored in the entry
//! (`E.retval`); its Rust representation lives in the run-wide `retvals`
//! side table keyed by entry address, and fetching it is charged as a bulk
//! get of its wire size.
//!
//! Saved-context records (`ctxloc` targets) are 3-word remote objects:
//! `[ OWNER, SLOT, BYTES ]` — enough for the resumer to locate the evacuated
//! stack (in `WorkerShared::saved` of worker OWNER) and charge the stack
//! transfer.

use dcs_sim::{GlobalAddr, Machine, VTime, WorkerId};

use crate::layout::SegLayout;
use crate::policy::FreeStrategy;
use crate::remote_free::{alloc_robj, free_robj};
use crate::util::U64Map;
use crate::value::ThreadHandle;
use crate::world::EntryMeta;

/// Word index of the flag in every entry layout.
pub const E_FLAG: u32 = 0;
/// Word index of the single-consumer saved-context location.
pub const E_CTXLOC: u32 = 1;
/// Word index of the multi-consumer consumed counter.
pub const EM_CONSUMED: u32 = 1;
/// First ctxloc slot of a multi-consumer entry.
pub const EM_CTX0: u32 = 2;

/// DONE bit in a multi-consumer flag word (low 32 bits count arrivals).
pub const DONE_BIT: u64 = 1 << 32;

/// Pinned size of an entry with the given consumer count.
pub fn entry_bytes(consumers: u32) -> u32 {
    if consumers <= 1 {
        2 * 8
    } else {
        (2 + consumers) * 8
    }
}

/// Pinned size of a saved-context record.
pub const SAVED_CTX_BYTES: u32 = 3 * 8;

/// Allocate a thread entry in `me`'s segment (spawn site), registering its
/// metadata. Entries are remote objects — anybody may free them.
pub fn alloc_entry(
    m: &mut Machine,
    ws: &mut crate::world::WorkerShared,
    lay: &SegLayout,
    strategy: FreeStrategy,
    me: WorkerId,
    consumers: u32,
    meta: &mut U64Map<EntryMeta>,
) -> (ThreadHandle, VTime) {
    let bytes = entry_bytes(consumers);
    let (addr, cost) = alloc_robj(m, ws, lay, strategy, me, bytes);
    meta.insert(addr.to_u64(), EntryMeta { consumers, bytes });
    (ThreadHandle { entry: addr, consumers }, cost)
}

/// Free a thread entry from worker `me` (the last consumer), dropping its
/// metadata and any parked return value.
#[allow(clippy::too_many_arguments)]
pub fn free_entry(
    m: &mut Machine,
    owner_ws: &mut crate::world::WorkerShared,
    lay: &SegLayout,
    strategy: FreeStrategy,
    me: WorkerId,
    h: ThreadHandle,
    meta: &mut U64Map<EntryMeta>,
    retvals: &mut U64Map<crate::world::StoredVal>,
) -> VTime {
    let key = h.entry.to_u64();
    let em = meta
        .remove(&key)
        .expect("freeing an entry without metadata (double free?)");
    retvals.remove(&key);
    free_robj(m, owner_ws, lay, strategy, me, h.entry, em.bytes)
}

/// Allocate and fill a saved-context record for a thread suspended by `me`,
/// whose evacuated stack sits in `me`'s saved-slab slot `slot` with
/// `stack_bytes` of migratable state.
pub fn alloc_saved_ctx(
    m: &mut Machine,
    ws: &mut crate::world::WorkerShared,
    lay: &SegLayout,
    strategy: FreeStrategy,
    me: WorkerId,
    slot: u32,
    stack_bytes: usize,
) -> (GlobalAddr, VTime) {
    let (addr, mut cost) = alloc_robj(m, ws, lay, strategy, me, SAVED_CTX_BYTES);
    // Owner-local writes; one combined local touch.
    cost += m.put_u64(me, addr.field(0), me as u64);
    cost += m.put_u64(me, addr.field(1), slot as u64);
    cost += m.put_u64(me, addr.field(2), stack_bytes as u64);
    (addr, cost)
}

/// The fields of a saved-context record, as read by a (possibly remote)
/// resumer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SavedCtx {
    pub owner: WorkerId,
    pub slot: u32,
    pub stack_bytes: usize,
}

/// Read a saved-context record (one small get covers the 24-byte record).
pub fn read_saved_ctx(m: &mut Machine, me: WorkerId, addr: GlobalAddr) -> (SavedCtx, VTime) {
    let (owner, c1) = m.get_u64(me, addr.field(0));
    // The record is 24 contiguous bytes; a real implementation reads it in
    // one verb. Charge one round trip; the remaining words are free reads.
    let (slot, _) = m.get_u64(me, addr.field(1));
    let (bytes, _) = m.get_u64(me, addr.field(2));
    (
        SavedCtx {
            owner: owner as WorkerId,
            slot: slot as u32,
            stack_bytes: bytes as usize,
        },
        c1,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{Policy, RunConfig};
    use crate::world::WorkerShared;
    use dcs_sim::{profiles, MachineConfig};

    fn setup() -> (Machine, WorkerShared, SegLayout) {
        let cfg = RunConfig::new(2, Policy::ContGreedy);
        let lay = SegLayout::new(&cfg);
        let m = Machine::new(
            MachineConfig::new(2, profiles::test_profile())
                .with_seg_bytes(cfg.seg_bytes)
                .with_reserved(lay.reserved),
        );
        (m, WorkerShared::new(&cfg), lay)
    }

    #[test]
    fn entry_sizes() {
        assert_eq!(entry_bytes(1), 16);
        assert_eq!(entry_bytes(2), 32);
        assert_eq!(entry_bytes(3), 40);
    }

    #[test]
    fn entry_alloc_free_roundtrip() {
        let (mut m, mut ws, lay) = setup();
        let mut meta = U64Map::default();
        let mut retvals = U64Map::default();
        let st = FreeStrategy::LocalCollection;
        let (h, _) = alloc_entry(&mut m, &mut ws, &lay, st, 0, 1, &mut meta);
        assert_eq!(h.consumers, 1);
        assert!(meta.contains_key(&h.entry.to_u64()));
        // Fresh entries are zeroed (flag unset).
        let (flag, _) = m.get_u64(0, h.entry.field(E_FLAG));
        assert_eq!(flag, 0);
        free_entry(&mut m, &mut ws, &lay, st, 0, h, &mut meta, &mut retvals);
        assert!(meta.is_empty());
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn entry_double_free_panics() {
        let (mut m, mut ws, lay) = setup();
        let mut meta = U64Map::default();
        let mut retvals = U64Map::default();
        let st = FreeStrategy::LocalCollection;
        let (h, _) = alloc_entry(&mut m, &mut ws, &lay, st, 0, 1, &mut meta);
        free_entry(&mut m, &mut ws, &lay, st, 0, h, &mut meta, &mut retvals);
        free_entry(&mut m, &mut ws, &lay, st, 0, h, &mut meta, &mut retvals);
    }

    #[test]
    fn saved_ctx_roundtrip_local_and_remote() {
        let (mut m, mut ws, lay) = setup();
        let st = FreeStrategy::LocalCollection;
        let (addr, _) = alloc_saved_ctx(&mut m, &mut ws, &lay, st, 0, 42, 1792);
        let (ctx, local_cost) = read_saved_ctx(&mut m, 0, addr);
        assert_eq!(
            ctx,
            SavedCtx {
                owner: 0,
                slot: 42,
                stack_bytes: 1792
            }
        );
        let (ctx2, remote_cost) = read_saved_ctx(&mut m, 1, addr);
        assert_eq!(ctx, ctx2);
        assert!(remote_cost > local_cost);
    }

    #[test]
    fn multi_consumer_entry_has_slots() {
        let (mut m, mut ws, lay) = setup();
        let mut meta = U64Map::default();
        let st = FreeStrategy::LocalCollection;
        let (h, _) = alloc_entry(&mut m, &mut ws, &lay, st, 0, 3, &mut meta);
        // Write each ctxloc slot and read back through the fabric.
        for i in 0..3 {
            m.put_u64(0, h.entry.field(EM_CTX0 + i), 100 + i as u64);
        }
        for i in 0..3 {
            let (v, _) = m.get_u64(1, h.entry.field(EM_CTX0 + i));
            assert_eq!(v, 100 + i as u64);
        }
        assert_eq!(meta[&h.entry.to_u64()].bytes, 40);
    }
}
