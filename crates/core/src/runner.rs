//! Assembling and driving a complete run.
//!
//! [`run`] builds the simulated machine, places the root task on worker 0,
//! drives the discrete-event engine to completion and returns a
//! [`RunReport`] with the program result, the virtual execution time and all
//! statistics — everything the benchmark binaries need to regenerate the
//! paper's tables and figures.

use std::sync::Arc;

use dcs_sim::{Engine, FabricStats, Machine, MachineConfig, ScheduleHook, VTime};

use crate::frame::{AppCtx, TaskFn};
use crate::layout::SegLayout;
use crate::policy::RunConfig;
use crate::sched::Worker;
use crate::stats::RunStats;
use crate::value::Value;
use crate::watchdog::{Violation, WatchdogReport};
use crate::world::{RtShared, World};

/// One-shot machine initializer run before any worker steps (global-array
/// setup for PGAS programs).
pub type InitFn = Box<dyn FnOnce(&mut Machine) + Send>;

/// A program: root task + argument + application context shared by all
/// tasks (inputs, workload parameters), plus an optional machine
/// initializer for programs that use global (PGAS) memory.
pub struct Program {
    pub root: TaskFn,
    pub arg: Value,
    pub app: AppCtx,
    /// Runs once after the machine is built and before any worker steps —
    /// the place to allocate and fill global arrays (models the
    /// collective setup phase of a PGAS program).
    pub init: Option<InitFn>,
}

impl Program {
    pub fn new(root: TaskFn, arg: impl Into<Value>) -> Program {
        Program {
            root,
            arg: arg.into(),
            app: Arc::new(()),
            init: None,
        }
    }

    pub fn with_app<T: Send + Sync + 'static>(mut self, app: T) -> Program {
        self.app = Arc::new(app);
        self
    }

    pub fn with_init(mut self, f: impl FnOnce(&mut Machine) + Send + 'static) -> Program {
        self.init = Some(Box::new(f));
        self
    }
}

/// How a run ended.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum RunOutcome {
    /// The root task completed and published its result.
    Complete,
    /// A fail-stop kill destroyed state that genuinely cannot be
    /// re-executed (ChildFull's private stacks, or a loss that leaves no
    /// survivor): the run aborted with a diagnostic instead of hanging.
    /// `frames` are the thread ids lost with `worker`; `reason` is the
    /// typed cause.
    Unrecoverable {
        worker: usize,
        frames: Vec<u64>,
        reason: crate::world::UnrecoverableReason,
    },
}

impl RunOutcome {
    pub fn is_complete(&self) -> bool {
        matches!(self, RunOutcome::Complete)
    }
}

/// Everything a run produces.
pub struct RunReport {
    /// How the run ended; `result` is meaningful only when `Complete`.
    pub outcome: RunOutcome,
    /// The root task's return value ([`Value::Unit`] on an unrecoverable
    /// abort).
    pub result: Value,
    /// Virtual makespan (time the last worker halted).
    pub elapsed: VTime,
    /// Scheduler statistics (Table II metrics, Fig. 7 series).
    pub stats: RunStats,
    /// Fabric totals across all workers.
    pub fabric: FabricStats,
    /// Total host-side engine steps (simulation effort).
    pub steps: u64,
    /// Total threads spawned (root included).
    pub threads: u64,
    /// Sum of per-worker busy time; `busy_total / (P * elapsed)` is the
    /// busy fraction.
    pub busy_total: VTime,
    /// Peak uni-address region usage across workers (bytes); zero when the
    /// run used the iso-address scheme.
    pub uni_peak: u64,
    /// Peak iso-address pinned space (bytes); zero under uni-address.
    pub iso_peak: u64,
    /// Total uni-address migration conflicts across workers.
    pub uni_conflicts: u64,
    /// Peak evacuation-region bytes across workers.
    pub evac_peak: u64,
    /// Peak ChildFull stack count across workers.
    pub full_stack_peak: u64,
    /// Invariant-watchdog findings; `None` when the run carried no watchdog
    /// (the default for fault-free runs).
    pub watchdog: Option<WatchdogReport>,
}

impl RunReport {
    /// Parallel efficiency against an externally computed ideal time
    /// (`T1 / P`), as plotted in Fig. 6.
    pub fn efficiency(&self, ideal: VTime) -> f64 {
        ideal.as_ns() as f64 / self.elapsed.as_ns() as f64
    }
}

/// Execute `program` under `cfg`, driving the simulation to completion.
pub fn run(cfg: RunConfig, program: Program) -> RunReport {
    run_full(cfg, program).0
}

/// Like [`run`], but also returns the final [`Machine`] so callers can
/// inspect global (PGAS) memory after the program finishes.
pub fn run_full(cfg: RunConfig, program: Program) -> (RunReport, Machine) {
    run_inner(cfg, program, |e| e.run())
}

/// Like [`run`], but the engine's actor-step order is chosen by `hook`
/// (see [`ScheduleHook`]) — the seam `dcs-check` drives interleaving
/// exploration through.
pub fn run_hooked<H: ScheduleHook + ?Sized>(
    cfg: RunConfig,
    program: Program,
    hook: &mut H,
) -> RunReport {
    run_inner(cfg, program, |e| {
        // Exploration reorders actor steps, which breaks the parked-spin
        // wake-instant computation: keep the spin loops stepping.
        e.world.rt.allow_park = false;
        e.run_with_hook(hook)
    })
    .0
}

fn run_inner(
    mut cfg: RunConfig,
    program: Program,
    drive: impl FnOnce(&mut Engine<World, Worker>) -> dcs_sim::engine::EngineReport,
) -> (RunReport, Machine) {
    assert!(cfg.workers >= 1, "need at least one worker");
    // Fail-stop kills make leaks unavoidable (entries on a dead worker's
    // segment can never be freed) and recovery re-executes work, so the
    // strict end-of-run asserts do not apply: correctness is judged on the
    // result and the watchdog instead. A message-based detector can evict
    // a *live* worker on suspicion — the same recovery machinery fires with
    // no kill scheduled — so suspicion-capable plans drop strict too.
    cfg.strict = cfg.strict && cfg.fault.kill.is_empty() && !cfg.fault.suspicion_possible();
    let lay = SegLayout::new(&cfg);
    let mut machine = Machine::new(
        MachineConfig::new(cfg.workers, cfg.profile.clone())
            .with_seg_bytes(cfg.seg_bytes)
            .with_reserved(lay.reserved)
            .with_topology(cfg.topology.clone())
            .with_faults(cfg.fault.clone())
            .with_fabric(cfg.fabric)
            .with_doorbell(cfg.doorbell),
    );
    if let Some(init) = program.init {
        init(&mut machine);
    }
    let max_steps = cfg.max_steps;
    let strict = cfg.strict;
    let seed = cfg.seed;
    let workers = cfg.workers;
    let rt = RtShared::new(cfg);
    let mut world = World { m: machine, rt };

    let actors: Vec<Worker> = (0..workers)
        .map(|w| {
            let root = if w == 0 {
                Some((program.root, program.arg.clone()))
            } else {
                None
            };
            Worker::new(w, &mut world, lay, Arc::clone(&program.app), root, seed)
        })
        .collect();

    let mut engine = Engine::new(world, actors)
        .with_max_steps(max_steps)
        .with_waker(|w, out| w.m.take_wakeups(out));
    let report = drive(&mut engine);
    let (world, _actors) = engine.into_parts();
    let World { m, mut rt } = world;

    rt.watch_settle_lineage();
    let mut watchdog = rt.watch_finish();
    let outcome = match rt.unrecoverable.take() {
        Some((worker, frames, reason)) => RunOutcome::Unrecoverable {
            worker,
            frames,
            reason,
        },
        None => RunOutcome::Complete,
    };
    let result = match rt.result.take() {
        Some(v) => v,
        None => {
            assert!(
                !outcome.is_complete(),
                "run finished without a root result"
            );
            Value::Unit
        }
    };
    if strict {
        assert!(
            rt.meta.is_empty(),
            "{} thread entries leaked",
            rt.meta.len()
        );
        assert!(
            rt.retvals.is_empty(),
            "{} return values leaked",
            rt.retvals.len()
        );
        assert_eq!(
            rt.stats.threads_spawned, rt.stats.threads_died,
            "thread spawn/death imbalance"
        );
        for (w, ws) in rt.per.iter().enumerate() {
            assert_eq!(ws.uni.live(), 0, "worker {w} leaked uni-address slots");
            assert_eq!(ws.evac.live_bytes(), 0, "worker {w} leaked evacuations");
            assert_eq!(ws.full_stacks_live, 0, "worker {w} leaked full stacks");
        }
        assert_eq!(rt.iso.live(), 0, "iso-address slots leaked");
    } else if let Some(wd) = &mut watchdog {
        // Non-strict with a watchdog (the dcs-check configuration): route
        // the same end-of-run accounting into the report as violations
        // instead of panicking, so an exploring checker sees them as oracle
        // findings.
        let mut leak = |what: &'static str, count: u64| {
            if count > 0 {
                wd.violations.push(Violation::Leak { what, count });
            }
        };
        leak("thread entries", rt.meta.len() as u64);
        leak("return values", rt.retvals.len() as u64);
        leak(
            "uni-address slots",
            rt.per.iter().map(|ws| ws.uni.live() as u64).sum(),
        );
        leak(
            "evacuated bytes",
            rt.per.iter().map(|ws| ws.evac.live_bytes()).sum(),
        );
        leak(
            "full stacks",
            rt.per.iter().map(|ws| ws.full_stacks_live).sum(),
        );
        leak("iso-address slots", rt.iso.live() as u64);
    }
    if let Some(wd) = &watchdog {
        if strict && !wd.is_clean() {
            panic!("invariant watchdog tripped:\n{wd}");
        }
    }

    let uni_peak = rt.per.iter().map(|w| w.uni.stats().peak_bytes).max().unwrap_or(0);
    let uni_conflicts = rt.per.iter().map(|w| w.uni.stats().conflicts).sum();
    let evac_peak = rt.per.iter().map(|w| w.evac.peak_bytes()).max().unwrap_or(0);
    let full_stack_peak = rt.per.iter().map(|w| w.full_stacks_peak).max().unwrap_or(0);
    let iso_peak = rt.iso.peak_bytes();

    let rep = RunReport {
        outcome,
        result,
        elapsed: report.end_time,
        busy_total: rt.stats.busy_total,
        threads: rt.stats.threads_spawned,
        stats: rt.stats,
        fabric: m.stats_total(),
        steps: report.steps,
        uni_peak,
        iso_peak,
        uni_conflicts,
        evac_peak,
        full_stack_peak,
        watchdog,
    };
    (rep, m)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::{frame, Effect, TaskCtx};
    use crate::policy::{Policy, TraceLevel};
    use dcs_sim::profiles;

    /// fib(n) via naive fork-join — touches spawn, join, die on every path.
    fn fib(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n < 2 {
            return Effect::ret(n);
        }
        Effect::fork(
            fib,
            n - 1,
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    fib,
                    n - 2,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(
                            h,
                            frame(move |a, _| Effect::ret(a.as_u64() + b)),
                        )
                    }),
                )
            }),
        )
    }

    fn fib_serial(n: u64) -> u64 {
        if n < 2 {
            n
        } else {
            fib_serial(n - 1) + fib_serial(n - 2)
        }
    }

    fn run_fib(policy: Policy, workers: usize, n: u64) -> RunReport {
        let cfg = RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        run(cfg, Program::new(fib, n))
    }

    #[test]
    fn fib_single_worker_all_policies() {
        for policy in Policy::ALL {
            let r = run_fib(policy, 1, 10);
            assert_eq!(r.result.as_u64(), fib_serial(10), "{policy:?}");
        }
    }

    #[test]
    fn fib_multi_worker_all_policies() {
        for policy in Policy::ALL {
            for workers in [2, 4, 7] {
                let r = run_fib(policy, workers, 12);
                assert_eq!(
                    r.result.as_u64(),
                    fib_serial(12),
                    "{policy:?} workers={workers}"
                );
                assert!(r.threads > 100, "{policy:?} must spawn threads");
            }
        }
    }

    #[test]
    fn steals_happen_under_contention() {
        let r = run_fib(Policy::ContGreedy, 4, 14);
        assert!(r.stats.steals_ok > 0, "expected successful steals");
        assert!(
            r.stats.avg_stolen_bytes() > 300,
            "continuation steals move stacks, got {} B",
            r.stats.avg_stolen_bytes()
        );
        let r = run_fib(Policy::ChildFull, 4, 14);
        assert!(r.stats.steals_ok > 0);
        assert!(
            r.stats.avg_stolen_bytes() < 100,
            "child steals move descriptors, got {} B",
            r.stats.avg_stolen_bytes()
        );
    }

    #[test]
    fn determinism_same_seed_same_everything() {
        let a = run_fib(Policy::ContGreedy, 3, 12);
        let b = run_fib(Policy::ContGreedy, 3, 12);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.stats.steals_ok, b.stats.steals_ok);
        assert_eq!(a.steps, b.steps);
    }

    #[test]
    fn pipelined_fabric_is_correct_all_policies() {
        use dcs_sim::FabricMode;
        for policy in Policy::ALL {
            for workers in [1, 4] {
                let cfg = RunConfig::new(workers, policy)
                    .with_profile(profiles::test_profile())
                    .with_seg_bytes(64 << 20)
                    .with_fabric(FabricMode::Pipelined);
                let r = run(cfg, Program::new(fib, 12u64));
                assert_eq!(
                    r.result.as_u64(),
                    fib_serial(12),
                    "{policy:?} workers={workers}"
                );
                if let Some(wd) = r.watchdog {
                    assert!(wd.is_clean(), "{policy:?}: {wd}");
                }
            }
        }
    }

    #[test]
    fn pipelined_fabric_overlaps_and_wins_on_real_latencies() {
        use dcs_sim::FabricMode;
        let cfg = |mode| {
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::itoa())
                .with_seg_bytes(64 << 20)
                .with_fabric(mode)
        };
        let blk = run(cfg(FabricMode::Blocking), Program::new(fib, 14u64));
        let pip = run(cfg(FabricMode::Pipelined), Program::new(fib, 14u64));
        assert_eq!(blk.result, pip.result);
        assert!(pip.stats.steals_ok > 0, "need steals to exercise overlap");
        // The thief posts the lock-release put and the stack copy get
        // concurrently; retiring them under one wait must show up both in
        // the queue depth and in virtual time.
        assert!(
            pip.fabric.max_inflight >= 2,
            "pipelined steals must hold >1 verb in flight, got {}",
            pip.fabric.max_inflight
        );
        assert_eq!(blk.fabric.max_inflight, 1, "blocking never overlaps");
        assert_eq!(blk.fabric.cq_polls, 0, "blocking wrappers never poll");
        assert!(
            pip.stats.avg_steal_latency() < blk.stats.avg_steal_latency(),
            "overlap must shorten steals: pipelined {:?} vs blocking {:?}",
            pip.stats.avg_steal_latency(),
            blk.stats.avg_steal_latency()
        );
    }

    #[test]
    fn pipelined_fabric_is_deterministic() {
        use dcs_sim::FabricMode;
        let go = || {
            let cfg = RunConfig::new(4, Policy::ChildRtc)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fabric(FabricMode::Pipelined);
            run(cfg, Program::new(fib, 13u64))
        };
        let (a, b) = (go(), go());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.steals_ok, b.stats.steals_ok);
        assert_eq!(a.fabric, b.fabric);
    }

    #[test]
    fn pipelined_fib_correct_under_transient_faults_all_policies() {
        use dcs_sim::{FabricMode, FaultPlan};
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fabric(FabricMode::Pipelined)
                .with_fault_plan(FaultPlan::transient(0.02, 7));
            let r = run(cfg, Program::new(fib, 12u64));
            assert_eq!(r.result.as_u64(), fib_serial(12), "{policy:?}");
            let wd = r.watchdog.expect("watchdog on by default");
            assert!(wd.is_clean(), "{policy:?}: {wd}");
        }
    }

    #[test]
    fn pipelined_child_rtc_recovers_from_fail_stop_kill() {
        use dcs_sim::{FabricMode, FaultPlan};
        let healthy = run(
            kill_cfg(Policy::ChildRtc, FaultPlan::none()).with_fabric(FabricMode::Pipelined),
            Program::new(fib, 14u64),
        );
        let want = fib_serial(14);
        // Same early/mid/late kill sweep as the blocking variant: a kill can
        // land between a steal's post and its reap, which must not lose the
        // in-flight child (the lineage record is written at post time).
        for frac in [4u64, 2, 1] {
            let t = healthy.elapsed / (frac + 1) * frac / 2;
            let cfg = kill_cfg(Policy::ChildRtc, FaultPlan::none().with_kill(2, t))
                .with_fabric(FabricMode::Pipelined);
            let r = run(cfg, Program::new(fib, 14u64));
            assert_eq!(r.outcome, RunOutcome::Complete, "kill at {t}");
            assert_eq!(r.result.as_u64(), want, "kill at {t}");
            assert_eq!(r.stats.workers_lost, 1, "kill at {t}");
        }
    }

    #[test]
    fn different_seeds_differ() {
        let cfg = |s| {
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seed(s)
                .with_seg_bytes(64 << 20)
        };
        let a = run(cfg(1), Program::new(fib, 13u64));
        let b = run(cfg(2), Program::new(fib, 13u64));
        assert_eq!(a.result, b.result, "result is schedule-independent");
        // Timings almost surely differ with different victim choices.
        assert_ne!(a.steps, b.steps);
    }

    #[test]
    fn fib_correct_under_transient_faults_all_policies() {
        use dcs_sim::FaultPlan;
        for policy in Policy::ALL {
            let cfg = RunConfig::new(4, policy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fault_plan(FaultPlan::transient(0.02, 7));
            let r = run(cfg, Program::new(fib, 12u64));
            assert_eq!(r.result.as_u64(), fib_serial(12), "{policy:?}");
            assert!(r.fabric.retries > 0, "{policy:?}: fault plan must bite");
            let wd = r.watchdog.expect("fault runs carry a watchdog");
            assert!(wd.is_clean(), "{policy:?}: {wd}");
        }
    }

    #[test]
    fn faulty_runs_are_deterministic() {
        use dcs_sim::FaultPlan;
        let mk = || {
            RunConfig::new(3, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fault_plan(FaultPlan::transient(0.05, 42))
        };
        let a = run(mk(), Program::new(fib, 12u64));
        let b = run(mk(), Program::new(fib, 12u64));
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.fabric.retries, b.fabric.retries);
        assert_eq!(a.stats.blacklist_skips, b.stats.blacklist_skips);
    }

    #[test]
    fn crash_window_delays_but_completes() {
        use dcs_sim::{CrashWindow, FaultPlan, VTime};
        let crash = CrashWindow {
            worker: 1,
            from: VTime::us(5),
            until: VTime::us(500),
        };
        let cfg = |plan: FaultPlan| {
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fault_plan(plan)
        };
        let healthy = run(cfg(FaultPlan::none()), Program::new(fib, 12u64));
        let crashed = run(
            cfg(FaultPlan::none().with_crash(crash)),
            Program::new(fib, 12u64),
        );
        assert_eq!(crashed.result.as_u64(), fib_serial(12));
        assert!(
            crashed.elapsed >= healthy.elapsed,
            "losing a worker cannot speed the run up"
        );
        assert!(crashed.watchdog.expect("watchdog on").is_clean());
    }

    /// Binary fork-join over `n` leaves, each burning 50 µs of scaled
    /// compute — the workload that makes compute-slowdown windows visible.
    fn leaves(arg: Value, ctx: &mut TaskCtx) -> Effect {
        let n = arg.as_u64();
        if n == 1 {
            return Effect::compute(
                ctx.scaled(dcs_sim::VTime::us(50)),
                frame(|_, _| Effect::ret(1u64)),
            );
        }
        let half = n / 2;
        Effect::fork(
            leaves,
            half,
            frame(move |h, _| {
                let h = h.as_handle();
                Effect::call(
                    leaves,
                    n - half,
                    frame(move |b, _| {
                        let b = b.as_u64();
                        Effect::join(h, frame(move |a, _| Effect::ret(a.as_u64() + b)))
                    }),
                )
            }),
        )
    }

    #[test]
    fn slowdown_window_slows_only_while_open() {
        use dcs_sim::VTime;
        let base = RunConfig::new(2, Policy::ContGreedy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20);
        let healthy = run(base.clone(), Program::new(leaves, 16u64));
        assert_eq!(healthy.result.as_u64(), 16);
        // A 100× slowdown of worker 0 covering the whole run must hurt; the
        // same window closed before the run starts must change nothing.
        let slowed = run(
            base.clone().with_slowdown(0, 100.0, VTime::ZERO, VTime::MAX),
            Program::new(leaves, 16u64),
        );
        assert!(slowed.elapsed > healthy.elapsed);
        let noop = run(
            base.clone()
                .with_slowdown(0, 100.0, VTime::MAX - VTime::ns(1), VTime::MAX),
            Program::new(leaves, 16u64),
        );
        assert_eq!(noop.elapsed, healthy.elapsed, "closed window must be free");
        // And the legacy wrapper is exactly the whole-run window.
        let wrapped = run(base.with_straggler(0, 100.0), Program::new(leaves, 16u64));
        assert_eq!(wrapped.elapsed, slowed.elapsed);
    }

    /// Shared config for fail-stop tests: 4 workers, child run-to-completion.
    fn kill_cfg(policy: Policy, plan: dcs_sim::FaultPlan) -> RunConfig {
        RunConfig::new(4, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20)
            .with_fault_plan(plan)
    }

    #[test]
    fn child_rtc_recovers_from_fail_stop_kill() {
        use dcs_sim::FaultPlan;
        let healthy = run_fib(Policy::ChildRtc, 4, 14);
        let want = fib_serial(14);
        // Kill worker 2 at several points across the healthy run's span so
        // we exercise early (little stolen yet), mid, and late kills.
        let mut replayed_somewhere = false;
        for frac in [4u64, 2, 1] {
            let t = healthy.elapsed / (frac + 1) * frac / 2;
            let r = run(
                kill_cfg(Policy::ChildRtc, FaultPlan::none().with_kill(2, t)),
                Program::new(fib, 14u64),
            );
            assert_eq!(r.outcome, RunOutcome::Complete, "kill at {t}");
            assert_eq!(r.result.as_u64(), want, "kill at {t}");
            assert_eq!(r.stats.workers_lost, 1, "kill at {t}");
            replayed_somewhere |= r.stats.tasks_replayed > 0;
            assert!(
                r.elapsed >= healthy.elapsed,
                "losing a worker cannot speed the run up (kill at {t})"
            );
        }
        assert!(replayed_somewhere, "at least one kill must force re-execution");
    }

    #[test]
    fn child_rtc_recovers_from_half_the_machine_dying() {
        use dcs_sim::FaultPlan;
        let healthy = run_fib(Policy::ChildRtc, 4, 14);
        let t = healthy.elapsed / 3;
        // W/2 = 2 victims, staggered so the second dies while recovery of
        // the first may still be in flight (cascading loss).
        let plan = FaultPlan::none()
            .with_kill(2, t)
            .with_kill(3, t + healthy.elapsed / 5);
        let r = run(kill_cfg(Policy::ChildRtc, plan), Program::new(fib, 14u64));
        assert_eq!(r.outcome, RunOutcome::Complete);
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert_eq!(r.stats.workers_lost, 2);
    }

    #[test]
    fn continuation_policies_recover_from_fail_stop_kill() {
        use dcs_sim::FaultPlan;
        for policy in [Policy::ContGreedy, Policy::ContStalling] {
            let healthy = run_fib(policy, 4, 14);
            let want = fib_serial(14);
            // Early / mid / late kills, as in the ChildRtc sweep: a kill
            // can land while continuations are suspended at joins, parked
            // in deques, or mid-steal.
            for frac in [4u64, 2, 1] {
                let t = healthy.elapsed / (frac + 1) * frac / 2;
                let r = run(
                    kill_cfg(policy, FaultPlan::none().with_kill(1, t)),
                    Program::new(fib, 14u64),
                );
                assert_eq!(r.outcome, RunOutcome::Complete, "{policy:?} kill at {t}");
                assert_eq!(r.result.as_u64(), want, "{policy:?} kill at {t}");
                assert_eq!(r.stats.workers_lost, 1, "{policy:?} kill at {t}");
            }
        }
    }

    #[test]
    fn pipelined_continuation_policies_recover_from_fail_stop_kill() {
        use dcs_sim::{FabricMode, FaultPlan};
        for policy in [Policy::ContGreedy, Policy::ContStalling] {
            let healthy = run(
                kill_cfg(policy, FaultPlan::none()).with_fabric(FabricMode::Pipelined),
                Program::new(fib, 14u64),
            );
            let want = fib_serial(14);
            for frac in [4u64, 2, 1] {
                let t = healthy.elapsed / (frac + 1) * frac / 2;
                let cfg = kill_cfg(policy, FaultPlan::none().with_kill(1, t))
                    .with_fabric(FabricMode::Pipelined);
                let r = run(cfg, Program::new(fib, 14u64));
                assert_eq!(r.outcome, RunOutcome::Complete, "{policy:?} kill at {t}");
                assert_eq!(r.result.as_u64(), want, "{policy:?} kill at {t}");
            }
        }
    }

    #[test]
    fn child_full_aborts_with_typed_reason_on_kill() {
        use dcs_sim::FaultPlan;
        let policy = Policy::ChildFull;
        let healthy = run_fib(policy, 4, 14);
        let plan = FaultPlan::none().with_kill(1, healthy.elapsed / 3);
        let r = run(kill_cfg(policy, plan), Program::new(fib, 14u64));
        match &r.outcome {
            RunOutcome::Unrecoverable { worker, reason, .. } => {
                assert_eq!(*worker, 1);
                assert_eq!(*reason, crate::world::UnrecoverableReason::FullStacks);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
        let wd = r.watchdog.expect("fault runs carry a watchdog");
        assert!(
            wd.violations
                .iter()
                .any(|v| matches!(v, crate::watchdog::Violation::WorkerLost { .. })),
            "abort must name the lost worker"
        );
    }

    #[test]
    fn killing_worker_zero_re_elects_the_root_holder() {
        use dcs_sim::FaultPlan;
        let want = fib_serial(14);
        for policy in [Policy::ChildRtc, Policy::ContGreedy, Policy::ContStalling] {
            let healthy = run_fib(policy, 4, 14);
            let plan = FaultPlan::none().with_kill(0, healthy.elapsed / 3);
            let r = run(kill_cfg(policy, plan), Program::new(fib, 14u64));
            assert_eq!(r.outcome, RunOutcome::Complete, "{policy:?}");
            assert_eq!(r.result.as_u64(), want, "{policy:?}");
            assert!(
                r.stats.tasks_replayed > 0,
                "{policy:?}: a root kill must force re-election via replay"
            );
        }
    }

    #[test]
    fn killing_every_worker_aborts_with_all_dead_reason() {
        use dcs_sim::{FaultPlan, VTime};
        let healthy = run_fib(Policy::ContGreedy, 2, 12);
        let t = healthy.elapsed / 3;
        // Both workers die inside one lease window: nobody survives to
        // replay, so the run must abort (typed), never hang.
        let plan = FaultPlan::none()
            .with_kill(0, t)
            .with_kill(1, t + VTime::us(1));
        let r = run(
            RunConfig::new(2, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_fault_plan(plan),
            Program::new(fib, 12u64),
        );
        match &r.outcome {
            RunOutcome::Unrecoverable { reason, .. } => {
                assert_eq!(*reason, crate::world::UnrecoverableReason::AllWorkersDead);
            }
            other => panic!("expected Unrecoverable, got {other:?}"),
        }
    }

    #[test]
    fn continuation_recovery_mirrors_steal_splits() {
        use dcs_sim::FaultPlan;
        // An armed (kill-free) continuation run records lineage at every
        // fork and mirrors headers at every steal split; the kill-free
        // answer and the mirror traffic must both be there.
        let r = run(
            kill_cfg(Policy::ContGreedy, FaultPlan::none().with_recovery()),
            Program::new(fib, 14u64),
        );
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert!(r.stats.steals_ok > 0, "need steals to exercise mirroring");
        assert_eq!(
            r.stats.ckpt_puts, r.stats.steals_ok,
            "every continuation steal split mirrors one header"
        );
    }

    #[test]
    fn killed_runs_are_deterministic() {
        use dcs_sim::FaultPlan;
        let healthy = run_fib(Policy::ChildRtc, 4, 13);
        let mk = || {
            kill_cfg(
                Policy::ChildRtc,
                FaultPlan::none().with_kill(2, healthy.elapsed / 3),
            )
        };
        let a = run(mk(), Program::new(fib, 13u64));
        let b = run(mk(), Program::new(fib, 13u64));
        assert_eq!(a.result, b.result);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.tasks_replayed, b.stats.tasks_replayed);
    }

    #[test]
    fn healthy_runs_are_bit_identical_with_recovery_compiled_in() {
        // The whole fail-stop path is gated on a non-empty kill plan; a
        // plan-free run must not pay for it (satellite: <= 2% overhead is
        // measured by the ablate_recovery bench; identity is checked here).
        let a = run_fib(Policy::ChildRtc, 4, 13);
        let b = run(
            kill_cfg(Policy::ChildRtc, dcs_sim::FaultPlan::none()),
            Program::new(fib, 13u64),
        );
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.tasks_replayed, 0);
        assert_eq!(a.stats.workers_lost, 0);
    }

    // ------------------------------------------------------------------
    // imperfect failure detection (message detector, suspicion, rejoin)
    // ------------------------------------------------------------------

    /// Message detector over a loss-free fabric: the suspect-lease floor
    /// (`suspect >= hb + flight`) guarantees a visible beat inside every
    /// lease window, so no live worker is ever suspected and the run is
    /// result-identical to the oracle's.
    #[test]
    fn loss_free_message_detector_never_suspects() {
        use dcs_sim::{fault::Detector, FaultPlan};
        let oracle = run_fib(Policy::ContGreedy, 4, 13);
        let r = run(
            kill_cfg(
                Policy::ContGreedy,
                FaultPlan::none().with_detector(Detector::Message),
            ),
            Program::new(fib, 13u64),
        );
        assert_eq!(r.outcome, RunOutcome::Complete);
        assert_eq!(r.result, oracle.result);
        assert_eq!(r.stats.false_suspects, 0, "loss-free fabric must never suspect");
        assert_eq!(r.stats.rejoins, 0);
        assert_eq!(r.stats.workers_lost, 0);
    }

    /// The deterministic false-suspicion recipe: a degraded-NIC window
    /// stretches worker 1's beat flight past an aggressive suspect lease,
    /// so survivors evict a perfectly live worker. The run must still
    /// complete with the fault-free answer — the evictee self-fences,
    /// sheds its (drained) state and rejoins as a fresh incarnation.
    #[test]
    fn false_suspicion_evicts_rejoins_and_completes() {
        use dcs_sim::{fault::Detector, DegradeWindow, FaultPlan, VTime};
        let want = fib_serial(14);
        for policy in [Policy::ContGreedy, Policy::ContStalling, Policy::ChildRtc] {
            let mut plan = FaultPlan::none()
                .with_detector(Detector::Message)
                .with_suspect(VTime::us(3))
                .with_degrade(DegradeWindow {
                    worker: 1,
                    from: VTime::ZERO,
                    until: VTime::MAX,
                    factor: 20.0,
                });
            plan.hb_period = VTime::us(1);
            let r = run(kill_cfg(policy, plan), Program::new(fib, 14u64));
            assert_eq!(r.outcome, RunOutcome::Complete, "{policy:?}");
            assert_eq!(r.result.as_u64(), want, "{policy:?}");
            assert!(
                r.stats.false_suspects >= 1,
                "{policy:?}: the degraded window must trigger a false suspicion"
            );
            assert_eq!(
                r.stats.rejoins, r.stats.false_suspects,
                "{policy:?}: every evicted-live worker rejoins"
            );
            assert_eq!(r.stats.workers_lost, 0, "{policy:?}: nobody actually died");
        }
    }

    /// `rejoin=off`: the falsely-evicted worker halts instead of rejoining;
    /// the survivors replay its drained lineage and still finish correctly.
    #[test]
    fn false_suspicion_with_rejoin_disabled_still_completes() {
        use dcs_sim::{fault::Detector, DegradeWindow, FaultPlan, VTime};
        let mut plan = FaultPlan::none()
            .with_detector(Detector::Message)
            .with_suspect(VTime::us(3))
            .with_degrade(DegradeWindow {
                worker: 1,
                from: VTime::ZERO,
                until: VTime::MAX,
                factor: 20.0,
            });
        plan.hb_period = VTime::us(1);
        plan.rejoin = false;
        let r = run(kill_cfg(Policy::ContGreedy, plan), Program::new(fib, 14u64));
        assert_eq!(r.outcome, RunOutcome::Complete);
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert!(r.stats.false_suspects >= 1);
        assert_eq!(r.stats.rejoins, 0, "rejoin=off must keep the evictee down");
    }

    /// Suspicion-capable runs stay deterministic (beat drops and suspicion
    /// windows are pure functions of the seed and the virtual clock).
    #[test]
    fn suspicion_runs_are_deterministic() {
        use dcs_sim::{fault::Detector, DegradeWindow, FaultPlan, VTime};
        let mk = || {
            let mut plan = FaultPlan::none()
                .with_detector(Detector::Message)
                .with_suspect(VTime::us(3))
                .with_degrade(DegradeWindow {
                    worker: 1,
                    from: VTime::ZERO,
                    until: VTime::MAX,
                    factor: 20.0,
                });
            plan.hb_period = VTime::us(1);
            run(kill_cfg(Policy::ContGreedy, plan), Program::new(fib, 13u64))
        };
        let (a, b) = (mk(), mk());
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.steps, b.steps);
        assert_eq!(a.stats.false_suspects, b.stats.false_suspects);
        assert_eq!(a.stats.rejoins, b.stats.rejoins);
    }

    // ------------------------------------------------------------------
    // steal-protocol families (CAS-lock / lock-free / fence-free)
    // ------------------------------------------------------------------

    use crate::policy::Protocol;

    fn proto_cfg(protocol: Protocol, policy: Policy, workers: usize) -> RunConfig {
        RunConfig::new(workers, policy)
            .with_profile(profiles::test_profile())
            .with_seg_bytes(64 << 20)
            .with_protocol(protocol)
    }

    #[test]
    fn fib_correct_under_all_protocols_and_policies() {
        let want = fib_serial(12);
        for protocol in Protocol::ALL {
            for policy in Policy::ALL {
                for workers in [1, 4] {
                    let r = run(
                        proto_cfg(protocol, policy, workers),
                        Program::new(fib, 12u64),
                    );
                    assert_eq!(
                        r.result.as_u64(),
                        want,
                        "{protocol:?} {policy:?} workers={workers}"
                    );
                }
            }
        }
    }

    #[test]
    fn non_default_protocols_steal_without_the_deque_lock() {
        for protocol in [Protocol::LockFree, Protocol::FenceFree] {
            let r = run(
                proto_cfg(protocol, Policy::ContGreedy, 4),
                Program::new(fib, 14u64),
            );
            assert_eq!(r.result.as_u64(), fib_serial(14), "{protocol:?}");
            assert!(r.stats.steals_ok > 0, "{protocol:?}: expected steals");
        }
    }

    #[test]
    fn fence_free_issues_zero_amo_verbs() {
        // The headline property of the third family: with the CAS lock gone
        // from the steal path and no other AMO user in the configuration
        // (single-consumer joins, local-collection frees, run-to-completion
        // children), the whole run is read/write-only.
        let r = run(
            proto_cfg(Protocol::FenceFree, Policy::ChildRtc, 4),
            Program::new(fib, 14u64),
        );
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert!(r.stats.steals_ok > 0, "need steals to make the claim mean something");
        assert_eq!(
            r.fabric.remote_amos, 0,
            "fence-free steals must not issue AMO verbs"
        );
        // The same run under the other families pays for its atomics.
        for protocol in [Protocol::CasLock, Protocol::LockFree] {
            let r = run(
                proto_cfg(protocol, Policy::ChildRtc, 4),
                Program::new(fib, 14u64),
            );
            assert!(r.fabric.remote_amos > 0, "{protocol:?} steals use AMOs");
        }
    }

    #[test]
    fn fence_free_pipelined_overlaps_claim_and_copy() {
        use dcs_sim::FabricMode;
        let cfg = |mode| {
            proto_cfg(Protocol::FenceFree, Policy::ChildRtc, 4)
                .with_profile(profiles::itoa())
                .with_fabric(mode)
        };
        let blk = run(cfg(FabricMode::Blocking), Program::new(fib, 14u64));
        let pip = run(cfg(FabricMode::Pipelined), Program::new(fib, 14u64));
        assert_eq!(blk.result, pip.result);
        assert!(pip.stats.steals_ok > 0);
        // The thief posts the payload get and the top-hint put together —
        // overlap without a single atomic on the wire.
        assert_eq!(pip.fabric.remote_amos, 0);
        assert!(
            pip.fabric.max_inflight >= 2,
            "pipelined fence-free steals must overlap, got {}",
            pip.fabric.max_inflight
        );
    }

    #[test]
    fn ff_counters_are_zero_under_the_other_families() {
        for protocol in [Protocol::CasLock, Protocol::LockFree] {
            let r = run(
                proto_cfg(protocol, Policy::ContGreedy, 4),
                Program::new(fib, 13u64),
            );
            assert_eq!(r.stats.ff_dups, 0, "{protocol:?}");
            assert_eq!(r.stats.ff_lost_races, 0, "{protocol:?}");
        }
    }

    #[test]
    fn protocols_are_deterministic() {
        for protocol in [Protocol::LockFree, Protocol::FenceFree] {
            let go = || {
                run(
                    proto_cfg(protocol, Policy::ContGreedy, 4),
                    Program::new(fib, 13u64),
                )
            };
            let (a, b) = (go(), go());
            assert_eq!(a.elapsed, b.elapsed, "{protocol:?}");
            assert_eq!(a.steps, b.steps, "{protocol:?}");
            assert_eq!(a.fabric, b.fabric, "{protocol:?}");
        }
    }

    #[test]
    fn protocols_survive_transient_faults() {
        use dcs_sim::FaultPlan;
        for protocol in [Protocol::LockFree, Protocol::FenceFree] {
            for policy in Policy::ALL {
                let cfg = proto_cfg(protocol, policy, 4)
                    .with_fault_plan(FaultPlan::transient(0.02, 7));
                let r = run(cfg, Program::new(fib, 12u64));
                assert_eq!(r.result.as_u64(), fib_serial(12), "{protocol:?} {policy:?}");
                let wd = r.watchdog.expect("fault runs carry a watchdog");
                assert!(wd.is_clean(), "{protocol:?} {policy:?}: {wd}");
            }
        }
    }

    #[test]
    fn protocols_recover_from_fail_stop_kill() {
        use dcs_sim::FaultPlan;
        for protocol in [Protocol::LockFree, Protocol::FenceFree] {
            for policy in [Policy::ChildRtc, Policy::ContGreedy, Policy::ContStalling] {
                let healthy = run(
                    kill_cfg(policy, FaultPlan::none()).with_protocol(protocol),
                    Program::new(fib, 14u64),
                );
                let want = fib_serial(14);
                for frac in [4u64, 2, 1] {
                    let t = healthy.elapsed / (frac + 1) * frac / 2;
                    let cfg = kill_cfg(policy, FaultPlan::none().with_kill(1, t))
                        .with_protocol(protocol);
                    let r = run(cfg, Program::new(fib, 14u64));
                    assert_eq!(
                        r.outcome,
                        RunOutcome::Complete,
                        "{protocol:?} {policy:?} kill at {t}"
                    );
                    assert_eq!(r.result.as_u64(), want, "{protocol:?} {policy:?} kill at {t}");
                    assert_eq!(r.stats.workers_lost, 1, "{protocol:?} {policy:?} kill at {t}");
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // multi-steal probe rings (`--multi-steal K`) + doorbell batching
    // ------------------------------------------------------------------

    #[test]
    fn multi_steal_correct_all_protocols_and_fabrics() {
        use dcs_sim::FabricMode;
        let want = fib_serial(12);
        for protocol in Protocol::ALL {
            for mode in [FabricMode::Blocking, FabricMode::Pipelined] {
                for k in [2u32, 4] {
                    let cfg = proto_cfg(protocol, Policy::ContGreedy, 4)
                        .with_fabric(mode)
                        .with_multi_steal(k);
                    let r = run(cfg, Program::new(fib, 12u64));
                    assert_eq!(r.result.as_u64(), want, "{protocol:?} {mode:?} K={k}");
                    assert!(r.stats.steals_ok > 0, "{protocol:?} {mode:?} K={k}");
                }
            }
        }
    }

    #[test]
    fn multi_steal_k1_is_byte_identical_to_the_serial_path() {
        // K=1 must take the old single-victim path exactly: the probe ring
        // is gated on `multi_steal >= 2`, so all pre-existing goldens hold.
        let a = run_fib(Policy::ContGreedy, 4, 13);
        let k1 = run(
            RunConfig::new(4, Policy::ContGreedy)
                .with_profile(profiles::test_profile())
                .with_seg_bytes(64 << 20)
                .with_multi_steal(1),
            Program::new(fib, 13u64),
        );
        assert_eq!(a.elapsed, k1.elapsed);
        assert_eq!(a.steps, k1.steps);
        assert_eq!(a.fabric, k1.fabric);
    }

    #[test]
    fn multi_steal_is_deterministic() {
        use dcs_sim::FabricMode;
        for protocol in Protocol::ALL {
            let go = || {
                run(
                    proto_cfg(protocol, Policy::ContGreedy, 4)
                        .with_fabric(FabricMode::Pipelined)
                        .with_multi_steal(3),
                    Program::new(fib, 13u64),
                )
            };
            let (a, b) = (go(), go());
            assert_eq!(a.elapsed, b.elapsed, "{protocol:?}");
            assert_eq!(a.steps, b.steps, "{protocol:?}");
            assert_eq!(a.fabric, b.fabric, "{protocol:?}");
        }
    }

    #[test]
    fn multi_steal_chains_probes_through_the_doorbell() {
        use dcs_sim::FabricMode;
        let cfg = proto_cfg(Protocol::CasLock, Policy::ContGreedy, 4)
            .with_fabric(FabricMode::Pipelined)
            .with_multi_steal(4)
            .with_doorbell(0.25);
        let r = run(cfg, Program::new(fib, 14u64));
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert!(r.stats.steals_ok > 0);
        assert!(
            r.fabric.doorbell_chained > 0,
            "K=4 probe rings must chain their verbs through the doorbell"
        );
    }

    #[test]
    fn multi_steal_accounts_abandoned_attempts() {
        use dcs_sim::FabricMode;
        // With K=4 probes outstanding against a busy 4-worker ring, some
        // probe must eventually find work at a victim that lost the ring
        // order — that attempt is abandoned (released, never retried as a
        // failure) and must be counted as such, not folded into failures
        // or the latency mean.
        let cfg = proto_cfg(Protocol::CasLock, Policy::ContGreedy, 4)
            .with_fabric(FabricMode::Pipelined)
            .with_multi_steal(4);
        let r = run(cfg, Program::new(fib, 16u64));
        assert_eq!(r.result.as_u64(), fib_serial(16));
        assert!(
            r.stats.steals_abandoned > 0,
            "a K=4 sweep over fib(16) must abandon at least one ready victim"
        );
    }

    #[test]
    fn sole_survivor_never_draws_a_confirmed_dead_victim_forever() {
        use dcs_sim::{FaultPlan, VTime};
        // Satellite regression: with W-1 peers confirmed dead (permanent
        // blacklist), select_victim must fall back to a live peer while one
        // exists and must not hang once none does — the run completes on
        // the sole survivor either way. K=2 keeps the probe ring in play so
        // its dead-guard fail-fast path is exercised too.
        let healthy = run_fib(Policy::ChildRtc, 4, 14);
        let t = healthy.elapsed / 4;
        let plan = FaultPlan::none()
            .with_kill(1, t)
            .with_kill(2, t + VTime::us(50))
            .with_kill(3, t + VTime::us(100));
        let r = run(
            kill_cfg(Policy::ChildRtc, plan).with_multi_steal(2),
            Program::new(fib, 14u64),
        );
        assert_eq!(r.outcome, RunOutcome::Complete);
        assert_eq!(r.result.as_u64(), fib_serial(14));
        assert_eq!(r.stats.workers_lost, 3);
    }

    #[test]
    fn multi_steal_recovers_from_fail_stop_kill_all_protocols() {
        use dcs_sim::FaultPlan;
        let want = fib_serial(14);
        for protocol in Protocol::ALL {
            let healthy = run(
                kill_cfg(Policy::ContGreedy, FaultPlan::none())
                    .with_protocol(protocol)
                    .with_multi_steal(2),
                Program::new(fib, 14u64),
            );
            let t = healthy.elapsed / 3;
            let cfg = kill_cfg(Policy::ContGreedy, FaultPlan::none().with_kill(1, t))
                .with_protocol(protocol)
                .with_multi_steal(2);
            let r = run(cfg, Program::new(fib, 14u64));
            assert_eq!(r.outcome, RunOutcome::Complete, "{protocol:?}");
            assert_eq!(r.result.as_u64(), want, "{protocol:?}");
            assert_eq!(r.stats.workers_lost, 1, "{protocol:?}");
        }
    }

    #[test]
    fn series_trace_collects_busy_events() {
        let cfg = RunConfig::new(2, Policy::ContGreedy)
            .with_profile(profiles::test_profile())
            .with_trace(TraceLevel::Series)
            .with_seg_bytes(64 << 20);
        let r = run(cfg, Program::new(fib, 10u64));
        assert!(!r.stats.busy_events.is_empty());
        let series = r.stats.busy_series(r.elapsed, 10);
        assert_eq!(series.len(), 11);
        assert_eq!(series.last().unwrap().1, 0, "all idle at the end");
    }
}
