//! Continuation frames and virtual threads.
//!
//! The original system migrates *native call stacks* between nodes; stacks
//! stay valid because the uni-address scheme pins them to identical virtual
//! addresses everywhere. Safe Rust cannot replay that trick inside one
//! process (all OS threads share one address space), so this reproduction
//! represents a thread's stack as an explicit, position-independent vector of
//! [`Frame`]s — boxed one-shot continuations, each of which knows the byte
//! size of its captured state. The performance-relevant properties of real
//! stacks are preserved:
//!
//! * a continuation can be stolen/suspended/resumed only at the same points
//!   the real runtime allows (spawn, join, compute boundaries),
//! * migrating a thread costs `get_bulk(stack_bytes)` on the fabric, where
//!   `stack_bytes` grows with nesting depth and captured state exactly like
//!   a native stack (the paper measures 1–2 KB median stolen stacks),
//! * the uni-address placement discipline is enforced through
//!   [`dcs_uniaddr::UniRegion`] via the [`VThread::home`] slot.
//!
//! Task code is written in continuation-passing style against [`Effect`]:
//! each step of a task either returns, calls, forks, joins, or computes; the
//! scheduler interprets the effect per its stealing policy.

use std::any::Any;
use std::fmt;
use std::sync::Arc;

use dcs_sim::{GlobalAddr, VTime, WorkerId};
use dcs_uniaddr::StackSlot;

use crate::value::{ThreadHandle, Value};

/// Entry point of a task body. Being a plain function pointer (plus a
/// [`Value`] argument) is exactly what makes a *child-stealing* task
/// descriptor trivially migratable — the paper's 56-byte stolen tasks.
pub type TaskFn = fn(Value, &mut TaskCtx) -> Effect;

/// Application context shared by all tasks of a run (input arrays, workload
/// parameters). Read-only; models data replicated at program start.
pub type AppCtx = Arc<dyn Any + Send + Sync>;

/// Per-resume context handed to task code.
pub struct TaskCtx<'a> {
    /// Worker currently executing the task.
    pub worker: WorkerId,
    /// Application data for the run.
    pub app: &'a AppCtx,
    /// Machine compute-speed scale (1.0 = ITO-A-like Xeon); task code
    /// multiplies its kernel durations by this.
    pub compute_scale: f64,
}

impl<'a> TaskCtx<'a> {
    /// Downcast the application context; panics on type mismatch (a wiring
    /// bug, not a runtime condition).
    #[track_caller]
    pub fn app<T: 'static>(&self) -> &T {
        self.app
            .downcast_ref::<T>()
            .expect("application context type mismatch")
    }

    /// Scale a nominal compute duration for the current machine.
    pub fn scaled(&self, base: VTime) -> VTime {
        base.scale(self.compute_scale)
    }
}

/// Host-side work performed inside a `Compute` effect: real computation whose
/// result feeds the continuation (e.g. the LCS leaf kernel, UTS hash
/// expansion). Charged `dur` of virtual time regardless of host cost.
pub type HostWork = Box<dyn FnOnce(&mut TaskCtx) -> Value + Send>;

/// What a task does next. Produced by every frame resume / task start.
pub enum Effect {
    /// Return `v` to the calling frame (or complete the thread if the stack
    /// is empty, triggering the DIE protocol).
    Return(Value),
    /// Ordinary (non-stealable) call on the same thread stack: push `cont`,
    /// then run `callee(arg)`.
    Call {
        callee: TaskFn,
        arg: Value,
        cont: Box<dyn Frame>,
    },
    /// Spawn a child thread. Under continuation stealing the *continuation*
    /// (`cont`, resumed with `Value::Handle`) becomes stealable and the
    /// child runs first; under child stealing the *child descriptor* becomes
    /// stealable and `cont` runs immediately.
    Fork {
        child: TaskFn,
        arg: Value,
        /// Consumer multiplicity of the created future (1 = plain fork-join).
        consumers: u32,
        cont: Box<dyn Frame>,
    },
    /// Join a thread/future; `cont` is resumed with the joined return value.
    Join {
        handle: ThreadHandle,
        cont: Box<dyn Frame>,
    },
    /// Spend `dur` of virtual compute time, optionally running real host
    /// work, then resume `cont` with the work's result (or `Unit`).
    Compute {
        dur: VTime,
        work: Option<HostWork>,
        cont: Box<dyn Frame>,
    },
    /// Cooperatively yield the processor: the continuation is re-enqueued
    /// as ready work (stealable under continuation stealing; wait-queued
    /// for fully-fledged child threads) and the worker schedules something
    /// else. §II-C: the generic suspension capability behind yields, locks
    /// and barriers. Run-to-completion threads cannot yield by definition.
    Yield { cont: Box<dyn Frame> },
    /// A one-sided access to global (PGAS) memory — the global-heap support
    /// the paper defers to future work (§VII). The continuation receives
    /// the operation's result (`U64` for word gets and fetch-adds, `U64s`
    /// for block gets, `Unit` for puts).
    Rma { op: RmaOp, cont: Box<dyn Frame> },
}

/// One-sided global-memory operations available to task code.
#[derive(Debug)]
pub enum RmaOp {
    /// Read one word.
    GetWord(GlobalAddr),
    /// Write one word (blocking put).
    PutWord(GlobalAddr, u64),
    /// Atomic fetch-and-add on a word.
    FetchAdd(GlobalAddr, u64),
    /// Read `words` consecutive words starting at the address.
    GetBlock(GlobalAddr, u32),
    /// Write consecutive words starting at the address.
    PutBlock(GlobalAddr, std::sync::Arc<[u64]>),
}

impl Effect {
    pub fn ret(v: impl Into<Value>) -> Effect {
        Effect::Return(v.into())
    }

    pub fn call(callee: TaskFn, arg: impl Into<Value>, cont: Box<dyn Frame>) -> Effect {
        Effect::Call {
            callee,
            arg: arg.into(),
            cont,
        }
    }

    pub fn fork(child: TaskFn, arg: impl Into<Value>, cont: Box<dyn Frame>) -> Effect {
        Effect::Fork {
            child,
            arg: arg.into(),
            consumers: 1,
            cont,
        }
    }

    /// Fork a future with `consumers` consumers (§V-D).
    pub fn fork_future(
        child: TaskFn,
        arg: impl Into<Value>,
        consumers: u32,
        cont: Box<dyn Frame>,
    ) -> Effect {
        assert!(consumers >= 1, "a future needs at least one consumer");
        Effect::Fork {
            child,
            arg: arg.into(),
            consumers,
            cont,
        }
    }

    pub fn join(handle: ThreadHandle, cont: Box<dyn Frame>) -> Effect {
        Effect::Join { handle, cont }
    }

    pub fn compute(dur: VTime, cont: Box<dyn Frame>) -> Effect {
        Effect::Compute {
            dur,
            work: None,
            cont,
        }
    }

    pub fn compute_with(dur: VTime, work: HostWork, cont: Box<dyn Frame>) -> Effect {
        Effect::Compute {
            dur,
            work: Some(work),
            cont,
        }
    }

    pub fn yield_now(cont: Box<dyn Frame>) -> Effect {
        Effect::Yield { cont }
    }

    pub fn rma(op: RmaOp, cont: Box<dyn Frame>) -> Effect {
        Effect::Rma { op, cont }
    }
}

impl fmt::Debug for Effect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Effect::Return(v) => write!(f, "Return({v:?})"),
            Effect::Call { .. } => write!(f, "Call"),
            Effect::Fork { consumers, .. } => write!(f, "Fork(consumers={consumers})"),
            Effect::Join { handle, .. } => write!(f, "Join({:?})", handle.entry),
            Effect::Compute { dur, .. } => write!(f, "Compute({dur})"),
            Effect::Yield { .. } => write!(f, "Yield"),
            Effect::Rma { op, .. } => write!(f, "Rma({op:?})"),
        }
    }
}

/// Fixed per-frame byte overhead modelling what a native frame carries beyond
/// captured locals: return address, saved registers, frame linkage, padding.
/// Chosen so that typical stolen stacks land in the paper's 1–2 KB band.
pub const FRAME_OVERHEAD: usize = 96;

/// Base bytes of any thread context (register file + thread descriptor).
pub const CONTEXT_BASE: usize = 256;

/// A one-shot continuation: the rest of a task after a suspension point.
pub trait Frame: Send {
    /// Consume the frame, feeding it the value produced by whatever it was
    /// waiting on (callee return, fork handle, join result, compute result).
    fn resume(self: Box<Self>, input: Value, ctx: &mut TaskCtx) -> Effect;

    /// Bytes this frame occupies on the (migratable) stack.
    fn size(&self) -> usize;
}

/// Closure-backed frame. `size` is the closure's captured state plus
/// [`FRAME_OVERHEAD`], so deeper/fatter continuations cost more to migrate —
/// the same scaling a native stack has.
struct FnFrame<F> {
    f: F,
    size: usize,
}

impl<F> Frame for FnFrame<F>
where
    F: FnOnce(Value, &mut TaskCtx) -> Effect + Send,
{
    fn resume(self: Box<Self>, input: Value, ctx: &mut TaskCtx) -> Effect {
        (self.f)(input, ctx)
    }

    fn size(&self) -> usize {
        self.size
    }
}

/// Box a closure as a continuation frame.
pub fn frame<F>(f: F) -> Box<dyn Frame>
where
    F: FnOnce(Value, &mut TaskCtx) -> Effect + Send + 'static,
{
    let size = std::mem::size_of::<F>() + FRAME_OVERHEAD;
    Box::new(FnFrame { f, size })
}

/// A frame that ignores its input and returns a fixed value; handy terminal
/// continuation for leaf tasks.
pub fn ret_frame(v: impl Into<Value>) -> Box<dyn Frame> {
    let v = v.into();
    frame(move |_, _| Effect::Return(v))
}

/// What a thread will do when next scheduled.
pub enum Pending {
    /// Begin executing a task body (fresh thread).
    Start(TaskFn, Value),
    /// Pop the top frame and resume it with the value.
    Resume(Value),
    /// Suspended at a join: the resumer injects the joined value, turning
    /// this into `Resume`.
    AwaitValue,
}

impl fmt::Debug for Pending {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pending::Start(..) => write!(f, "Start"),
            Pending::Resume(v) => write!(f, "Resume({v:?})"),
            Pending::AwaitValue => write!(f, "AwaitValue"),
        }
    }
}

/// A virtual thread: explicit stack of frames + what to do next + uni-address
/// placement bookkeeping.
pub struct VThread {
    pub frames: Vec<Box<dyn Frame>>,
    pub pending: Pending,
    /// The thread's home stack slot in the uni-address region (assigned at
    /// first placement; migration must re-claim this exact range).
    pub home: Option<StackSlot>,
    /// Unique id, for profiling and debug assertions.
    pub tid: u64,
    /// This thread's own entry — passed to DIE when it completes. The root
    /// thread carries the NULL handle.
    pub own: ThreadHandle,
    /// Set while the thread is suspended at a join: (suspend time, entry
    /// address). Cleared — and turned into an outstanding-join statistic —
    /// when the thread actually resumes.
    pub suspension: Option<(VTime, u64)>,
    /// Fail-stop lineage back-pointer (armed fault plans only): the
    /// `(worker, index)` of this thread's origin record in the shared
    /// lineage log, marked done when the thread dies and re-keyed when it
    /// migrates (the record always lives with the worker that physically
    /// holds the thread). `None` for non-replayable threads (ChildFull,
    /// unstolen ChildRtc children) and in every run without an armed plan.
    pub replay_rec: Option<(usize, usize)>,
}

impl VThread {
    /// Fresh thread about to start `f(arg)`, reporting to entry `own`.
    pub fn new(tid: u64, f: TaskFn, arg: Value, own: ThreadHandle) -> VThread {
        VThread {
            frames: Vec::new(),
            pending: Pending::Start(f, arg),
            home: None,
            tid,
            own,
            suspension: None,
            replay_rec: None,
        }
    }

    /// Execute one step: run the pending action to produce the next effect.
    pub fn advance(&mut self, ctx: &mut TaskCtx) -> Effect {
        match std::mem::replace(&mut self.pending, Pending::AwaitValue) {
            Pending::Start(f, arg) => f(arg, ctx),
            Pending::Resume(v) => {
                let top = self
                    .frames
                    .pop()
                    .expect("advance called on completed thread");
                top.resume(v, ctx)
            }
            Pending::AwaitValue => panic!("advance called on suspended thread {}", self.tid),
        }
    }

    /// True when a `Resume` would complete the thread (no frames left).
    pub fn would_complete(&self) -> bool {
        self.frames.is_empty()
    }

    /// Inject the joined value into a thread suspended at a join.
    pub fn supply(&mut self, v: Value) {
        debug_assert!(
            matches!(self.pending, Pending::AwaitValue),
            "supply on non-suspended thread"
        );
        self.pending = Pending::Resume(v);
    }

    /// Migratable stack size in bytes: context base + every frame + any
    /// in-flight pending value.
    pub fn stack_bytes(&self) -> usize {
        let frames: usize = self.frames.iter().map(|f| f.size()).sum();
        let pending = match &self.pending {
            Pending::Start(_, arg) => arg.wire_size(),
            Pending::Resume(v) => v.wire_size(),
            Pending::AwaitValue => 0,
        };
        CONTEXT_BASE + frames + pending
    }
}

impl fmt::Debug for VThread {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "VThread(tid={}, depth={}, {:?}, {} B)",
            self.tid,
            self.frames.len(),
            self.pending,
            self.stack_bytes()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_sim::GlobalAddr;

    fn ctx_app() -> AppCtx {
        Arc::new(42u32)
    }

    fn mk_ctx(app: &AppCtx) -> TaskCtx<'_> {
        TaskCtx {
            worker: 0,
            app,
            compute_scale: 2.0,
        }
    }

    fn doubler(arg: Value, _ctx: &mut TaskCtx) -> Effect {
        Effect::ret(arg.as_u64() * 2)
    }

    fn null_h() -> ThreadHandle {
        ThreadHandle::single(GlobalAddr::NULL)
    }

    #[test]
    fn start_and_return() {
        let app = ctx_app();
        let mut ctx = mk_ctx(&app);
        let mut t = VThread::new(1, doubler, Value::U64(21), null_h());
        match t.advance(&mut ctx) {
            Effect::Return(v) => assert_eq!(v.as_u64(), 42),
            e => panic!("unexpected {e:?}"),
        }
        assert!(t.would_complete());
    }

    #[test]
    fn frames_resume_in_lifo_order() {
        let app = ctx_app();
        let mut ctx = mk_ctx(&app);
        let mut t = VThread::new(2, doubler, Value::U64(1), null_h());
        // Manually push two continuations: +10 then *100 (LIFO: *100 first).
        t.frames
            .push(frame(|v, _| Effect::ret(v.as_u64() + 10)));
        t.frames
            .push(frame(|v, _| Effect::ret(v.as_u64() * 100)));
        let v0 = match t.advance(&mut ctx) {
            Effect::Return(v) => v,
            e => panic!("{e:?}"),
        };
        t.pending = Pending::Resume(v0);
        let v1 = match t.advance(&mut ctx) {
            Effect::Return(v) => v,
            e => panic!("{e:?}"),
        };
        assert_eq!(v1.as_u64(), 200);
        t.pending = Pending::Resume(v1);
        let v2 = match t.advance(&mut ctx) {
            Effect::Return(v) => v,
            e => panic!("{e:?}"),
        };
        assert_eq!(v2.as_u64(), 210);
        assert!(t.would_complete());
    }

    #[test]
    fn stack_bytes_grow_with_depth_and_captures() {
        let mut t = VThread::new(3, doubler, Value::Unit, null_h());
        let empty = t.stack_bytes();
        t.frames.push(frame(|_, _| Effect::ret(0u64)));
        let one = t.stack_bytes();
        assert!(one > empty);
        let big = [0u64; 32];
        t.frames.push(frame(move |_, _| Effect::ret(big[0])));
        let two = t.stack_bytes();
        assert!(two >= one + FRAME_OVERHEAD + 32 * 8);
    }

    #[test]
    fn suspend_and_supply() {
        let app = ctx_app();
        let mut ctx = mk_ctx(&app);
        let mut t = VThread::new(4, doubler, Value::U64(0), null_h());
        t.frames.push(frame(|v, _| Effect::ret(v.as_u64() + 1)));
        t.pending = Pending::AwaitValue;
        t.supply(Value::U64(9));
        match t.advance(&mut ctx) {
            Effect::Return(v) => assert_eq!(v.as_u64(), 10),
            e => panic!("{e:?}"),
        }
    }

    #[test]
    #[should_panic(expected = "suspended thread")]
    fn advancing_suspended_thread_panics() {
        let app = ctx_app();
        let mut ctx = mk_ctx(&app);
        let mut t = VThread::new(5, doubler, Value::Unit, null_h());
        t.pending = Pending::AwaitValue;
        let _ = t.advance(&mut ctx);
    }

    #[test]
    fn task_ctx_helpers() {
        let app = ctx_app();
        let ctx = mk_ctx(&app);
        assert_eq!(*ctx.app::<u32>(), 42);
        assert_eq!(ctx.scaled(VTime::us(10)), VTime::us(20));
    }

    #[test]
    fn effect_constructors() {
        let h = ThreadHandle::single(GlobalAddr::new(0, 8));
        assert!(matches!(
            Effect::fork_future(doubler, 0u64, 3, ret_frame(0u64)),
            Effect::Fork { consumers: 3, .. }
        ));
        assert!(matches!(
            Effect::join(h, ret_frame(0u64)),
            Effect::Join { .. }
        ));
        assert!(matches!(
            Effect::compute(VTime::us(1), ret_frame(0u64)),
            Effect::Compute { work: None, .. }
        ));
    }

    #[test]
    #[should_panic(expected = "at least one consumer")]
    fn zero_consumer_future_rejected() {
        let _ = Effect::fork_future(doubler, 0u64, 0, ret_frame(0u64));
    }
}
