//! Runtime invariant watchdog.
//!
//! Fault injection (see [`dcs_sim::FaultPlan`]) makes the fabric lie:
//! verbs time out, messages drop or arrive twice, workers freeze. The
//! runtime's resilience claim is that none of that may ever corrupt the
//! *computation* — every spawned task runs exactly once, every thread entry
//! is freed exactly once, and the run keeps making progress. The watchdog
//! checks those invariants live, from inside the run, and turns violations
//! into a structured [`WatchdogReport`] instead of a silent wrong answer.
//!
//! The checks are observational: a healthy run behaves bit-identically with
//! the watchdog on or off (it only reads event streams the scheduler already
//! produces, and never charges virtual time).

use std::collections::HashSet;
use std::fmt;

use dcs_sim::VTime;

/// One detected invariant violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Threads were spawned that never died: work was lost in flight.
    TaskLost { live: Vec<u64> },
    /// A thread id died twice (or died without ever being spawned): a task
    /// was duplicated, e.g. by a retransmitted grant materializing twice.
    TaskDuplicated { tid: u64 },
    /// A thread entry was freed twice.
    DoubleFree { entry: u64 },
    /// No global progress event (task death or successful steal) for longer
    /// than the configured stall limit while workers were still running.
    /// `last_progress` is the instant of the last observed progress event
    /// and `suspected_dead` names the workers known lost by then — the two
    /// facts a hung-run report needs first.
    Stall {
        at: VTime,
        idle_for: VTime,
        last_progress: VTime,
        suspected_dead: Vec<usize>,
    },
    /// A deque operation observed a dead ring slot — a bounds-referenced
    /// slot whose payload key is gone (see [`crate::deque::DeadSlot`]).
    /// `owner` is the worker whose deque was corrupted, not necessarily the
    /// worker that tripped over it.
    DequeProtocol {
        op: &'static str,
        owner: usize,
        index: u64,
    },
    /// A runtime resource survived to the end of the run (routed here from
    /// the end-of-run accounting when strict mode is off).
    Leak { what: &'static str, count: u64 },
    /// A fail-stop kill took a worker down while it held live frames, and
    /// the run's policy cannot re-execute them (continuation stealing has no
    /// replayable descriptor; losing worker 0 loses the root). `frames`
    /// names the lost thread ids (truncated).
    WorkerLost { worker: usize, frames: Vec<u64> },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TaskLost { live } => {
                write!(f, "task-lost: {} thread(s) spawned but never died", live.len())?;
                if let Some(t) = live.first() {
                    write!(f, " (first tid {t})")?;
                }
                Ok(())
            }
            Violation::TaskDuplicated { tid } => {
                write!(f, "task-duplicated: tid {tid} died more than once")
            }
            Violation::DoubleFree { entry } => {
                write!(f, "double-free: entry {entry:#x} freed twice")
            }
            Violation::Stall {
                at,
                idle_for,
                last_progress,
                suspected_dead,
            } => {
                write!(
                    f,
                    "stall: no progress for {idle_for} (detected at {at}, last progress at {last_progress}"
                )?;
                if suspected_dead.is_empty() {
                    write!(f, ", no workers suspected dead)")
                } else {
                    write!(f, ", suspected dead workers: {suspected_dead:?})")
                }
            }
            Violation::DequeProtocol { op, owner, index } => {
                write!(
                    f,
                    "deque-protocol: {op} observed a dead ring slot at index {index} of worker {owner}'s deque"
                )
            }
            Violation::Leak { what, count } => {
                write!(f, "leak: {count} {what} still live at end of run")
            }
            Violation::WorkerLost { worker, frames } => {
                write!(
                    f,
                    "worker-lost: worker {worker} died holding {} live frame(s)",
                    frames.len()
                )?;
                if let Some(t) = frames.first() {
                    write!(f, " (first tid {t})")?;
                }
                Ok(())
            }
        }
    }
}

/// End-of-run summary of everything the watchdog saw.
#[derive(Clone, Debug, Default)]
pub struct WatchdogReport {
    pub violations: Vec<Violation>,
    /// Tasks spawned / died while the watchdog was watching.
    pub spawned: u64,
    pub died: u64,
    /// Longest observed gap between consecutive progress events.
    pub max_gap: VTime,
}

impl WatchdogReport {
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

impl fmt::Display for WatchdogReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_clean() {
            write!(
                f,
                "watchdog: clean ({} spawned, {} died, max progress gap {})",
                self.spawned, self.died, self.max_gap
            )
        } else {
            writeln!(f, "watchdog: {} violation(s):", self.violations.len())?;
            for v in &self.violations {
                writeln!(f, "  - {v}")?;
            }
            Ok(())
        }
    }
}

/// Cap on recorded violations: enough to diagnose, bounded under a
/// pathological run.
const MAX_VIOLATIONS: usize = 64;

/// Live invariant tracker. Created once per run (when enabled) and fed by
/// cheap hooks in the scheduler; see [`crate::world::RtShared`].
#[derive(Debug)]
pub struct Watchdog {
    stall_limit: VTime,
    /// Virtual time of the last global progress event.
    last_progress: VTime,
    /// Crash-stop windows legitimately pause progress until this time; the
    /// stall clock must not count frozen workers as a hang.
    pause_until: VTime,
    /// A stall is reported at most once per silent period.
    stall_reported: bool,
    live: HashSet<u64>,
    /// Tids enumerated on recoverably-killed workers. They cannot be retired
    /// at kill time — an operation whose virtual instant precedes the kill
    /// may still complete them later in execution order — but if they never
    /// die they went down with their worker, so [`Self::finish`] discounts
    /// them from the lost-task check.
    lost_tids: HashSet<u64>,
    /// Workers reported lost (fail-stop kills observed so far); names the
    /// suspects in a stall report.
    lost_workers: Vec<usize>,
    /// Workers currently *suspected* by a message-based failure detector
    /// (lease expired without a visible heartbeat). Unlike `lost_workers`
    /// this set is revocable: a delayed beat landing clears the suspicion.
    /// Always empty under the oracle detector, so oracle stall reports are
    /// unchanged.
    suspected: Vec<usize>,
    spawned: u64,
    died: u64,
    max_gap: VTime,
    violations: Vec<Violation>,
}

impl Watchdog {
    pub fn new(stall_limit: VTime) -> Watchdog {
        Watchdog {
            stall_limit,
            last_progress: VTime::ZERO,
            pause_until: VTime::ZERO,
            stall_reported: false,
            live: HashSet::new(),
            lost_tids: HashSet::new(),
            lost_workers: Vec::new(),
            suspected: Vec::new(),
            spawned: 0,
            died: 0,
            max_gap: VTime::ZERO,
            violations: Vec::new(),
        }
    }

    fn record(&mut self, v: Violation) {
        if self.violations.len() < MAX_VIOLATIONS {
            self.violations.push(v);
        }
    }

    /// A task (thread) came into existence.
    pub fn spawn(&mut self, tid: u64) {
        self.spawned += 1;
        self.live.insert(tid);
    }

    /// A task completed at `now`. Dying twice means the task was duplicated
    /// somewhere between spawn and death.
    pub fn death(&mut self, tid: u64, now: VTime) {
        self.died += 1;
        if !self.live.remove(&tid) {
            self.record(Violation::TaskDuplicated { tid });
        }
        self.progress(now);
    }

    /// Any global progress event (death, successful steal): reset the stall
    /// clock.
    pub fn progress(&mut self, now: VTime) {
        let since = self.last_progress.max(self.pause_until);
        self.max_gap = self.max_gap.max(now.saturating_sub(since));
        self.last_progress = self.last_progress.max(now);
        self.stall_reported = false;
    }

    /// A worker legitimately sleeps through a crash window ending at
    /// `until`: silence up to there is not a stall.
    pub fn crash_sleep(&mut self, until: VTime) {
        self.pause_until = self.pause_until.max(until);
    }

    /// A deque operation surfaced a typed protocol error (dead ring slot).
    pub fn deque_protocol(&mut self, op: &'static str, owner: usize, index: u64) {
        self.record(Violation::DequeProtocol { op, owner, index });
    }

    /// Worker `worker` suffered a fail-stop kill while holding `tids` live
    /// frames. Under a recoverable configuration nothing is retired here:
    /// a frame enumerated at kill time may still legitimately complete (a
    /// steal whose virtual instant precedes the kill can land after it in
    /// execution order). Originals with a lineage record are retired via
    /// [`Self::retire`] once the log settles their fate; the rest are
    /// remembered and discounted from the lost-task check at
    /// [`Self::finish`]. An unrecoverable loss retires everything and
    /// records the violation — the run aborts immediately.
    pub fn worker_lost(&mut self, worker: usize, tids: &[u64], recoverable: bool) {
        self.lost_workers.push(worker);
        if recoverable {
            self.lost_tids.extend(tids.iter().copied());
        } else {
            for t in tids {
                self.live.remove(t);
            }
            let mut frames = tids.to_vec();
            frames.sort_unstable();
            frames.truncate(16);
            self.record(Violation::WorkerLost { worker, frames });
        }
    }

    /// A thread is known to never complete — it died with its worker and
    /// was (or will be) re-executed under a fresh id, or it is an orphaned
    /// duplicate abandoned at termination. Retiring it keeps the
    /// end-of-run lost-task check meaningful for everything else.
    pub fn retire(&mut self, tid: u64) {
        self.live.remove(&tid);
    }

    /// A message-based failure detector started suspecting `worker` (its
    /// lease expired with no visible heartbeat). Suspicion names the worker
    /// in stall reports but, unlike a confirmed loss, is revocable.
    pub fn suspect(&mut self, worker: usize) {
        if !self.suspected.contains(&worker) {
            self.suspected.push(worker);
        }
    }

    /// A delayed heartbeat from `worker` landed: the suspicion was false.
    pub fn unsuspect(&mut self, worker: usize) {
        self.suspected.retain(|&w| w != worker);
    }

    /// A *live* worker was evicted on suspicion and self-fenced, shedding
    /// `tids` in-flight frames. The frames are discounted exactly like a
    /// recoverable kill's (replay re-creates the work under fresh ids), but
    /// the worker is not recorded as lost — it rejoins as a fresh
    /// incarnation.
    pub fn worker_evicted(&mut self, worker: usize, tids: &[u64]) {
        self.lost_tids.extend(tids.iter().copied());
        self.unsuspect(worker);
    }

    /// An entry free about to happen; `present` says whether the entry's
    /// metadata still exists. Returns true when the free may proceed.
    pub fn check_free(&mut self, entry: u64, present: bool) -> bool {
        if !present {
            self.record(Violation::DoubleFree { entry });
        }
        present
    }

    /// Idle-loop poll: has the run gone silent for longer than the limit?
    pub fn check_stall(&mut self, now: VTime) {
        if self.stall_reported {
            return;
        }
        let since = self.last_progress.max(self.pause_until);
        let gap = now.saturating_sub(since);
        self.max_gap = self.max_gap.max(gap);
        if gap > self.stall_limit {
            self.stall_reported = true;
            // Confirmed losses first (oracle-order preserved), then any
            // workers the message detector currently suspects.
            let mut suspected_dead = self.lost_workers.clone();
            for &w in &self.suspected {
                if !suspected_dead.contains(&w) {
                    suspected_dead.push(w);
                }
            }
            self.record(Violation::Stall {
                at: now,
                idle_for: gap,
                last_progress: since,
                suspected_dead,
            });
        }
    }

    /// Close out the run: any still-live tid is a lost task. Tids that went
    /// down with a recoverably-killed worker are discounted — their work
    /// was re-executed under fresh ids (or legitimately abandoned by the
    /// replay dedup); only threads on live workers can leak.
    pub fn finish(mut self) -> WatchdogReport {
        if !self.lost_tids.is_empty() {
            let lost = std::mem::take(&mut self.lost_tids);
            self.live.retain(|t| !lost.contains(t));
        }
        if !self.live.is_empty() {
            let mut live: Vec<u64> = self.live.iter().copied().collect();
            live.sort_unstable();
            live.truncate(16);
            self.record(Violation::TaskLost { live });
        }
        WatchdogReport {
            violations: self.violations,
            spawned: self.spawned,
            died: self.died,
            max_gap: self.max_gap,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clean_run_reports_clean() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.spawn(1);
        w.spawn(2);
        w.death(2, VTime::us(10));
        w.death(1, VTime::us(20));
        let r = w.finish();
        assert!(r.is_clean(), "{r}");
        assert_eq!(r.spawned, 2);
        assert_eq!(r.died, 2);
        assert_eq!(r.max_gap, VTime::us(10));
    }

    #[test]
    fn lost_task_detected_at_finish() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.spawn(7);
        let r = w.finish();
        assert_eq!(r.violations, vec![Violation::TaskLost { live: vec![7] }]);
    }

    #[test]
    fn duplicate_death_detected() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.spawn(3);
        w.death(3, VTime::us(1));
        w.death(3, VTime::us(2));
        let r = w.finish();
        assert_eq!(r.violations, vec![Violation::TaskDuplicated { tid: 3 }]);
    }

    #[test]
    fn double_free_detected_and_blocked() {
        let mut w = Watchdog::new(VTime::ms(1));
        assert!(w.check_free(0xBEEF, true));
        assert!(!w.check_free(0xBEEF, false));
        let r = w.finish();
        assert_eq!(r.violations, vec![Violation::DoubleFree { entry: 0xBEEF }]);
    }

    #[test]
    fn deque_protocol_violation_recorded() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.deque_protocol("thief_take", 3, 17);
        let r = w.finish();
        assert_eq!(
            r.violations,
            vec![Violation::DequeProtocol {
                op: "thief_take",
                owner: 3,
                index: 17
            }]
        );
        assert!(format!("{}", r.violations[0]).contains("worker 3"));
    }

    #[test]
    fn recoverable_worker_loss_defers_retirement_to_lineage() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.spawn(1);
        w.spawn(2);
        w.spawn(3);
        w.spawn(4);
        w.worker_lost(5, &[1, 2, 3], true);
        // Frame 1's fate: stolen just before the kill (virtually earlier,
        // executed later), completes normally — neither a duplicate death
        // nor a lost task.
        w.death(1, VTime::us(5));
        // Frame 2's fate: re-executed from its lineage record; the original
        // is retired when the record's fate settles.
        w.retire(2);
        // Frame 3's fate: no lineage record (a local child of the killed
        // worker); it went down with the worker and is discounted at finish.
        // Frame 4 was never on the killed worker: still a genuine leak.
        let r = w.finish();
        assert_eq!(r.violations, vec![Violation::TaskLost { live: vec![4] }]);
    }

    #[test]
    fn unrecoverable_worker_loss_is_a_violation() {
        let mut w = Watchdog::new(VTime::ms(1));
        w.spawn(9);
        w.worker_lost(0, &[9], false);
        let r = w.finish();
        assert_eq!(
            r.violations,
            vec![Violation::WorkerLost { worker: 0, frames: vec![9] }]
        );
        assert!(format!("{}", r.violations[0]).contains("worker 0"));
    }

    #[test]
    fn stall_detected_once_and_reset_by_progress() {
        let mut w = Watchdog::new(VTime::us(100));
        w.progress(VTime::us(10));
        w.check_stall(VTime::us(50)); // within limit
        w.check_stall(VTime::us(200)); // 190us silent > 100us
        w.check_stall(VTime::us(300)); // still the same silent period
        w.progress(VTime::us(310));
        w.check_stall(VTime::us(350)); // fresh period, within limit
        let r = w.finish();
        assert_eq!(r.violations.len(), 1);
        assert!(matches!(r.violations[0], Violation::Stall { .. }));
        // Longest silent period: progress at 10us, next progress at 310us.
        assert_eq!(r.max_gap, VTime::us(300));
    }

    #[test]
    fn stall_report_names_confirmed_losses_under_the_oracle() {
        // Oracle detector: deaths are confirmed facts, suspect()/unsuspect()
        // are never called. The stall report must name exactly the workers
        // the registry confirmed lost — pinned so detector work cannot
        // silently change oracle output.
        let mut w = Watchdog::new(VTime::us(100));
        w.progress(VTime::us(10));
        w.worker_lost(2, &[], true);
        w.check_stall(VTime::us(500));
        let r = w.finish();
        assert!(matches!(
            &r.violations[..],
            [Violation::Stall { suspected_dead, .. }] if suspected_dead == &vec![2]
        ));
    }

    #[test]
    fn stall_report_names_live_suspects_under_the_message_detector() {
        // Message detector: nobody is confirmed dead, but worker 1's lease
        // expired without a visible beat. The stall report must name the
        // *suspected* worker — and a delayed beat must revoke it.
        let mut w = Watchdog::new(VTime::us(100));
        w.progress(VTime::us(10));
        w.suspect(1);
        w.suspect(1); // idempotent
        w.check_stall(VTime::us(500));
        // Suspicion revoked: the next silent period reports nobody.
        w.progress(VTime::us(510));
        w.unsuspect(1);
        w.check_stall(VTime::us(900));
        let r = w.finish();
        assert!(matches!(
            &r.violations[..],
            [
                Violation::Stall { suspected_dead: a, .. },
                Violation::Stall { suspected_dead: b, .. },
            ] if a == &vec![1] && b.is_empty()
        ));
    }

    #[test]
    fn eviction_discounts_frames_without_reporting_the_worker_lost() {
        // A false suspicion evicts a live worker: its in-flight frames are
        // replayed under fresh ids (discounted like a recoverable kill's),
        // but the worker itself rejoins — it must not appear as a confirmed
        // loss in later stall reports.
        let mut w = Watchdog::new(VTime::us(100));
        w.spawn(7);
        w.suspect(4);
        w.worker_evicted(4, &[7]);
        w.progress(VTime::us(10));
        w.check_stall(VTime::us(500));
        let r = w.finish();
        assert!(matches!(
            &r.violations[..],
            [Violation::Stall { suspected_dead, .. }] if suspected_dead.is_empty()
        ));
    }

    #[test]
    fn crash_sleep_pauses_the_stall_clock() {
        let mut w = Watchdog::new(VTime::us(100));
        w.progress(VTime::us(10));
        w.crash_sleep(VTime::ms(1)); // frozen until 1ms
        w.check_stall(VTime::us(900)); // silence excused by the crash window
        let r = w.finish();
        assert!(r.is_clean(), "{r}");
    }
}
