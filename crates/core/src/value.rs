//! Task values.
//!
//! In the paper's programming model, "data are only exchanged via arguments
//! or return values of tasks" (§VII) — there is no global heap. [`Value`] is
//! the closed universe of such data: scalars, pairs, future handles (the
//! thread-entry locations of Fig. 3/4), and shared byte/word buffers for the
//! LCS boundary vectors. Every variant knows its wire size so the fabric can
//! charge bulk-transfer costs when a value crosses workers inside a thread
//! entry, a task descriptor, or a migrated stack.

use std::sync::Arc;

use dcs_sim::GlobalAddr;

/// Handle to a spawned thread / future: the location of its thread entry
/// plus the consumer multiplicity fixed at spawn (§V-D).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct ThreadHandle {
    /// Location of the thread entry in pinned memory.
    pub entry: GlobalAddr,
    /// Number of consumers that will join this thread (≥ 1). `1` selects the
    /// single-consumer protocols of Fig. 3/4; `> 1` selects the
    /// multi-consumer future protocol.
    pub consumers: u32,
}

impl ThreadHandle {
    pub const WIRE_SIZE: usize = 12; // 8-byte location + consumer count

    pub fn single(entry: GlobalAddr) -> ThreadHandle {
        ThreadHandle {
            entry,
            consumers: 1,
        }
    }
}

/// A value passed between tasks (argument, return value, or future payload).
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    Unit,
    U64(u64),
    I64(i64),
    F64(f64),
    Pair(Box<Value>, Box<Value>),
    /// A future handle (§V-D: handles are first-class and can be passed to
    /// any task, not just the parent).
    Handle(ThreadHandle),
    /// A fixed arity-3 handle bundle — the `(X01, X10, X11)` triple returned
    /// by intermediate LCS blocks (Fig. 11 line 66).
    Handles3([ThreadHandle; 3]),
    /// Shared immutable word vector (LCS boundary rows/columns). `Arc` keeps
    /// intra-simulation clones free; the wire size still charges the full
    /// payload whenever the value crosses workers.
    U32s(Arc<[u32]>),
    /// Shared immutable byte vector.
    Bytes(Arc<[u8]>),
    /// Shared immutable word vector (bulk PGAS transfers).
    U64s(Arc<[u64]>),
}

impl Value {
    /// Serialized size in bytes, as charged on the fabric. One tag byte plus
    /// the payload, mirroring a compact binary encoding.
    pub fn wire_size(&self) -> usize {
        1 + match self {
            Value::Unit => 0,
            Value::U64(_) | Value::I64(_) | Value::F64(_) => 8,
            Value::Pair(a, b) => a.wire_size() + b.wire_size(),
            Value::Handle(_) => ThreadHandle::WIRE_SIZE,
            Value::Handles3(_) => 3 * ThreadHandle::WIRE_SIZE,
            Value::U32s(v) => 4 + 4 * v.len(),
            Value::Bytes(v) => 4 + v.len(),
            Value::U64s(v) => 4 + 8 * v.len(),
        }
    }

    pub fn unit() -> Value {
        Value::Unit
    }

    pub fn pair(a: Value, b: Value) -> Value {
        Value::Pair(Box::new(a), Box::new(b))
    }

    /// Unwrap a `U64`, panicking with context on type confusion — task
    /// protocols are statically shaped, so a mismatch is a programming bug.
    #[track_caller]
    pub fn as_u64(&self) -> u64 {
        match self {
            Value::U64(v) => *v,
            other => panic!("expected U64, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_i64(&self) -> i64 {
        match self {
            Value::I64(v) => *v,
            other => panic!("expected I64, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_f64(&self) -> f64 {
        match self {
            Value::F64(v) => *v,
            other => panic!("expected F64, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_handle(&self) -> ThreadHandle {
        match self {
            Value::Handle(h) => *h,
            other => panic!("expected Handle, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_handles3(&self) -> [ThreadHandle; 3] {
        match self {
            Value::Handles3(h) => *h,
            other => panic!("expected Handles3, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_u32s(&self) -> &Arc<[u32]> {
        match self {
            Value::U32s(v) => v,
            other => panic!("expected U32s, got {other:?}"),
        }
    }

    #[track_caller]
    pub fn as_u64s(&self) -> &Arc<[u64]> {
        match self {
            Value::U64s(v) => v,
            other => panic!("expected U64s, got {other:?}"),
        }
    }

    /// Compact human-readable rendering: scalars verbatim, buffers
    /// summarized by length and head (for reports and logs).
    pub fn summary(&self) -> String {
        match self {
            Value::U32s(v) if v.len() > 8 => {
                format!("U32s(len={}, head={:?}…)", v.len(), &v[..4])
            }
            Value::U64s(v) if v.len() > 8 => {
                format!("U64s(len={}, head={:?}…)", v.len(), &v[..4])
            }
            Value::Bytes(v) if v.len() > 16 => {
                format!("Bytes(len={}, head={:?}…)", v.len(), &v[..8])
            }
            other => format!("{other:?}"),
        }
    }

    #[track_caller]
    pub fn into_pair(self) -> (Value, Value) {
        match self {
            Value::Pair(a, b) => (*a, *b),
            other => panic!("expected Pair, got {other:?}"),
        }
    }
}

impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::U64(v)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Value {
        Value::I64(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::F64(v)
    }
}

impl From<()> for Value {
    fn from(_: ()) -> Value {
        Value::Unit
    }
}

impl From<ThreadHandle> for Value {
    fn from(h: ThreadHandle) -> Value {
        Value::Handle(h)
    }
}

impl From<Vec<u32>> for Value {
    fn from(v: Vec<u32>) -> Value {
        Value::U32s(v.into())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handle() -> ThreadHandle {
        ThreadHandle::single(GlobalAddr::new(3, 0x100))
    }

    #[test]
    fn wire_sizes() {
        assert_eq!(Value::Unit.wire_size(), 1);
        assert_eq!(Value::U64(7).wire_size(), 9);
        assert_eq!(Value::pair(Value::U64(1), Value::Unit).wire_size(), 11);
        assert_eq!(Value::Handle(handle()).wire_size(), 13);
        assert_eq!(Value::Handles3([handle(); 3]).wire_size(), 37);
        let v: Value = vec![1u32, 2, 3].into();
        assert_eq!(v.wire_size(), 1 + 4 + 12);
        assert_eq!(Value::Bytes(vec![0u8; 10].into()).wire_size(), 15);
    }

    #[test]
    fn accessors_roundtrip() {
        assert_eq!(Value::from(5u64).as_u64(), 5);
        assert_eq!(Value::from(-5i64).as_i64(), -5);
        assert_eq!(Value::from(1.5f64).as_f64(), 1.5);
        assert_eq!(Value::from(handle()).as_handle(), handle());
        let (a, b) = Value::pair(1u64.into(), 2u64.into()).into_pair();
        assert_eq!((a.as_u64(), b.as_u64()), (1, 2));
    }

    #[test]
    #[should_panic(expected = "expected U64")]
    fn type_confusion_panics() {
        Value::Unit.as_u64();
    }

    #[test]
    fn summary_truncates_buffers() {
        let big: Value = (0..100u32).collect::<Vec<_>>().into();
        let s = big.summary();
        assert!(s.contains("len=100"), "{s}");
        assert!(s.len() < 80);
        assert_eq!(Value::U64(7).summary(), "U64(7)");
        let small: Value = vec![1u32, 2].into();
        assert!(small.summary().contains("[1, 2]"));
    }

    #[test]
    fn u32s_clone_is_shallow() {
        let v: Value = vec![1u32; 1000].into();
        let w = v.clone();
        if let (Value::U32s(a), Value::U32s(b)) = (&v, &w) {
            assert!(Arc::ptr_eq(a, b));
        } else {
            unreachable!()
        }
    }
}
