//! Small allocation-friendly containers used on the simulator's hot paths.

use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Multiplicative hasher for `u64` keys (thread-entry addresses, thread ids).
/// The default SipHash is needlessly slow for these hot per-protocol-op maps;
/// a Fibonacci-style multiply mixes segment offsets (which share low-bit
/// patterns) well enough.
#[derive(Default)]
pub struct U64Hasher(u64);

impl Hasher for U64Hasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.0
    }

    fn write(&mut self, bytes: &[u8]) {
        // Only fixed-width integer keys are expected; fall back to FNV-ish
        // folding for anything else so the hasher stays total.
        for &b in bytes {
            self.0 = (self.0 ^ b as u64).wrapping_mul(0x100_0000_01B3);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.0 = v.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(31);
    }
}

/// `HashMap` keyed by `u64` with the fast hasher.
pub type U64Map<V> = HashMap<u64, V, BuildHasherDefault<U64Hasher>>;

/// Slot-reusing arena. Deque payload objects and evacuated threads are
/// addressed by slot index from pinned-memory words, so the container must
/// give out stable small integer keys — exactly a slab.
#[derive(Debug)]
pub struct Slab<T> {
    items: Vec<Option<T>>,
    free: Vec<u32>,
    len: usize,
}

impl<T> Default for Slab<T> {
    fn default() -> Self {
        Slab::new()
    }
}

impl<T> Slab<T> {
    pub fn new() -> Slab<T> {
        Slab {
            items: Vec::new(),
            free: Vec::new(),
            len: 0,
        }
    }

    /// Insert, returning the slot key.
    pub fn insert(&mut self, value: T) -> u32 {
        self.len += 1;
        if let Some(idx) = self.free.pop() {
            debug_assert!(self.items[idx as usize].is_none());
            self.items[idx as usize] = Some(value);
            idx
        } else {
            self.items.push(Some(value));
            (self.items.len() - 1) as u32
        }
    }

    /// Remove and return the value at `key`; panics on empty slots (a slot
    /// key in pinned memory that does not match a live object is a protocol
    /// bug).
    #[track_caller]
    pub fn take(&mut self, key: u32) -> T {
        let v = self.items[key as usize]
            .take()
            .expect("slab slot already empty");
        self.free.push(key);
        self.len -= 1;
        v
    }

    /// Remove and return the value at `key`, or `None` when the slot is
    /// empty or out of range. The deque protocol uses this to turn a stale
    /// slab key decoded from pinned memory into a typed protocol violation
    /// instead of the [`Slab::take`] panic.
    pub fn try_take(&mut self, key: u32) -> Option<T> {
        let v = self.items.get_mut(key as usize)?.take()?;
        self.free.push(key);
        self.len -= 1;
        Some(v)
    }

    pub fn get(&self, key: u32) -> Option<&T> {
        self.items.get(key as usize).and_then(|s| s.as_ref())
    }

    pub fn get_mut(&mut self, key: u32) -> Option<&mut T> {
        self.items.get_mut(key as usize).and_then(|s| s.as_mut())
    }

    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    pub fn iter(&self) -> impl Iterator<Item = (u32, &T)> {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|v| (i as u32, v)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slab_insert_take_reuse() {
        let mut s = Slab::new();
        let a = s.insert("a");
        let b = s.insert("b");
        assert_eq!(s.len(), 2);
        assert_eq!(s.take(a), "a");
        let c = s.insert("c");
        assert_eq!(c, a, "slot reuse");
        assert_eq!(s.get(b), Some(&"b"));
        assert_eq!(s.get(c), Some(&"c"));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already empty")]
    fn slab_double_take_panics() {
        let mut s = Slab::new();
        let a = s.insert(1);
        s.take(a);
        s.take(a);
    }

    #[test]
    fn slab_try_take_tolerates_dead_keys() {
        let mut s = Slab::new();
        let a = s.insert(5);
        assert_eq!(s.try_take(a), Some(5));
        assert_eq!(s.try_take(a), None, "already empty");
        assert_eq!(s.try_take(999), None, "out of range");
        // The freed slot is still reusable after a failed try_take.
        let b = s.insert(6);
        assert_eq!(b, a);
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn slab_iter_skips_holes() {
        let mut s = Slab::new();
        let a = s.insert(1);
        let _b = s.insert(2);
        let _c = s.insert(3);
        s.take(a);
        let vals: Vec<i32> = s.iter().map(|(_, &v)| v).collect();
        assert_eq!(vals, vec![2, 3]);
        assert!(!s.is_empty());
    }

    #[test]
    fn u64_map_works() {
        let mut m: U64Map<u32> = U64Map::default();
        for i in 0..1000u64 {
            m.insert(i * 8, i as u32);
        }
        assert_eq!(m.len(), 1000);
        assert_eq!(m.get(&(500 * 8)), Some(&500));
        assert_eq!(m.remove(&0), Some(0));
    }
}
