//! Distributed termination detection for bag-of-tasks runtimes.
//!
//! A BoT worker cannot know locally that the computation is over: work may
//! be in another worker's bag or in flight inside a steal. The classic
//! solution is **Mattern's four-counter token algorithm**: a token
//! circulates the worker ring accumulating every worker's monotone
//! `created` / `consumed` counters; when two *consecutive* rounds observe
//! identical, balanced sums (`C == D`), no task can be outstanding and the
//! initiator raises the global done flag.
//!
//! The token is represented here as a small record that each transport
//! (one-sided puts into the successor's segment, or ring messages) carries
//! verbatim; the accounting logic is shared and unit-tested on its own.

/// Token contents while circulating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Token {
    /// Round number (monotone; doubles as the "new token arrived" signal).
    pub round: u64,
    /// Sum of `created` counters accumulated this round.
    pub created: u64,
    /// Sum of `consumed` counters accumulated this round.
    pub consumed: u64,
}

/// Initiator-side state: remembers the previous round's sums.
#[derive(Clone, Copy, Debug, Default)]
pub struct Detector {
    prev: Option<(u64, u64)>,
    pub rounds: u64,
}

impl Detector {
    /// A completed round arrived back at the initiator. Returns `true` when
    /// termination is detected.
    pub fn round_done(&mut self, created: u64, consumed: u64) -> bool {
        self.rounds += 1;
        let done = created == consumed && self.prev == Some((created, consumed));
        self.prev = Some((created, consumed));
        done
    }

    /// Start a new round: the initiator seeds the token with its own
    /// counters.
    pub fn new_round(&self, my_created: u64, my_consumed: u64) -> Token {
        Token {
            round: self.rounds + 1,
            created: my_created,
            consumed: my_consumed,
        }
    }
}

/// A non-initiator worker folds its counters into a passing token.
pub fn accumulate(tok: Token, my_created: u64, my_consumed: u64) -> Token {
    Token {
        round: tok.round,
        created: tok.created + my_created,
        consumed: tok.consumed + my_consumed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_two_identical_balanced_rounds() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10), "first balanced round is not enough");
        assert!(d.round_done(10, 10), "second identical balanced round fires");
    }

    #[test]
    fn unbalanced_rounds_never_fire() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 8));
        assert!(!d.round_done(10, 8), "equal but unbalanced sums must not fire");
        assert!(!d.round_done(10, 10));
        assert!(d.round_done(10, 10));
    }

    #[test]
    fn progress_between_rounds_resets() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10));
        // New work appeared (a task created and consumed between rounds).
        assert!(!d.round_done(12, 12));
        assert!(d.round_done(12, 12));
        assert_eq!(d.rounds, 3);
    }

    #[test]
    fn token_accumulation() {
        let d = Detector::default();
        let t0 = d.new_round(5, 3);
        assert_eq!(t0.round, 1);
        let t1 = accumulate(t0, 2, 4);
        assert_eq!(t1, Token { round: 1, created: 7, consumed: 7 });
    }

    /// Simulated ring: N workers with fixed counter snapshots; verify the
    /// detector fires exactly when global sums balance twice.
    #[test]
    fn ring_simulation() {
        let workers = [(4u64, 4u64), (3, 3), (2, 2)];
        let mut d = Detector::default();
        for round in 0..3 {
            let mut tok = d.new_round(workers[0].0, workers[0].1);
            for &(c, k) in &workers[1..] {
                tok = accumulate(tok, c, k);
            }
            let fired = d.round_done(tok.created, tok.consumed);
            assert_eq!(fired, round >= 1, "round {round}");
            if fired {
                break;
            }
        }
    }
}
