//! Distributed termination detection for bag-of-tasks runtimes.
//!
//! A BoT worker cannot know locally that the computation is over: work may
//! be in another worker's bag or in flight inside a steal. The classic
//! solution is **Mattern's four-counter token algorithm**: a token
//! circulates the worker ring accumulating every worker's monotone
//! `created` / `consumed` counters; when two *consecutive* rounds observe
//! identical, balanced sums (`C == D`), no task can be outstanding and the
//! initiator raises the global done flag.
//!
//! The token is represented here as a small record that each transport
//! (one-sided puts into the successor's segment, or ring messages) carries
//! verbatim; the accounting logic is shared and unit-tested on its own.
//!
//! **Fail-stop extension.** Under a recovery-armed fault plan the ring can
//! have holes: confirmed-dead workers are skipped, and when the initiator
//! itself dies the lowest live worker takes over. Two token fields support
//! this:
//!
//! * `round` is *tagged* with the initiator's id in its high bits
//!   ([`tag_round`]), so a stale token from a dead ex-initiator is ignored
//!   (tags only grow: a successor initiator has a higher id, hence a higher
//!   tag, than every round the dead one ever started).
//! * `start_ns` stamps the round's start; a worker may only forward the
//!   token once every not-confirmed-dead peer has published a heartbeat
//!   *after* that instant (the attest rule). A death before the round can
//!   therefore never hide inside a completed round: the round blocks until
//!   the death is confirmed — and recovery re-injects the lost work,
//!   unbalancing the sums — or the peer proves it is alive.
//!
//! The two-sided runtime additionally folds `sent`/`recv` task-transfer
//! counters ([`Detector::round_done4`]): with in-flight grants, balanced
//! created/consumed sums alone would miss tasks living inside the channel.

/// Token contents while circulating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Token {
    /// Round number (monotone; doubles as the "new token arrived" signal).
    /// In recovery mode the high bits carry the initiator id ([`tag_round`]).
    pub round: u64,
    /// Sum of `created` counters accumulated this round.
    pub created: u64,
    /// Sum of `consumed` counters accumulated this round.
    pub consumed: u64,
    /// Sum of tasks handed to live peers (two-sided recovery mode).
    pub sent: u64,
    /// Sum of tasks received from live peers (two-sided recovery mode).
    pub recv: u64,
    /// Virtual time (ns) the round started at the initiator (attest rule).
    pub start_ns: u64,
}

/// Bits of `Token::round` holding the round sequence number; the initiator
/// id lives above them.
pub const ROUND_TAG_SHIFT: u32 = 48;

/// Tag a round sequence number with its initiator's id.
pub fn tag_round(initiator: usize, seq: u64) -> u64 {
    debug_assert!(seq < 1 << ROUND_TAG_SHIFT);
    ((initiator as u64) << ROUND_TAG_SHIFT) | seq
}

/// The initiator id carried by a tagged round.
pub fn round_initiator(round: u64) -> usize {
    (round >> ROUND_TAG_SHIFT) as usize
}

/// The sequence number carried by a tagged round.
pub fn round_seq(round: u64) -> u64 {
    round & ((1 << ROUND_TAG_SHIFT) - 1)
}

/// Initiator-side state: remembers the previous round's sums.
#[derive(Clone, Copy, Debug, Default)]
pub struct Detector {
    prev: Option<(u64, u64)>,
    prev4: Option<(u64, u64, u64, u64)>,
    pub rounds: u64,
}

impl Detector {
    /// A completed round arrived back at the initiator. Returns `true` when
    /// termination is detected.
    pub fn round_done(&mut self, created: u64, consumed: u64) -> bool {
        self.rounds += 1;
        let done = created == consumed && self.prev == Some((created, consumed));
        self.prev = Some((created, consumed));
        done
    }

    /// Four-counter round completion (two-sided recovery mode): fires only
    /// when bags are globally empty (`created + recv == consumed + sent`),
    /// nothing is in flight (`sent == recv`), and the previous round saw
    /// the identical four sums.
    pub fn round_done4(&mut self, created: u64, consumed: u64, sent: u64, recv: u64) -> bool {
        self.rounds += 1;
        let snap = (created, consumed, sent, recv);
        let done =
            created + recv == consumed + sent && sent == recv && self.prev4 == Some(snap);
        self.prev4 = Some(snap);
        done
    }

    /// Start a new round: the initiator seeds the token with its own
    /// counters.
    pub fn new_round(&self, my_created: u64, my_consumed: u64) -> Token {
        Token {
            round: self.rounds + 1,
            created: my_created,
            consumed: my_consumed,
            ..Token::default()
        }
    }

    /// Start a new recovery-mode round: tagged with the initiator id,
    /// stamped with the start time, seeding all four counters.
    #[allow(clippy::too_many_arguments)]
    pub fn new_round_tagged(
        &self,
        initiator: usize,
        start_ns: u64,
        my_created: u64,
        my_consumed: u64,
        my_sent: u64,
        my_recv: u64,
    ) -> Token {
        Token {
            round: tag_round(initiator, self.rounds + 1),
            created: my_created,
            consumed: my_consumed,
            sent: my_sent,
            recv: my_recv,
            start_ns,
        }
    }
}

/// A non-initiator worker folds its counters into a passing token.
pub fn accumulate(tok: Token, my_created: u64, my_consumed: u64) -> Token {
    Token {
        created: tok.created + my_created,
        consumed: tok.consumed + my_consumed,
        ..tok
    }
}

/// Four-counter fold (two-sided recovery mode).
pub fn accumulate4(tok: Token, c: u64, k: u64, s: u64, r: u64) -> Token {
    Token {
        created: tok.created + c,
        consumed: tok.consumed + k,
        sent: tok.sent + s,
        recv: tok.recv + r,
        ..tok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_two_identical_balanced_rounds() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10), "first balanced round is not enough");
        assert!(d.round_done(10, 10), "second identical balanced round fires");
    }

    #[test]
    fn unbalanced_rounds_never_fire() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 8));
        assert!(!d.round_done(10, 8), "equal but unbalanced sums must not fire");
        assert!(!d.round_done(10, 10));
        assert!(d.round_done(10, 10));
    }

    #[test]
    fn progress_between_rounds_resets() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10));
        // New work appeared (a task created and consumed between rounds).
        assert!(!d.round_done(12, 12));
        assert!(d.round_done(12, 12));
        assert_eq!(d.rounds, 3);
    }

    #[test]
    fn token_accumulation() {
        let d = Detector::default();
        let t0 = d.new_round(5, 3);
        assert_eq!(t0.round, 1);
        let t1 = accumulate(t0, 2, 4);
        assert_eq!(t1, Token { round: 1, created: 7, consumed: 7, ..Token::default() });
    }

    /// Simulated ring: N workers with fixed counter snapshots; verify the
    /// detector fires exactly when global sums balance twice.
    #[test]
    fn ring_simulation() {
        let workers = [(4u64, 4u64), (3, 3), (2, 2)];
        let mut d = Detector::default();
        for round in 0..3 {
            let mut tok = d.new_round(workers[0].0, workers[0].1);
            for &(c, k) in &workers[1..] {
                tok = accumulate(tok, c, k);
            }
            let fired = d.round_done(tok.created, tok.consumed);
            assert_eq!(fired, round >= 1, "round {round}");
            if fired {
                break;
            }
        }
    }
}
