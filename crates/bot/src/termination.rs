//! Distributed termination detection for bag-of-tasks runtimes.
//!
//! A BoT worker cannot know locally that the computation is over: work may
//! be in another worker's bag or in flight inside a steal. The classic
//! solution is **Mattern's four-counter token algorithm**: a token
//! circulates the worker ring accumulating every worker's monotone
//! `created` / `consumed` counters; when two *consecutive* rounds observe
//! identical, balanced sums (`C == D`), no task can be outstanding and the
//! initiator raises the global done flag.
//!
//! The token is represented here as a small record that each transport
//! (one-sided puts into the successor's segment, or ring messages) carries
//! verbatim; the accounting logic is shared and unit-tested on its own.
//!
//! **Fail-stop extension.** Under a recovery-armed fault plan the ring can
//! have holes: confirmed-dead workers are skipped, and when the initiator
//! itself dies the lowest live worker takes over. Two token fields support
//! this:
//!
//! * `round` is *tagged* with the initiator's id in its high bits
//!   ([`tag_round`]), so a stale token from a dead ex-initiator is ignored
//!   (tags only grow: a successor initiator has a higher id, hence a higher
//!   tag, than every round the dead one ever started).
//! * `start_ns` stamps the round's start; a worker may only forward the
//!   token once every not-confirmed-dead peer has published a heartbeat
//!   *after* that instant (the attest rule). A death before the round can
//!   therefore never hide inside a completed round: the round blocks until
//!   the death is confirmed — and recovery re-injects the lost work,
//!   unbalancing the sums — or the peer proves it is alive.
//!
//! The two-sided runtime additionally folds `sent`/`recv` task-transfer
//! counters ([`Detector::round_done4`]): with in-flight grants, balanced
//! created/consumed sums alone would miss tasks living inside the channel.

/// Token contents while circulating.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Token {
    /// Round number (monotone; doubles as the "new token arrived" signal).
    /// In recovery mode the high bits carry the initiator id ([`tag_round`]).
    pub round: u64,
    /// Sum of `created` counters accumulated this round.
    pub created: u64,
    /// Sum of `consumed` counters accumulated this round.
    pub consumed: u64,
    /// Sum of tasks handed to live peers (two-sided recovery mode).
    pub sent: u64,
    /// Sum of tasks received from live peers (two-sided recovery mode).
    pub recv: u64,
    /// Virtual time (ns) the round started at the initiator (attest rule).
    pub start_ns: u64,
}

/// Bits of `Token::round` holding the initiator id; the incarnation epoch
/// sits below it and the round sequence number at the bottom.
pub const ROUND_TAG_SHIFT: u32 = 48;

/// Bits of `Token::round` holding the initiator's incarnation epoch
/// (field `[32, 48)`; the sequence number occupies the low 32 bits).
pub const ROUND_EPOCH_SHIFT: u32 = 32;

/// Tag a round sequence number with its initiator's id (incarnation
/// epoch 0 — byte-identical to the pre-epoch encoding, which is what the
/// oracle detector always sees: a worker only gains epochs by eviction,
/// and the oracle never evicts the living).
pub fn tag_round(initiator: usize, seq: u64) -> u64 {
    tag_round_epoch(initiator, 0, seq)
}

/// Tag a round with the initiator's id *and* incarnation epoch. Under a
/// message-based detector a worker id can return as a fresh incarnation,
/// so "tags only grow with the initiator id" no longer kills every stale
/// token: a zombie ex-initiator shares its successor's id-ordering. The
/// epoch field restores the invariant — receivers drop any token whose
/// epoch trails their view of the initiator's incarnation.
pub fn tag_round_epoch(initiator: usize, epoch: u64, seq: u64) -> u64 {
    debug_assert!(epoch < 1 << (ROUND_TAG_SHIFT - ROUND_EPOCH_SHIFT));
    debug_assert!(seq < 1 << ROUND_EPOCH_SHIFT);
    ((initiator as u64) << ROUND_TAG_SHIFT) | (epoch << ROUND_EPOCH_SHIFT) | seq
}

/// The initiator id carried by a tagged round.
pub fn round_initiator(round: u64) -> usize {
    (round >> ROUND_TAG_SHIFT) as usize
}

/// The initiator incarnation epoch carried by a tagged round.
pub fn round_epoch(round: u64) -> u64 {
    (round >> ROUND_EPOCH_SHIFT) & ((1 << (ROUND_TAG_SHIFT - ROUND_EPOCH_SHIFT)) - 1)
}

/// The sequence number carried by a tagged round.
pub fn round_seq(round: u64) -> u64 {
    round & ((1 << ROUND_EPOCH_SHIFT) - 1)
}

/// Is `round` from an earlier incarnation of its initiator than
/// `epoch_now` (the receiver's current view)? Such a token was seeded by
/// a zombie — evicted but not yet self-fenced — and must be ignored: its
/// counter sums predate the lineage replay of the eviction and could
/// declare termination with replayed work still outstanding.
pub fn round_from_old_incarnation(round: u64, epoch_now: u64) -> bool {
    round_epoch(round) < epoch_now
}

/// Initiator-side state: remembers the previous round's sums.
#[derive(Clone, Copy, Debug, Default)]
pub struct Detector {
    prev: Option<(u64, u64)>,
    prev4: Option<(u64, u64, u64, u64)>,
    pub rounds: u64,
}

impl Detector {
    /// A completed round arrived back at the initiator. Returns `true` when
    /// termination is detected.
    pub fn round_done(&mut self, created: u64, consumed: u64) -> bool {
        self.rounds += 1;
        let done = created == consumed && self.prev == Some((created, consumed));
        self.prev = Some((created, consumed));
        done
    }

    /// Four-counter round completion (two-sided recovery mode): fires only
    /// when bags are globally empty (`created + recv == consumed + sent`),
    /// nothing is in flight (`sent == recv`), and the previous round saw
    /// the identical four sums.
    pub fn round_done4(&mut self, created: u64, consumed: u64, sent: u64, recv: u64) -> bool {
        self.rounds += 1;
        let snap = (created, consumed, sent, recv);
        let done =
            created + recv == consumed + sent && sent == recv && self.prev4 == Some(snap);
        self.prev4 = Some(snap);
        done
    }

    /// Start a new round: the initiator seeds the token with its own
    /// counters.
    pub fn new_round(&self, my_created: u64, my_consumed: u64) -> Token {
        Token {
            round: self.rounds + 1,
            created: my_created,
            consumed: my_consumed,
            ..Token::default()
        }
    }

    /// Start a new recovery-mode round: tagged with the initiator id and
    /// its incarnation epoch, stamped with the start time, seeding all
    /// four counters.
    #[allow(clippy::too_many_arguments)]
    pub fn new_round_tagged(
        &self,
        initiator: usize,
        epoch: u64,
        start_ns: u64,
        my_created: u64,
        my_consumed: u64,
        my_sent: u64,
        my_recv: u64,
    ) -> Token {
        Token {
            round: tag_round_epoch(initiator, epoch, self.rounds + 1),
            created: my_created,
            consumed: my_consumed,
            sent: my_sent,
            recv: my_recv,
            start_ns,
        }
    }
}

/// A non-initiator worker folds its counters into a passing token.
pub fn accumulate(tok: Token, my_created: u64, my_consumed: u64) -> Token {
    Token {
        created: tok.created + my_created,
        consumed: tok.consumed + my_consumed,
        ..tok
    }
}

/// Four-counter fold (two-sided recovery mode).
pub fn accumulate4(tok: Token, c: u64, k: u64, s: u64, r: u64) -> Token {
    Token {
        created: tok.created + c,
        consumed: tok.consumed + k,
        sent: tok.sent + s,
        recv: tok.recv + r,
        ..tok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requires_two_identical_balanced_rounds() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10), "first balanced round is not enough");
        assert!(d.round_done(10, 10), "second identical balanced round fires");
    }

    #[test]
    fn unbalanced_rounds_never_fire() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 8));
        assert!(!d.round_done(10, 8), "equal but unbalanced sums must not fire");
        assert!(!d.round_done(10, 10));
        assert!(d.round_done(10, 10));
    }

    #[test]
    fn progress_between_rounds_resets() {
        let mut d = Detector::default();
        assert!(!d.round_done(10, 10));
        // New work appeared (a task created and consumed between rounds).
        assert!(!d.round_done(12, 12));
        assert!(d.round_done(12, 12));
        assert_eq!(d.rounds, 3);
    }

    #[test]
    fn token_accumulation() {
        let d = Detector::default();
        let t0 = d.new_round(5, 3);
        assert_eq!(t0.round, 1);
        let t1 = accumulate(t0, 2, 4);
        assert_eq!(t1, Token { round: 1, created: 7, consumed: 7, ..Token::default() });
    }

    #[test]
    fn epoch_zero_tag_matches_the_pre_epoch_encoding() {
        // The oracle detector never evicts, so every bot golden runs at
        // epoch 0 and the tag bytes must not move.
        for (i, seq) in [(0usize, 1u64), (3, 7), (15, 1 << 20)] {
            assert_eq!(tag_round(i, seq), tag_round_epoch(i, 0, seq));
            assert_eq!(round_initiator(tag_round(i, seq)), i);
            assert_eq!(round_epoch(tag_round(i, seq)), 0);
            assert_eq!(round_seq(tag_round(i, seq)), seq);
        }
    }

    #[test]
    fn epoch_tag_round_trips_and_orders_incarnations() {
        let old = tag_round_epoch(2, 0, 9);
        let new = tag_round_epoch(2, 1, 1);
        assert_eq!(round_initiator(new), 2);
        assert_eq!(round_epoch(new), 1);
        assert_eq!(round_seq(new), 1);
        // A rejoined initiator's very first round outranks every round its
        // dead incarnation ever started, so `round > forwarded_round`
        // forwarding still works unchanged.
        assert!(new > old);
        // And the zombie's stale token is recognisably old.
        assert!(round_from_old_incarnation(old, 1));
        assert!(!round_from_old_incarnation(new, 1));
        assert!(!round_from_old_incarnation(new, 0));
    }

    #[test]
    fn tagged_round_seeds_with_the_epoch() {
        let d = Detector::default();
        let tok = d.new_round_tagged(1, 3, 50, 4, 4, 0, 0);
        assert_eq!(round_initiator(tok.round), 1);
        assert_eq!(round_epoch(tok.round), 3);
        assert_eq!(round_seq(tok.round), 1);
        assert_eq!(tok.start_ns, 50);
    }

    /// Simulated ring: N workers with fixed counter snapshots; verify the
    /// detector fires exactly when global sums balance twice.
    #[test]
    fn ring_simulation() {
        let workers = [(4u64, 4u64), (3, 3), (2, 2)];
        let mut d = Detector::default();
        for round in 0..3 {
            let mut tok = d.new_round(workers[0].0, workers[0].1);
            for &(c, k) in &workers[1..] {
                tok = accumulate(tok, c, k);
            }
            let fired = d.round_done(tok.created, tok.consumed);
            assert_eq!(fired, round >= 1, "round {round}");
            if fired {
                break;
            }
        }
    }
}
