//! Two-sided (message-based) bag-of-tasks work stealing.
//!
//! Models the Charm++/ParSSSE and X10/GLB comparators of Fig. 8. A steal is
//! a *request/reply* exchange: the thief sends a `Request`, the victim must
//! poll its mailbox between tasks, handle the message (receiver CPU cost),
//! and reply with half its bag or a denial. Two variants share the actor:
//!
//! * [`Variant::Random`] — Charm++-style: idle workers keep issuing
//!   requests to uniformly random victims.
//! * [`Variant::Lifeline`] — X10/GLB-style: after `w` failed random
//!   attempts the thief registers on its hypercube *lifeline* neighbours and
//!   goes quiescent; victims push half their surplus to an armed lifeline
//!   as they generate work (Saraswat et al.).
//!
//! Termination is the Mattern token circulating as a ring message.

use std::collections::VecDeque;

use dcs_apps::uts::UtsSpec;
use dcs_sim::{
    Actor, Engine, Machine, MachineConfig, MachineProfile, Mailbox, SimRng, Step, VTime, WorkerId,
};

use crate::termination::{accumulate, Detector, Token};
use crate::{expand_node, BotReport, Counters, NodeTask, TASK_BYTES};

/// Which two-sided strategy to run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Variant {
    /// Random request/reply stealing (Charm++-like).
    Random,
    /// Random attempts, then hypercube lifelines (X10/GLB-like).
    Lifeline,
}

/// Messages exchanged between workers.
#[derive(Debug)]
pub enum Msg {
    Request,
    Grant(Vec<NodeTask>),
    Deny,
    /// Arm a lifeline from the sender to the receiver.
    Lifeline,
    /// Work pushed down an armed lifeline.
    Push(Vec<NodeTask>),
    Token(Token),
}

/// Shared state of a two-sided BoT run.
pub struct TwoWorld {
    pub m: Machine,
    pub bags: Vec<Vec<NodeTask>>,
    pub counters: Vec<Counters>,
    pub mailbox: Mailbox<Msg>,
    pub token_rounds: u64,
}

/// Random-attempt budget before falling back to lifelines.
const RANDOM_ATTEMPTS: u32 = 2;
/// Minimum bag size before a victim grants/pushes half.
const SURPLUS: usize = 2;

struct TwoWorker {
    me: WorkerId,
    n: usize,
    variant: Variant,
    spec: UtsSpec,
    scale: f64,
    rng: SimRng,
    /// Outstanding steal request, if any.
    pending: Option<WorkerId>,
    fails: u32,
    /// Lifelines registered *on this worker* (armed, FIFO for fairness).
    armed_on_me: VecDeque<WorkerId>,
    /// Which of my lifeline neighbours I currently have armed.
    my_armed: Vec<WorkerId>,
    /// Token held while busy.
    held_token: Option<Token>,
    detector: Detector,
    token_outstanding: bool,
    steals_ok: u64,
    steals_failed: u64,
    halted: bool,
}

impl TwoWorker {
    fn lifeline_neighbours(&self) -> Vec<WorkerId> {
        let mut out = Vec::new();
        let mut bit = 1;
        while bit < self.n {
            let nb = self.me ^ bit;
            if nb < self.n {
                out.push(nb);
            }
            bit <<= 1;
        }
        out
    }

    fn send(&self, w: &mut TwoWorld, now: VTime, to: WorkerId, msg: Msg) -> VTime {
        let cost = w.m.message_sent(self.me);
        let deliver = now + cost + VTime::ns(w.m.lat().message);
        w.mailbox.send(self.me, to, deliver, msg);
        cost
    }

    fn send_tasks(&self, w: &mut TwoWorld, now: VTime, to: WorkerId, msg: Msg, k: usize) -> VTime {
        let cost = w.m.message_sent(self.me) + w.m.lat().payload(k * TASK_BYTES);
        let deliver = now + cost + VTime::ns(w.m.lat().message);
        w.mailbox.send(self.me, to, deliver, msg);
        cost
    }

    /// Forward (or hold) a token per Mattern's ring.
    fn on_token(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        if !w.bags[self.me].is_empty() {
            self.held_token = Some(tok);
            return VTime::ZERO;
        }
        self.forward_token(w, now, tok)
    }

    fn forward_token(&mut self, w: &mut TwoWorld, now: VTime, tok: Token) -> VTime {
        let cnt = w.counters[self.me];
        if self.me == 0 {
            // Round completed.
            self.token_outstanding = false;
            let done = self.detector.round_done(tok.created, tok.consumed);
            w.token_rounds = self.detector.rounds;
            if done {
                let hops = (self.n as f64).log2().ceil() as u64;
                let reduce = VTime::ns(hops * (w.m.lat().message + w.m.lat().msg_handler));
                w.m.set_done();
                return reduce;
            }
            VTime::ZERO
        } else {
            let out = accumulate(tok, cnt.created, cnt.consumed);
            self.send(w, now, (self.me + 1) % self.n, Msg::Token(out))
        }
    }

    /// Handle one incoming message; returns its cost, and whether the worker
    /// acquired work.
    fn handle(&mut self, w: &mut TwoWorld, now: VTime, from: WorkerId, msg: Msg) -> (VTime, bool) {
        let me = self.me;
        let mut cost = w.m.message_handled(me);
        let mut got_work = false;
        match msg {
            Msg::Request => {
                if w.bags[me].len() >= SURPLUS {
                    let k = w.bags[me].len() / 2;
                    let tasks: Vec<NodeTask> = w.bags[me].drain(..k).collect();
                    cost += self.send_tasks(w, now, from, Msg::Grant(tasks), k);
                } else {
                    cost += self.send(w, now, from, Msg::Deny);
                }
            }
            Msg::Grant(tasks) => {
                debug_assert_eq!(self.pending, Some(from));
                self.pending = None;
                self.fails = 0;
                self.steals_ok += 1;
                cost += w.m.lat().payload(tasks.len() * TASK_BYTES);
                w.bags[me].extend(tasks);
                got_work = true;
            }
            Msg::Deny => {
                debug_assert_eq!(self.pending, Some(from));
                self.pending = None;
                self.fails += 1;
                self.steals_failed += 1;
            }
            Msg::Lifeline => {
                if !self.armed_on_me.contains(&from) {
                    self.armed_on_me.push_back(from);
                }
            }
            Msg::Push(tasks) => {
                self.my_armed.retain(|&v| v != from);
                cost += w.m.lat().payload(tasks.len() * TASK_BYTES);
                w.bags[me].extend(tasks);
                self.steals_ok += 1;
                got_work = true;
            }
            Msg::Token(tok) => {
                cost += self.on_token(w, now, tok);
            }
        }
        (cost, got_work)
    }

    fn poll_one(&mut self, w: &mut TwoWorld, now: VTime) -> (VTime, bool) {
        let mut cost = w.m.local_op(self.me);
        let mut got = false;
        if let Some((from, msg)) = w.mailbox.recv(self.me, now) {
            let (c, g) = self.handle(w, now, from, msg);
            cost += c;
            got = g;
        }
        (cost, got)
    }

    fn step_work(&mut self, w: &mut TwoWorld, now: VTime) -> Step {
        let me = self.me;
        // Poll between tasks — the receiver-side interruption two-sided
        // stealing imposes.
        let (mut cost, _) = self.poll_one(w, now);
        let Some(task) = w.bags[me].pop() else {
            // Release a held token before going idle.
            if let Some(tok) = self.held_token.take() {
                cost += self.forward_token(w, now, tok);
            }
            return Step::Yield(cost + w.m.local_op(me));
        };
        let (n_children, c2) = expand_node(&self.spec, task, &mut w.bags[me], self.scale);
        cost += c2;
        let cnt = &mut w.counters[me];
        cnt.consumed += 1;
        cnt.created += n_children as u64;
        cnt.nodes += 1;
        // Lifeline distribution: feed one armed lifeline from surplus.
        if self.variant == Variant::Lifeline && w.bags[me].len() > SURPLUS {
            if let Some(dst) = self.armed_on_me.pop_front() {
                let k = w.bags[me].len() / 2;
                let tasks: Vec<NodeTask> = w.bags[me].drain(..k).collect();
                cost += self.send_tasks(w, now, dst, Msg::Push(tasks), k);
            }
        }
        Step::Yield(cost)
    }

    fn step_idle(&mut self, w: &mut TwoWorld, now: VTime) -> Step {
        let me = self.me;
        if w.m.is_done() {
            assert!(w.bags[me].is_empty(), "terminated with work in the bag");
            self.halted = true;
            return Step::Halt;
        }
        let (mut cost, _) = self.poll_one(w, now);
        if !w.bags[me].is_empty() {
            return Step::Yield(cost);
        }
        // Release a token held since the busy phase.
        if let Some(tok) = self.held_token.take() {
            cost += self.forward_token(w, now, tok);
        }
        // Initiator token duty.
        if me == 0 && !self.token_outstanding {
            let cnt = w.counters[0];
            if self.n == 1 {
                let done = self.detector.round_done(cnt.created, cnt.consumed);
                w.token_rounds = self.detector.rounds;
                if done {
                    w.m.set_done();
                }
                return Step::Yield(cost + w.m.local_op(me));
            }
            let tok = self.detector.new_round(cnt.created, cnt.consumed);
            self.token_outstanding = true;
            cost += self.send(w, now, 1, Msg::Token(tok));
        }
        if self.n == 1 {
            return Step::Yield(cost);
        }
        if self.pending.is_some() {
            // Waiting for a reply; just keep polling.
            return Step::Yield(cost);
        }
        match self.variant {
            Variant::Random => {
                let victim = self.rng.victim(self.n, me);
                cost += self.send(w, now, victim, Msg::Request);
                self.pending = Some(victim);
            }
            Variant::Lifeline => {
                if self.fails < RANDOM_ATTEMPTS {
                    let victim = self.rng.victim(self.n, me);
                    cost += self.send(w, now, victim, Msg::Request);
                    self.pending = Some(victim);
                } else {
                    // Arm any un-armed lifelines, then wait passively.
                    for nb in self.lifeline_neighbours() {
                        if !self.my_armed.contains(&nb) {
                            self.my_armed.push(nb);
                            cost += self.send(w, now, nb, Msg::Lifeline);
                        }
                    }
                }
            }
        }
        Step::Yield(cost)
    }
}

impl Actor<TwoWorld> for TwoWorker {
    fn step(&mut self, me: WorkerId, now: VTime, w: &mut TwoWorld) -> Step {
        debug_assert_eq!(me, self.me);
        if self.halted {
            return Step::Halt;
        }
        if w.bags[me].is_empty() {
            self.step_idle(w, now)
        } else {
            self.step_work(w, now)
        }
    }
}

/// Run UTS under a two-sided BoT runtime.
pub fn run_uts(
    spec: &UtsSpec,
    workers: usize,
    profile: MachineProfile,
    variant: Variant,
    seed: u64,
) -> BotReport {
    let scale = profile.compute_scale;
    let m = Machine::new(MachineConfig::new(workers, profile).with_seg_bytes(1 << 12));
    let mut world = TwoWorld {
        m,
        bags: (0..workers).map(|_| Vec::new()).collect(),
        counters: vec![Counters::default(); workers],
        mailbox: Mailbox::new(workers),
        token_rounds: 0,
    };
    world.bags[0].push((spec.root(), 0));
    world.counters[0].created = 1;

    let actors: Vec<TwoWorker> = (0..workers)
        .map(|me| TwoWorker {
            me,
            n: workers,
            variant,
            spec: spec.clone(),
            scale,
            rng: SimRng::for_worker(seed, me),
            pending: None,
            fails: 0,
            armed_on_me: VecDeque::new(),
            my_armed: Vec::new(),
            held_token: None,
            detector: Detector::default(),
            token_outstanding: false,
            steals_ok: 0,
            steals_failed: 0,
            halted: false,
        })
        .collect();

    let mut engine = Engine::new(world, actors);
    let report = engine.run();
    let (world, actors) = engine.into_parts();

    let created: u64 = world.counters.iter().map(|c| c.created).sum();
    let consumed: u64 = world.counters.iter().map(|c| c.consumed).sum();
    assert_eq!(created, consumed, "termination fired with outstanding work");

    BotReport {
        elapsed: report.end_time,
        nodes: world.counters.iter().map(|c| c.nodes).sum(),
        steals_ok: actors.iter().map(|a| a.steals_ok).sum(),
        steals_failed: actors.iter().map(|a| a.steals_failed).sum(),
        messages: world.m.stats_total().messages_handled,
        token_rounds: world.token_rounds,
        fabric: world.m.stats_total(),
        steps: report.steps,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dcs_apps::uts::{presets, serial_count};
    use dcs_sim::profiles;

    #[test]
    fn random_counts_match_serial() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), Variant::Random, 11);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn lifeline_counts_match_serial() {
        let spec = presets::tiny();
        let expected = serial_count(&spec).nodes;
        for workers in [1, 2, 4, 8] {
            let r = run_uts(&spec, workers, profiles::test_profile(), Variant::Lifeline, 13);
            assert_eq!(r.nodes, expected, "P={workers}");
        }
    }

    #[test]
    fn two_sided_runtimes_send_messages() {
        let spec = presets::tiny();
        let r = run_uts(&spec, 4, profiles::test_profile(), Variant::Random, 17);
        assert!(r.messages > 0);
        assert!(r.steals_ok > 0);
    }

    #[test]
    fn lifeline_cuts_failed_attempts_versus_random() {
        let spec = presets::small();
        let rnd = run_uts(&spec, 8, profiles::itoa(), Variant::Random, 23);
        let ll = run_uts(&spec, 8, profiles::itoa(), Variant::Lifeline, 23);
        assert_eq!(rnd.nodes, ll.nodes);
        assert!(
            ll.steals_failed < rnd.steals_failed,
            "lifelines should reduce failed requests: {} vs {}",
            ll.steals_failed,
            rnd.steals_failed
        );
    }

    #[test]
    fn deterministic() {
        let spec = presets::tiny();
        let a = run_uts(&spec, 4, profiles::test_profile(), Variant::Lifeline, 29);
        let b = run_uts(&spec, 4, profiles::test_profile(), Variant::Lifeline, 29);
        assert_eq!(a.elapsed, b.elapsed);
        assert_eq!(a.messages, b.messages);
    }
}
